file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cmpp.dir/bench_table1_cmpp.cpp.o"
  "CMakeFiles/bench_table1_cmpp.dir/bench_table1_cmpp.cpp.o.d"
  "bench_table1_cmpp"
  "bench_table1_cmpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cmpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/WorkloadTest.cpp" "tests/CMakeFiles/workloads_test.dir/workloads/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/WorkloadTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/cpr_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cpr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpr/CMakeFiles/cpr_cpr.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cpr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/regions/CMakeFiles/cpr_regions.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/cpr_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cpr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cpr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cpr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cpr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

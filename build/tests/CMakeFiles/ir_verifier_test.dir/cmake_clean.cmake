file(REMOVE_RECURSE
  "CMakeFiles/ir_verifier_test.dir/ir/VerifierTest.cpp.o"
  "CMakeFiles/ir_verifier_test.dir/ir/VerifierTest.cpp.o.d"
  "ir_verifier_test"
  "ir_verifier_test.pdb"
  "ir_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for analysis_liveness_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/analysis_liveness_test.dir/analysis/LivenessTest.cpp.o"
  "CMakeFiles/analysis_liveness_test.dir/analysis/LivenessTest.cpp.o.d"
  "analysis_liveness_test"
  "analysis_liveness_test.pdb"
  "analysis_liveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

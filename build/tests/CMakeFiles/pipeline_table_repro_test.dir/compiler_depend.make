# Empty compiler generated dependencies file for pipeline_table_repro_test.
# This may be replaced when dependencies are built.

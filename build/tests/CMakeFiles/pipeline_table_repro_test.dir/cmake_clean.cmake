file(REMOVE_RECURSE
  "CMakeFiles/pipeline_table_repro_test.dir/pipeline/TableReproTest.cpp.o"
  "CMakeFiles/pipeline_table_repro_test.dir/pipeline/TableReproTest.cpp.o.d"
  "pipeline_table_repro_test"
  "pipeline_table_repro_test.pdb"
  "pipeline_table_repro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_table_repro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

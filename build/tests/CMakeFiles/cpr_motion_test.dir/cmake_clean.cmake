file(REMOVE_RECURSE
  "CMakeFiles/cpr_motion_test.dir/cpr/OffTraceMotionTest.cpp.o"
  "CMakeFiles/cpr_motion_test.dir/cpr/OffTraceMotionTest.cpp.o.d"
  "cpr_motion_test"
  "cpr_motion_test.pdb"
  "cpr_motion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_motion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

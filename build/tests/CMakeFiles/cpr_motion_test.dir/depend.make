# Empty dependencies file for cpr_motion_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for analysis_depgraph_test.
# This may be replaced when dependencies are built.

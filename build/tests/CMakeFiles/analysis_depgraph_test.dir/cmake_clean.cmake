file(REMOVE_RECURSE
  "CMakeFiles/analysis_depgraph_test.dir/analysis/DepGraphTest.cpp.o"
  "CMakeFiles/analysis_depgraph_test.dir/analysis/DepGraphTest.cpp.o.d"
  "analysis_depgraph_test"
  "analysis_depgraph_test.pdb"
  "analysis_depgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_depgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

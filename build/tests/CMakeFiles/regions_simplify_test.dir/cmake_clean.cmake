file(REMOVE_RECURSE
  "CMakeFiles/regions_simplify_test.dir/regions/SimplifyTest.cpp.o"
  "CMakeFiles/regions_simplify_test.dir/regions/SimplifyTest.cpp.o.d"
  "regions_simplify_test"
  "regions_simplify_test.pdb"
  "regions_simplify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

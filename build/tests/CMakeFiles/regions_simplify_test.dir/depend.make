# Empty dependencies file for regions_simplify_test.
# This may be replaced when dependencies are built.

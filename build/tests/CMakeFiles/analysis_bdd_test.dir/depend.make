# Empty dependencies file for analysis_bdd_test.
# This may be replaced when dependencies are built.

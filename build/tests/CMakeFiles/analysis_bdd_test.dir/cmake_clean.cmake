file(REMOVE_RECURSE
  "CMakeFiles/analysis_bdd_test.dir/analysis/BDDTest.cpp.o"
  "CMakeFiles/analysis_bdd_test.dir/analysis/BDDTest.cpp.o.d"
  "analysis_bdd_test"
  "analysis_bdd_test.pdb"
  "analysis_bdd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_bdd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/interp_float_test.dir/interp/FloatOpsTest.cpp.o"
  "CMakeFiles/interp_float_test.dir/interp/FloatOpsTest.cpp.o.d"
  "interp_float_test"
  "interp_float_test.pdb"
  "interp_float_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_float_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for interp_float_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ir_api_test.dir/ir/IRApiTest.cpp.o"
  "CMakeFiles/ir_api_test.dir/ir/IRApiTest.cpp.o.d"
  "ir_api_test"
  "ir_api_test.pdb"
  "ir_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cpr_match_test.dir/cpr/MatchTest.cpp.o"
  "CMakeFiles/cpr_match_test.dir/cpr/MatchTest.cpp.o.d"
  "cpr_match_test"
  "cpr_match_test.pdb"
  "cpr_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cpr_match_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for cpr_restructure_test.
# This may be replaced when dependencies are built.

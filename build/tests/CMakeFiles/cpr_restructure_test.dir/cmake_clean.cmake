file(REMOVE_RECURSE
  "CMakeFiles/cpr_restructure_test.dir/cpr/RestructureTest.cpp.o"
  "CMakeFiles/cpr_restructure_test.dir/cpr/RestructureTest.cpp.o.d"
  "cpr_restructure_test"
  "cpr_restructure_test.pdb"
  "cpr_restructure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_restructure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

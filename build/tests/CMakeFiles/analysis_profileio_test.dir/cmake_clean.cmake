file(REMOVE_RECURSE
  "CMakeFiles/analysis_profileio_test.dir/analysis/ProfileIOTest.cpp.o"
  "CMakeFiles/analysis_profileio_test.dir/analysis/ProfileIOTest.cpp.o.d"
  "analysis_profileio_test"
  "analysis_profileio_test.pdb"
  "analysis_profileio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_profileio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

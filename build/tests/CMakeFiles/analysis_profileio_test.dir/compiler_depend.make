# Empty compiler generated dependencies file for analysis_profileio_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for regions_dce_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/regions_dce_test.dir/regions/DeadCodeElimTest.cpp.o"
  "CMakeFiles/regions_dce_test.dir/regions/DeadCodeElimTest.cpp.o.d"
  "regions_dce_test"
  "regions_dce_test.pdb"
  "regions_dce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_dce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

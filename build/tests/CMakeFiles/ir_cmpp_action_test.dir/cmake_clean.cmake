file(REMOVE_RECURSE
  "CMakeFiles/ir_cmpp_action_test.dir/ir/CmppActionTest.cpp.o"
  "CMakeFiles/ir_cmpp_action_test.dir/ir/CmppActionTest.cpp.o.d"
  "ir_cmpp_action_test"
  "ir_cmpp_action_test.pdb"
  "ir_cmpp_action_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_cmpp_action_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ir_cmpp_action_test.
# This may be replaced when dependencies are built.

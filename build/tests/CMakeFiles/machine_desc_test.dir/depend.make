# Empty dependencies file for machine_desc_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/machine_desc_test.dir/machine/MachineDescTest.cpp.o"
  "CMakeFiles/machine_desc_test.dir/machine/MachineDescTest.cpp.o.d"
  "machine_desc_test"
  "machine_desc_test.pdb"
  "machine_desc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_desc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

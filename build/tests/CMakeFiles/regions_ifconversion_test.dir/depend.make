# Empty dependencies file for regions_ifconversion_test.
# This may be replaced when dependencies are built.

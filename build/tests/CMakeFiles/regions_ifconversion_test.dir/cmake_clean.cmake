file(REMOVE_RECURSE
  "CMakeFiles/regions_ifconversion_test.dir/regions/IfConversionTest.cpp.o"
  "CMakeFiles/regions_ifconversion_test.dir/regions/IfConversionTest.cpp.o.d"
  "regions_ifconversion_test"
  "regions_ifconversion_test.pdb"
  "regions_ifconversion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_ifconversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cpr_strcpy_walkthrough_test.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cpr_strcpy_walkthrough_test.

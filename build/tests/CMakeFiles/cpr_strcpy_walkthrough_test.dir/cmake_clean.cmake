file(REMOVE_RECURSE
  "CMakeFiles/cpr_strcpy_walkthrough_test.dir/cpr/StrcpyWalkthroughTest.cpp.o"
  "CMakeFiles/cpr_strcpy_walkthrough_test.dir/cpr/StrcpyWalkthroughTest.cpp.o.d"
  "cpr_strcpy_walkthrough_test"
  "cpr_strcpy_walkthrough_test.pdb"
  "cpr_strcpy_walkthrough_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_strcpy_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for regions_frp_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/regions_frp_test.dir/regions/FRPConversionTest.cpp.o"
  "CMakeFiles/regions_frp_test.dir/regions/FRPConversionTest.cpp.o.d"
  "regions_frp_test"
  "regions_frp_test.pdb"
  "regions_frp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_frp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

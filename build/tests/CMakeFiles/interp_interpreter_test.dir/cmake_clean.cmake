file(REMOVE_RECURSE
  "CMakeFiles/interp_interpreter_test.dir/interp/InterpreterTest.cpp.o"
  "CMakeFiles/interp_interpreter_test.dir/interp/InterpreterTest.cpp.o.d"
  "interp_interpreter_test"
  "interp_interpreter_test.pdb"
  "interp_interpreter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cpr_fullcpr_test.
# This may be replaced when dependencies are built.

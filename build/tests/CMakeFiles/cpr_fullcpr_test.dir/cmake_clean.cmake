file(REMOVE_RECURSE
  "CMakeFiles/cpr_fullcpr_test.dir/cpr/FullCPRTest.cpp.o"
  "CMakeFiles/cpr_fullcpr_test.dir/cpr/FullCPRTest.cpp.o.d"
  "cpr_fullcpr_test"
  "cpr_fullcpr_test.pdb"
  "cpr_fullcpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_fullcpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

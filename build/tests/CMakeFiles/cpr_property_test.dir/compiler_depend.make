# Empty compiler generated dependencies file for cpr_property_test.
# This may be replaced when dependencies are built.

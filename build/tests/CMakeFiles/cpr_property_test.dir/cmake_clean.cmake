file(REMOVE_RECURSE
  "CMakeFiles/cpr_property_test.dir/cpr/PropertyTest.cpp.o"
  "CMakeFiles/cpr_property_test.dir/cpr/PropertyTest.cpp.o.d"
  "cpr_property_test"
  "cpr_property_test.pdb"
  "cpr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

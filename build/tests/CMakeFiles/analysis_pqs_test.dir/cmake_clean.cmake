file(REMOVE_RECURSE
  "CMakeFiles/analysis_pqs_test.dir/analysis/PQSTest.cpp.o"
  "CMakeFiles/analysis_pqs_test.dir/analysis/PQSTest.cpp.o.d"
  "analysis_pqs_test"
  "analysis_pqs_test.pdb"
  "analysis_pqs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_pqs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for analysis_pqs_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for regions_unroller_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/regions_unroller_test.dir/regions/LoopUnrollerTest.cpp.o"
  "CMakeFiles/regions_unroller_test.dir/regions/LoopUnrollerTest.cpp.o.d"
  "regions_unroller_test"
  "regions_unroller_test.pdb"
  "regions_unroller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_unroller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ir_roundtrip_property_test.
# This may be replaced when dependencies are built.

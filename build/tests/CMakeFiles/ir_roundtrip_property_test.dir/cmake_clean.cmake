file(REMOVE_RECURSE
  "CMakeFiles/ir_roundtrip_property_test.dir/ir/RoundTripPropertyTest.cpp.o"
  "CMakeFiles/ir_roundtrip_property_test.dir/ir/RoundTripPropertyTest.cpp.o.d"
  "ir_roundtrip_property_test"
  "ir_roundtrip_property_test.pdb"
  "ir_roundtrip_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_roundtrip_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

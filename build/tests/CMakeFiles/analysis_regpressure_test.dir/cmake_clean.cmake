file(REMOVE_RECURSE
  "CMakeFiles/analysis_regpressure_test.dir/analysis/RegPressureTest.cpp.o"
  "CMakeFiles/analysis_regpressure_test.dir/analysis/RegPressureTest.cpp.o.d"
  "analysis_regpressure_test"
  "analysis_regpressure_test.pdb"
  "analysis_regpressure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_regpressure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

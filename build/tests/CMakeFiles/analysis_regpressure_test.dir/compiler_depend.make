# Empty compiler generated dependencies file for analysis_regpressure_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sched_perfmodel_test.dir/sched/PerfModelTest.cpp.o"
  "CMakeFiles/sched_perfmodel_test.dir/sched/PerfModelTest.cpp.o.d"
  "sched_perfmodel_test"
  "sched_perfmodel_test.pdb"
  "sched_perfmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_perfmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sched_perfmodel_test.
# This may be replaced when dependencies are built.

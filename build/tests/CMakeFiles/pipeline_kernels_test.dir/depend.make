# Empty dependencies file for pipeline_kernels_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pipeline_kernels_test.dir/pipeline/PipelineKernelsTest.cpp.o"
  "CMakeFiles/pipeline_kernels_test.dir/pipeline/PipelineKernelsTest.cpp.o.d"
  "pipeline_kernels_test"
  "pipeline_kernels_test.pdb"
  "pipeline_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

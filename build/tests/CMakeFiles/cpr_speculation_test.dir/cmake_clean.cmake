file(REMOVE_RECURSE
  "CMakeFiles/cpr_speculation_test.dir/cpr/SpeculationTest.cpp.o"
  "CMakeFiles/cpr_speculation_test.dir/cpr/SpeculationTest.cpp.o.d"
  "cpr_speculation_test"
  "cpr_speculation_test.pdb"
  "cpr_speculation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_speculation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

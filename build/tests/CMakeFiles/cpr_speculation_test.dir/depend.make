# Empty dependencies file for cpr_speculation_test.
# This may be replaced when dependencies are built.

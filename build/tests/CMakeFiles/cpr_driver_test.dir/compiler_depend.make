# Empty compiler generated dependencies file for cpr_driver_test.
# This may be replaced when dependencies are built.

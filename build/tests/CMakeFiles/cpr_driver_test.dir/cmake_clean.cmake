file(REMOVE_RECURSE
  "CMakeFiles/cpr_driver_test.dir/cpr/ControlCPRDriverTest.cpp.o"
  "CMakeFiles/cpr_driver_test.dir/cpr/ControlCPRDriverTest.cpp.o.d"
  "cpr_driver_test"
  "cpr_driver_test.pdb"
  "cpr_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

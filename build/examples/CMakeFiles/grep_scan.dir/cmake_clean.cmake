file(REMOVE_RECURSE
  "CMakeFiles/grep_scan.dir/grep_scan.cpp.o"
  "CMakeFiles/grep_scan.dir/grep_scan.cpp.o.d"
  "grep_scan"
  "grep_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grep_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

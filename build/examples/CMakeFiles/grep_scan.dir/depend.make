# Empty dependencies file for grep_scan.
# This may be replaced when dependencies are built.

# Empty dependencies file for strcpy_walkthrough.
# This may be replaced when dependencies are built.

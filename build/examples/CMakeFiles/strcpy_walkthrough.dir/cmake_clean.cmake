file(REMOVE_RECURSE
  "CMakeFiles/strcpy_walkthrough.dir/strcpy_walkthrough.cpp.o"
  "CMakeFiles/strcpy_walkthrough.dir/strcpy_walkthrough.cpp.o.d"
  "strcpy_walkthrough"
  "strcpy_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strcpy_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

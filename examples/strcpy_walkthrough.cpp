//===- examples/strcpy_walkthrough.cpp - The paper's Section 6 example ----===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Walks the paper's worked example interactively: the unrolled strcpy
// inner loop through each ICBM phase, printing the listing after every
// stage with stable operation ids so the code motion is easy to follow
// (compare with the paper's Figures 6 and 7).
//
//   ./build/examples/strcpy_walkthrough [unroll] [stringlen]
//
//===----------------------------------------------------------------------===//

#include "cpr/Match.h"
#include "cpr/OffTraceMotion.h"
#include "cpr/PredicateSpeculation.h"
#include "cpr/Restructure.h"
#include "interp/Profiler.h"
#include "ir/IRPrinter.h"
#include "regions/DeadCodeElim.h"
#include "regions/FRPConversion.h"
#include "workloads/Kernels.h"

#include <cstdio>
#include <cstdlib>

using namespace cpr;

int main(int argc, char **argv) {
  unsigned Unroll = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  size_t Len = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 4096;

  PrintOptions PO;
  PO.ShowOpIds = true;

  KernelProgram P = buildStrcpyKernel(Unroll, Len);
  std::unique_ptr<Function> Baseline = P.Func->clone();
  Function &F = *P.Func;
  Block &Loop = *F.blockByName("Loop");

  std::printf("### stage 0: unrolled strcpy superblock (Figure 6(b))\n\n%s\n",
              printBlock(F, Loop, PO).c_str());

  // Profile the baseline (the match heuristics need branch statistics).
  Memory Mem = P.InitMem;
  ProfileData Profile = profileRun(*Baseline, Mem, P.InitRegs);

  // Phase 0: FRP conversion.
  FRPConversionStats FS = convertToFRP(F, Loop);
  std::printf("### stage 1: FRP conversion (Figure 6(c)) -- %u branches "
              "converted, %u fall-through predicates added\n\n%s\n",
              FS.BranchesConverted, FS.CmppDestsAdded,
              printBlock(F, Loop, PO).c_str());

  // Phase 1: predicate speculation.
  SpeculationStats SS = speculatePredicates(F, Loop);
  std::printf("### stage 2: predicate speculation (Figure 7(a)) -- %u "
              "promoted, %u demoted\n\n%s\n",
              SS.Promoted, SS.Demoted, printBlock(F, Loop, PO).c_str());

  // Phase 2: match.
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(F, Loop, Profile, CPROptions());
  std::printf("### stage 3: match -- %zu CPR block(s)\n\n", Blocks.size());
  for (size_t I = 0; I < Blocks.size(); ++I)
    std::printf("  CPR block %zu: %zu branches, %s variation, stop: %s%s\n",
                I, Blocks[I].size(),
                Blocks[I].TakenVariation ? "taken" : "fall-through",
                matchStopReasonName(Blocks[I].StopReason),
                Blocks[I].Transformable ? "" : " (not transformed)");
  std::printf("\n");

  // Phases 3-4 per CPR block, then cleanup.
  for (const CPRBlockInfo &Info : Blocks) {
    if (!Info.Transformable)
      continue;
    Expected<RestructurePlan> Plan = restructureCPRBlock(F, Loop, Info);
    if (!Plan) {
      std::printf("restructure failed: %s\n",
                  Plan.diagnostic().str().c_str());
      return 1;
    }
    std::printf("### stage 4: restructure (Figure 7(b)) -- lookaheads and "
                "bypass inserted\n\n%s\n",
                printBlock(F, Loop, PO).c_str());
    Expected<MotionStats> MS = moveOffTrace(F, *Plan);
    if (!MS) {
      std::printf("off-trace motion failed: %s\n",
                  MS.diagnostic().str().c_str());
      return 1;
    }
    std::printf("### stage 5: off-trace motion -- %u moved, %u split\n\n",
                MS->Moved, MS->Split);
  }
  DCEStats DS = eliminateDeadCode(F);
  std::printf("### stage 6: dead code elimination -- %u ops, %u compare "
              "destinations removed (Figure 7(c))\n\n%s\n",
              DS.OpsRemoved, DS.DestsRemoved, printFunction(F, PO).c_str());

  // Safety net: the walkthrough must not have changed what the program
  // does.
  EquivResult E = checkEquivalence(*Baseline, F, P.InitMem, P.InitRegs);
  std::printf("behavior preserved: %s\n",
              E.Equivalent ? "yes" : E.Detail.c_str());
  return E.Equivalent ? 0 : 1;
}

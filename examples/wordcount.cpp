//===- examples/wordcount.cpp - A wc-style scanner under control CPR ------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The paper's intro motivates control CPR with branch-intensive scalar
// code; text scanners are the canonical case. This example runs the
// wc-style kernel (character classification with an if-converted word
// counter and a rare newline exit) through the pipeline, prints the
// counters the program computes, and compares the estimated cycles per
// character before and after ICBM on each machine model.
//
//   ./build/examples/wordcount [unroll] [length]
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"
#include "pipeline/CompilerPipeline.h"

#include <cstdio>
#include <cstdlib>

using namespace cpr;

int main(int argc, char **argv) {
  unsigned Unroll = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  size_t Len = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 16384;

  KernelProgram P = buildWcKernel(Unroll, Len);
  std::printf("workload: %s\n", P.Description.c_str());

  // Run the program itself and show its outputs (chars, lines, words).
  {
    Memory Mem = P.InitMem;
    RunResult R = interpret(*P.Func, Mem, P.InitRegs);
    if (!R.halted()) {
      std::fprintf(stderr, "run failed: %s\n", R.ErrorMsg.c_str());
      return 1;
    }
    std::printf("program output: chars=%lld lines=%lld words=%lld\n",
                static_cast<long long>(R.Observed[0]),
                static_cast<long long>(R.Observed[1]),
                static_cast<long long>(R.Observed[2]));
  }

  // Full before/after comparison.
  PipelineResult R = runPipeline(P);
  std::printf("\nICBM summary: %u CPR blocks, %u branches covered, "
              "dynamic branches x%.2f, dynamic ops x%.3f\n\n",
              R.CPR.CPRBlocksTransformed, R.CPR.BranchesCovered,
              R.dynBranchRatio(), R.dynOpRatio());

  std::printf("%-12s %16s %16s %9s\n", "machine", "cycles baseline",
              "cycles ICBM", "speedup");
  for (const MachineComparison &M : R.Machines)
    std::printf("%-12s %16.0f %16.0f %8.2fx\n", M.MachineName.c_str(),
                M.BaselineCycles, M.TreatedCycles, M.speedup());

  double PerCharBase =
      R.Machines[2].BaselineCycles / static_cast<double>(Len);
  double PerCharCpr = R.Machines[2].TreatedCycles / static_cast<double>(Len);
  std::printf("\nmedium machine: %.2f -> %.2f estimated cycles per "
              "character\n",
              PerCharBase, PerCharCpr);
  return 0;
}

//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Builds a small superblock program with the textual IR, profiles it in
// the interpreter, applies control CPR (FRP conversion + ICBM + DCE),
// checks behavioral equivalence, and estimates the speedup on the paper's
// five EPIC machine models.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/CompilerPipeline.h"

#include <cstdio>

using namespace cpr;

int main() {
  // 1. Write a program. A Block is a superblock-style linear region:
  //    side-exit branches may appear anywhere inside it. Conditional
  //    branches are the PlayDoh three-operation sequence: a cmpp computes
  //    the taken predicate, a pbr prepares the target, the branch fires
  //    when the predicate is true.
  std::unique_ptr<Function> Program = parseFunctionOrDie(R"(
func @scan {
  observable r5                 ; checked when the program halts
block @Entry:
  r5 = mov(0)                   ; accumulator
block @Loop:
  r10 = add(r1, 0)              ; load three elements per iteration
  r11 = load.m1(r10)
  p1:un = cmpp.lt(r11, 3)       ; rare early exit 1
  b1 = pbr(@Done)
  branch(p1, b1)
  r5 = add(r5, r11)
  r12 = add(r1, 1)
  r13 = load.m1(r12)
  p2:un = cmpp.lt(r13, 3)       ; rare early exit 2
  b2 = pbr(@Done)
  branch(p2, b2)
  r5 = add(r5, r13)
  r14 = add(r1, 2)
  r15 = load.m1(r14)
  p3:un = cmpp.lt(r15, 3)       ; rare early exit 3
  b3 = pbr(@Done)
  branch(p3, b3)
  r5 = add(r5, r15)
  r1 = add(r1, 3)
  r2 = sub(r2, 1)
  p4:un = cmpp.gt(r2, 0)        ; loop-back branch, predominantly taken
  b4 = pbr(@Loop)
  branch(p4, b4)
  halt
block @Done:
  halt
}
)");

  // 2. Give it inputs: 300 data words >= 3 (the exits are rare), plus a
  //    terminating small value.
  KernelProgram P;
  P.Func = std::move(Program);
  for (int64_t I = 0; I < 300; ++I)
    P.InitMem.store(1000 + I, 3 + (I * 17) % 95);
  P.InitMem.store(1000 + 299, 1); // eventually exit early
  P.InitRegs = {{Reg::gpr(1), 1000}, {Reg::gpr(2), 200}};

  // 3. Run the full experimental pipeline: profile, transform, verify
  //    equivalence (aborts loudly if ICBM ever changed behavior),
  //    re-profile, schedule for each machine, estimate cycles.
  PipelineResult R = runPipeline(P);

  std::printf("control CPR on @scan\n");
  std::printf("  CPR blocks transformed : %u (taken variation: %u)\n",
              R.CPR.CPRBlocksTransformed, R.CPR.TakenVariants);
  std::printf("  branches covered       : %u\n", R.CPR.BranchesCovered);
  std::printf("  static ops             : %zu -> %zu (%.2fx)\n",
              R.StaticOpsBaseline, R.StaticOpsTreated, R.staticOpRatio());
  std::printf("  dynamic branches       : %llu -> %llu (%.2fx)\n",
              static_cast<unsigned long long>(
                  R.DynBaseline.BranchesDispatched),
              static_cast<unsigned long long>(
                  R.DynTreated.BranchesDispatched),
              R.dynBranchRatio());
  std::printf("  speedups               :");
  for (const MachineComparison &M : R.Machines)
    std::printf(" %s %.2f", M.MachineName.c_str(), M.speedup());
  std::printf("\n\n");

  // 4. Look at the transformed code: one bypass branch on trace, the
  //    original branches in the compensation block.
  std::printf("height-reduced code:\n%s", printFunction(*R.Treated).c_str());
  return 0;
}

//===- examples/grep_scan.cpp - Byte scanning under control CPR -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// grep's inner loop -- scan a buffer for a target byte with rarely-taken
// hit branches -- is one of the paper's largest winners (2.11x on the
// wide machine, Table 2). This example sweeps the hit rate to show the
// profile sensitivity of the transformation: as hits become common, the
// exit-weight heuristic cuts CPR blocks short and the speedup fades,
// exactly the unbiased-branch behavior Section 7 describes for 099.go.
//
//   ./build/examples/grep_scan [unroll] [length]
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"

#include <cstdio>
#include <cstdlib>

using namespace cpr;

int main(int argc, char **argv) {
  unsigned Unroll = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  size_t Len = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 16384;

  std::printf("grep inner-loop scan, unroll %u, %zu bytes\n\n", Unroll, Len);
  std::printf("%-9s %7s %9s | %7s %7s %7s %7s %7s\n", "hit rate",
              "blocks", "dyn br", "Seq", "Nar", "Med", "Wid", "Inf");

  for (double Rate : {0.001, 0.01, 0.05, 0.15, 0.40}) {
    KernelProgram P = buildGrepKernel(Unroll, Len, Rate, 42);
    PipelineResult R = runPipeline(P);
    std::printf("%-9.3f %7u %8.2fx |", Rate, R.CPR.CPRBlocksTransformed,
                R.dynBranchRatio());
    for (const MachineComparison &M : R.Machines)
      std::printf(" %6.2fx", M.speedup());
    std::printf("\n");
  }

  std::printf("\nrare hits -> long CPR blocks -> branch chain collapses "
              "and the scan parallelizes;\nfrequent hits -> unbiased "
              "branches -> the heuristics back off, as in the paper's "
              "099.go discussion\n");
  return 0;
}

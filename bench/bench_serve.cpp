//===- bench/bench_serve.cpp - cprd load driver (cpr-bench-serve) ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Load driver for the compile service: replays a mixed workload (the
// built-in Unix-utility kernels, seeded fuzz-generated programs, and the
// committed fuzz regression corpus) against an in-process CompileService
// at several client thread counts, and reports
//
//   - throughput (regions compiled per second),
//   - request latency percentiles (p50 / p95 / p99),
//   - region-cache hit rate and eviction count,
//   - a byte-identity audit: every repeat of a request must produce a
//     response frame byte-identical to the first (cache replay is
//     indistinguishable from a cold compile on the wire).
//
// Each request in the schedule repeats every unique program several
// times (round-robin), so a healthy cache shows a hit rate well above
// 50% -- the committed BENCH_serve.json baseline records it.
//
// Results are written as a cpr-stats-v1.3 document: deterministic facts
// (request/hit/miss counts, identity failures) in "counters", wall-clock
// derived numbers (latency percentiles, regions/s) in "times_ms".
//
//   cpr-bench-serve --out=BENCH_serve.json
//   cpr-bench-serve --quick --out=/tmp/b.json     (CI smoke)
//   cpr-bench-serve --validate=BENCH_serve.json   (schema check only)
//
// Exit codes: 0 success, 1 failure (identity mismatch, bad validate
// target, I/O), 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "serve/CompileService.h"
#include "support/Diagnostic.h"
#include "support/JSON.h"
#include "support/OptionParser.h"
#include "support/Statistics.h"
#include "workloads/Kernels.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace cpr;
using namespace cpr::serve;

namespace {

struct Config {
  std::string Out;
  std::string Validate;
  std::string CorpusDir = "tests/fuzz/regressions";
  unsigned FuzzPrograms = 6;
  unsigned Repeats = 4;
  unsigned Seed = 1;
  unsigned CacheMB = 64;
  bool Quick = false;
  bool Help = false;
};

OptionTable buildOptions(Config &C) {
  OptionTable T;
  T.addString("--out", "<file>",
              "write the cpr-stats-v1.3 result document here", C.Out);
  T.addString("--validate", "<file>",
              "validate an existing result document against the "
              "cpr-stats schema and exit (no load run)",
              C.Validate);
  T.addString("--corpus", "<dir>",
              "fuzz regression corpus to replay (default "
              "tests/fuzz/regressions)",
              C.CorpusDir);
  T.addUnsigned("--fuzz-programs", "<n>",
                "seeded generator programs to include", C.FuzzPrograms);
  T.addUnsigned("--repeats", "<n>",
                "times each unique program is requested per thread "
                "count (repeats exercise the region cache)",
                C.Repeats);
  T.addUnsigned("--seed", "<n>", "generator seed base", C.Seed);
  T.addUnsigned("--cache-mb", "<n>",
                "region-cache budget in MiB (0 = unlimited)", C.CacheMB);
  T.addFlag("--quick", "small workload for CI smoke runs", C.Quick);
  T.addFlag("--help", "print this help", C.Help);
  T.addFlag("-h", "print this help", C.Help);
  return T;
}

/// One schedulable request: the frame plus bookkeeping for the
/// byte-identity audit (UniqueIdx groups repeats of the same program).
struct WorkItem {
  CompileRequest Req;
  size_t UniqueIdx = 0;
};

/// Builds the unique-program list: built-in kernels (small parameters --
/// the bench measures the service, not the kernels), seeded fuzz
/// programs, and whatever regression corpus is present.
std::vector<std::string> buildPrograms(const Config &C) {
  std::vector<std::string> IRs;
  const size_t Len = C.Quick ? 256 : 1024;
  IRs.push_back(serializeFuzzProgram(buildStrcpyKernel(4, Len, 1)));
  IRs.push_back(serializeFuzzProgram(buildCmpKernel(4, Len, Len - 8, 2)));
  IRs.push_back(serializeFuzzProgram(buildGrepKernel(4, Len, 0.02, 3)));
  IRs.push_back(serializeFuzzProgram(buildWcKernel(4, Len, 4)));
  if (!C.Quick) {
    IRs.push_back(serializeFuzzProgram(buildLexKernel(4, Len, 5)));
    IRs.push_back(serializeFuzzProgram(buildCccpKernel(4, Len, 6)));
  }
  GeneratorConfig GC;
  unsigned NumFuzz = C.Quick ? std::min(C.FuzzPrograms, 2u)
                             : C.FuzzPrograms;
  for (unsigned I = 0; I < NumFuzz; ++I)
    IRs.push_back(serializeFuzzProgram(generateProgram(C.Seed + I, GC)));
  for (const std::string &Path : listCorpusFiles(C.CorpusDir)) {
    FuzzParseResult FP = loadFuzzProgramFile(Path);
    if (FP)
      IRs.push_back(serializeFuzzProgram(FP.Program));
  }
  return IRs;
}

/// The request schedule: every unique program repeated Repeats times,
/// round-robin (u0 u1 ... u0 u1 ...), so repeats of a program arrive
/// interleaved with other work -- the cache-adversarial order.
std::vector<WorkItem> buildSchedule(const std::vector<std::string> &IRs,
                                    unsigned Repeats) {
  std::vector<WorkItem> Items;
  for (unsigned R = 0; R < Repeats; ++R)
    for (size_t U = 0; U < IRs.size(); ++U) {
      WorkItem W;
      W.Req.Id = "u" + std::to_string(U) + "r" + std::to_string(R);
      W.Req.IR = IRs[U];
      W.UniqueIdx = U;
      Items.push_back(std::move(W));
    }
  return Items;
}

struct RunResultRow {
  unsigned Threads = 0;
  size_t Requests = 0;
  size_t OkResponses = 0;
  uint64_t Regions = 0;
  uint64_t CacheHits = 0, CacheMisses = 0, CacheEvictions = 0;
  size_t IdentityFailures = 0;
  double WallMs = 0.0;
  double P50Ms = 0.0, P95Ms = 0.0, P99Ms = 0.0;

  double hitRate() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total ? static_cast<double>(CacheHits) / Total : 0.0;
  }
  double regionsPerSec() const {
    return WallMs > 0.0 ? 1000.0 * static_cast<double>(Regions) / WallMs
                        : 0.0;
  }
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

/// Replays the schedule against a fresh service on \p Threads client
/// threads. The byte-identity audit canonicalizes each response frame by
/// re-encoding it with the id of the first repeat (ids differ per repeat
/// by construction; everything else must match byte for byte).
RunResultRow runLoad(const Config &C, const std::vector<WorkItem> &Items,
                     size_t NumUnique, unsigned Threads) {
  ServiceOptions SO;
  SO.CacheBytes = static_cast<size_t>(C.CacheMB) << 20;
  CompileService Service(SO);

  std::vector<double> Latencies(Items.size(), 0.0);
  std::vector<std::string> Canonical(Items.size());
  std::atomic<size_t> Next{0};
  std::atomic<uint64_t> Regions{0};
  std::atomic<size_t> Ok{0};

  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&] {
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= Items.size())
          return;
        auto T0 = std::chrono::steady_clock::now();
        CompileResponse Res = Service.compile(Items[I].Req);
        Latencies[I] = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - T0)
                           .count();
        if (Res.ok()) {
          Ok.fetch_add(1);
          Regions.fetch_add(Res.CPR.RegionsProcessed);
        }
        // Canonical frame: the response as if it answered repeat 0.
        Res.Id = "u" + std::to_string(Items[I].UniqueIdx) + "r0";
        // Per-request hit/miss counts legitimately differ between cold
        // and cached runs; blank them for the identity audit (the wire
        // check in tests/serve covers their correctness).
        Res.CacheHits = Res.CacheMisses = 0;
        Canonical[I] = encodeResponse(Res);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  RunResultRow Row;
  Row.Threads = Threads;
  Row.Requests = Items.size();
  Row.OkResponses = Ok.load();
  Row.Regions = Regions.load();
  Row.WallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - Start)
                   .count();

  // Byte-identity audit: all repeats of a unique program produced the
  // same canonical frame.
  std::vector<const std::string *> First(NumUnique, nullptr);
  for (size_t I = 0; I < Items.size(); ++I) {
    const std::string *&F = First[Items[I].UniqueIdx];
    if (!F)
      F = &Canonical[I];
    else if (*F != Canonical[I])
      ++Row.IdentityFailures;
  }

  RegionCacheStats CS = Service.cacheStats();
  Row.CacheHits = CS.Hits;
  Row.CacheMisses = CS.Misses;
  Row.CacheEvictions = CS.Evictions;

  std::sort(Latencies.begin(), Latencies.end());
  Row.P50Ms = percentile(Latencies, 0.50);
  Row.P95Ms = percentile(Latencies, 0.95);
  Row.P99Ms = percentile(Latencies, 0.99);
  return Row;
}

/// --validate: the committed baseline (and CI artifacts) must be a
/// cpr-stats-v1.2/v1.3 document with the serve keys present and numeric.
int validateDocument(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cpr-bench-serve: cannot open '%s'\n",
                 Path.c_str());
    return exit_codes::Failure;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  JSONParseResult PR = parseJSON(Buf.str());
  if (!PR) {
    std::fprintf(stderr, "cpr-bench-serve: %s: %s\n", Path.c_str(),
                 PR.Error.c_str());
    return exit_codes::Failure;
  }
  const JSONValue &Doc = PR.Value;
  // v1.3 added the additive sim/* counter families; serve documents are
  // unchanged between the two, so baselines written under either schema
  // validate.
  const JSONValue *Schema = Doc.find("schema");
  if (!Schema || !Schema->isString() ||
      (Schema->getString() != "cpr-stats-v1.2" &&
       Schema->getString() != "cpr-stats-v1.3")) {
    std::fprintf(stderr,
                 "cpr-bench-serve: %s: missing or wrong \"schema\" "
                 "(want cpr-stats-v1.2 or cpr-stats-v1.3)\n",
                 Path.c_str());
    return exit_codes::Failure;
  }
  const JSONValue *Counters = Doc.find("counters");
  if (!Counters || !Counters->isObject()) {
    std::fprintf(stderr, "cpr-bench-serve: %s: missing \"counters\"\n",
                 Path.c_str());
    return exit_codes::Failure;
  }
  for (const auto &M : Counters->members())
    if (!M.second.isNumber()) {
      std::fprintf(stderr,
                   "cpr-bench-serve: %s: counter \"%s\" is not a "
                   "number\n",
                   Path.c_str(), M.first.c_str());
      return exit_codes::Failure;
    }
  size_t ThreadRows = 0;
  for (const auto &M : Counters->members())
    if (M.first.size() > 6 && M.first.compare(0, 7, "serve/t") == 0 &&
        M.first.find("/requests") != std::string::npos)
      ++ThreadRows;
  if (ThreadRows < 4) {
    std::fprintf(stderr,
                 "cpr-bench-serve: %s: want serve/t*/requests rows for "
                 ">=4 thread counts, found %zu\n",
                 Path.c_str(), ThreadRows);
    return exit_codes::Failure;
  }
  const JSONValue *Identity = Counters->find("serve/identity_failures");
  if (!Identity || !Identity->isNumber() || Identity->getNumber() != 0) {
    std::fprintf(stderr,
                 "cpr-bench-serve: %s: serve/identity_failures missing "
                 "or nonzero\n",
                 Path.c_str());
    return exit_codes::Failure;
  }
  std::printf("cpr-bench-serve: %s: valid cpr-stats document "
              "(%zu thread rows)\n",
              Path.c_str(), ThreadRows);
  return exit_codes::Success;
}

} // namespace

int main(int argc, char **argv) {
  Config C;
  OptionTable Options = buildOptions(C);
  const std::string Usage = "usage: cpr-bench-serve [options]";

  std::string ParseError;
  std::vector<std::string> Positional;
  if (!Options.parse(argc, argv, ParseError, &Positional) ||
      !Positional.empty()) {
    if (!ParseError.empty())
      std::fprintf(stderr, "cpr-bench-serve: %s\n", ParseError.c_str());
    std::fprintf(stderr, "%s", Options.help(Usage).c_str());
    return exit_codes::UsageError;
  }
  if (C.Help) {
    std::printf("%s", Options.help(Usage).c_str());
    return exit_codes::Success;
  }
  if (!C.Validate.empty())
    return validateDocument(C.Validate);

  std::vector<std::string> IRs = buildPrograms(C);
  if (C.Quick && C.Repeats > 2)
    C.Repeats = 2;
  std::vector<WorkItem> Items = buildSchedule(IRs, C.Repeats);
  std::fprintf(stderr,
               "cpr-bench-serve: %zu unique program(s), %u repeat(s), "
               "%zu request(s) per thread count\n",
               IRs.size(), C.Repeats, Items.size());

  const unsigned ThreadCounts[] = {1, 2, 4, 8};
  StatsRegistry Stats;
  size_t TotalIdentityFailures = 0;
  for (unsigned T : ThreadCounts) {
    RunResultRow Row = runLoad(C, Items, IRs.size(), T);
    TotalIdentityFailures += Row.IdentityFailures;
    std::fprintf(stderr,
                 "  t=%u: %zu req in %.0f ms, %.0f regions/s, "
                 "p50=%.2f p95=%.2f p99=%.2f ms, hit rate %.1f%%, "
                 "%llu eviction(s)%s\n",
                 T, Row.Requests, Row.WallMs, Row.regionsPerSec(),
                 Row.P50Ms, Row.P95Ms, Row.P99Ms, 100.0 * Row.hitRate(),
                 static_cast<unsigned long long>(Row.CacheEvictions),
                 Row.IdentityFailures ? "  IDENTITY FAILURES" : "");

    const std::string P = "serve/t" + std::to_string(T) + "/";
    Stats.addCount(P + "requests", static_cast<double>(Row.Requests));
    Stats.addCount(P + "ok", static_cast<double>(Row.OkResponses));
    Stats.addCount(P + "regions", static_cast<double>(Row.Regions));
    Stats.addCount(P + "cache_hits", static_cast<double>(Row.CacheHits));
    Stats.addCount(P + "cache_misses",
                   static_cast<double>(Row.CacheMisses));
    Stats.addCount(P + "cache_evictions",
                   static_cast<double>(Row.CacheEvictions));
    Stats.addCount(P + "hit_rate_pct", 100.0 * Row.hitRate());
    Stats.recordTimeMs(P + "wall_ms", Row.WallMs);
    Stats.recordTimeMs(P + "p50_ms", Row.P50Ms);
    Stats.recordTimeMs(P + "p95_ms", Row.P95Ms);
    Stats.recordTimeMs(P + "p99_ms", Row.P99Ms);
    Stats.recordTimeMs(P + "regions_per_sec", Row.regionsPerSec());
  }
  Stats.addCount("serve/identity_failures",
                 static_cast<double>(TotalIdentityFailures));
  Stats.addCount("serve/unique_programs", static_cast<double>(IRs.size()));
  Stats.addCount("serve/repeats", C.Repeats);

  if (!C.Out.empty()) {
    std::string Error;
    if (!writeStatsJSONFile(Stats, C.Out, &Error)) {
      std::fprintf(stderr, "cpr-bench-serve: %s\n", Error.c_str());
      return exit_codes::Failure;
    }
    std::fprintf(stderr, "cpr-bench-serve: wrote %s\n", C.Out.c_str());
  } else {
    std::printf("%s\n", Stats.toJSONText().c_str());
  }

  if (TotalIdentityFailures > 0) {
    std::fprintf(stderr,
                 "cpr-bench-serve: FAILED: %zu response(s) were not "
                 "byte-identical across repeats\n",
                 TotalIdentityFailures);
    return exit_codes::Failure;
  }
  return exit_codes::Success;
}

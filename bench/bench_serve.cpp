//===- bench/bench_serve.cpp - cprd load driver (cpr-bench-serve) ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Load driver for the compile service: replays a mixed workload (the
// built-in Unix-utility kernels, seeded fuzz-generated programs, and the
// committed fuzz regression corpus) against an in-process CompileService
// at several client thread counts, and reports
//
//   - throughput (regions compiled per second),
//   - request latency percentiles (p50 / p95 / p99),
//   - region-cache hit rate and eviction count,
//   - a byte-identity audit: every repeat of a request must produce a
//     response frame byte-identical to the first (cache replay is
//     indistinguishable from a cold compile on the wire).
//
// Each request in the schedule repeats every unique program several
// times (round-robin), so a healthy cache shows a hit rate well above
// 50% -- the committed BENCH_serve.json baseline records it.
//
// Results are written as a cpr-stats-v1.3 document: deterministic facts
// (request/hit/miss counts, identity failures) in "counters", wall-clock
// derived numbers (latency percentiles, regions/s) in "times_ms".
//
//   cpr-bench-serve --out=BENCH_serve.json
//   cpr-bench-serve --quick --out=/tmp/b.json     (CI smoke)
//   cpr-bench-serve --validate=BENCH_serve.json   (schema check only)
//
// Exit codes: 0 success, 1 failure (identity mismatch, bad validate
// target, I/O), 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "serve/Client.h"
#include "serve/CompileService.h"
#include "serve/Server.h"
#include "support/Diagnostic.h"
#include "support/FaultInjector.h"
#include "support/Framing.h"
#include "support/JSON.h"
#include "support/OptionParser.h"
#include "support/RNG.h"
#include "support/Statistics.h"
#include "workloads/Kernels.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace cpr;
using namespace cpr::serve;

namespace {

struct Config {
  std::string Out;
  std::string Validate;
  std::string CorpusDir = "tests/fuzz/regressions";
  unsigned FuzzPrograms = 6;
  unsigned Repeats = 4;
  unsigned Seed = 1;
  unsigned CacheMB = 64;
  bool Chaos = false;
  unsigned ChaosRequests = 500;
  bool Quick = false;
  bool Help = false;
};

OptionTable buildOptions(Config &C) {
  OptionTable T;
  T.addString("--out", "<file>",
              "write the cpr-stats-v1.3 result document here", C.Out);
  T.addString("--validate", "<file>",
              "validate an existing result document against the "
              "cpr-stats schema and exit (no load run)",
              C.Validate);
  T.addString("--corpus", "<dir>",
              "fuzz regression corpus to replay (default "
              "tests/fuzz/regressions)",
              C.CorpusDir);
  T.addUnsigned("--fuzz-programs", "<n>",
                "seeded generator programs to include", C.FuzzPrograms);
  T.addUnsigned("--repeats", "<n>",
                "times each unique program is requested per thread "
                "count (repeats exercise the region cache)",
                C.Repeats);
  T.addUnsigned("--seed", "<n>", "generator seed base", C.Seed);
  T.addUnsigned("--cache-mb", "<n>",
                "region-cache budget in MiB (0 = unlimited)", C.CacheMB);
  T.addFlag("--chaos",
            "run the seeded chaos campaign (adversarial clients against "
            "a live faulted socket daemon) instead of the load run",
            C.Chaos);
  T.addUnsigned("--chaos-requests", "<n>",
                "requests the chaos campaign issues (default 500)",
                C.ChaosRequests);
  T.addFlag("--quick", "small workload for CI smoke runs", C.Quick);
  T.addFlag("--help", "print this help", C.Help);
  T.addFlag("-h", "print this help", C.Help);
  return T;
}

/// One schedulable request: the frame plus bookkeeping for the
/// byte-identity audit (UniqueIdx groups repeats of the same program).
struct WorkItem {
  CompileRequest Req;
  size_t UniqueIdx = 0;
};

/// Builds the unique-program list: built-in kernels (small parameters --
/// the bench measures the service, not the kernels), seeded fuzz
/// programs, and whatever regression corpus is present.
std::vector<std::string> buildPrograms(const Config &C) {
  std::vector<std::string> IRs;
  const size_t Len = C.Quick ? 256 : 1024;
  IRs.push_back(serializeFuzzProgram(buildStrcpyKernel(4, Len, 1)));
  IRs.push_back(serializeFuzzProgram(buildCmpKernel(4, Len, Len - 8, 2)));
  IRs.push_back(serializeFuzzProgram(buildGrepKernel(4, Len, 0.02, 3)));
  IRs.push_back(serializeFuzzProgram(buildWcKernel(4, Len, 4)));
  if (!C.Quick) {
    IRs.push_back(serializeFuzzProgram(buildLexKernel(4, Len, 5)));
    IRs.push_back(serializeFuzzProgram(buildCccpKernel(4, Len, 6)));
  }
  GeneratorConfig GC;
  unsigned NumFuzz = C.Quick ? std::min(C.FuzzPrograms, 2u)
                             : C.FuzzPrograms;
  for (unsigned I = 0; I < NumFuzz; ++I)
    IRs.push_back(serializeFuzzProgram(generateProgram(C.Seed + I, GC)));
  for (const std::string &Path : listCorpusFiles(C.CorpusDir)) {
    FuzzParseResult FP = loadFuzzProgramFile(Path);
    if (FP)
      IRs.push_back(serializeFuzzProgram(FP.Program));
  }
  return IRs;
}

/// The request schedule: every unique program repeated Repeats times,
/// round-robin (u0 u1 ... u0 u1 ...), so repeats of a program arrive
/// interleaved with other work -- the cache-adversarial order.
std::vector<WorkItem> buildSchedule(const std::vector<std::string> &IRs,
                                    unsigned Repeats) {
  std::vector<WorkItem> Items;
  for (unsigned R = 0; R < Repeats; ++R)
    for (size_t U = 0; U < IRs.size(); ++U) {
      WorkItem W;
      W.Req.Id = "u" + std::to_string(U) + "r" + std::to_string(R);
      W.Req.IR = IRs[U];
      W.UniqueIdx = U;
      Items.push_back(std::move(W));
    }
  return Items;
}

struct RunResultRow {
  unsigned Threads = 0;
  size_t Requests = 0;
  size_t OkResponses = 0;
  size_t BusyResponses = 0;
  uint64_t Regions = 0;
  uint64_t CacheHits = 0, CacheMisses = 0, CacheEvictions = 0;
  size_t IdentityFailures = 0;
  double WallMs = 0.0;
  double P50Ms = 0.0, P95Ms = 0.0, P99Ms = 0.0;

  double hitRate() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total ? static_cast<double>(CacheHits) / Total : 0.0;
  }
  double busyRate() const {
    return Requests ? static_cast<double>(BusyResponses) /
                          static_cast<double>(Requests)
                    : 0.0;
  }
  double regionsPerSec() const {
    return WallMs > 0.0 ? 1000.0 * static_cast<double>(Regions) / WallMs
                        : 0.0;
  }
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

/// Replays the schedule against a fresh service on \p Threads client
/// threads. The byte-identity audit canonicalizes each response frame by
/// re-encoding it with the id of the first repeat (ids differ per repeat
/// by construction; everything else must match byte for byte).
RunResultRow runLoad(const Config &C, const std::vector<WorkItem> &Items,
                     size_t NumUnique, unsigned Threads) {
  ServiceOptions SO;
  SO.CacheBytes = static_cast<size_t>(C.CacheMB) << 20;
  CompileService Service(SO);

  std::vector<double> Latencies(Items.size(), 0.0);
  std::vector<std::string> Canonical(Items.size());
  std::atomic<size_t> Next{0};
  std::atomic<uint64_t> Regions{0};
  std::atomic<size_t> Ok{0};
  std::atomic<size_t> Busy{0};

  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&] {
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= Items.size())
          return;
        auto T0 = std::chrono::steady_clock::now();
        CompileResponse Res = Service.compile(Items[I].Req);
        Latencies[I] = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - T0)
                           .count();
        if (Res.ok()) {
          Ok.fetch_add(1);
          Regions.fetch_add(Res.CPR.RegionsProcessed);
        } else if (Res.Status == "busy") {
          // The in-process service has no admission queue, so this stays
          // zero here; the column exists so daemon-backed runs (and the
          // chaos campaign) report shedding in the same schema.
          Busy.fetch_add(1);
        }
        // Canonical frame: the response as if it answered repeat 0.
        Res.Id = "u" + std::to_string(Items[I].UniqueIdx) + "r0";
        // Per-request hit/miss counts legitimately differ between cold
        // and cached runs; blank them for the identity audit (the wire
        // check in tests/serve covers their correctness).
        Res.CacheHits = Res.CacheMisses = 0;
        Canonical[I] = encodeResponse(Res);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  RunResultRow Row;
  Row.Threads = Threads;
  Row.Requests = Items.size();
  Row.OkResponses = Ok.load();
  Row.BusyResponses = Busy.load();
  Row.Regions = Regions.load();
  Row.WallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - Start)
                   .count();

  // Byte-identity audit: all repeats of a unique program produced the
  // same canonical frame.
  std::vector<const std::string *> First(NumUnique, nullptr);
  for (size_t I = 0; I < Items.size(); ++I) {
    const std::string *&F = First[Items[I].UniqueIdx];
    if (!F)
      F = &Canonical[I];
    else if (*F != Canonical[I])
      ++Row.IdentityFailures;
  }

  RegionCacheStats CS = Service.cacheStats();
  Row.CacheHits = CS.Hits;
  Row.CacheMisses = CS.Misses;
  Row.CacheEvictions = CS.Evictions;

  std::sort(Latencies.begin(), Latencies.end());
  Row.P50Ms = percentile(Latencies, 0.50);
  Row.P95Ms = percentile(Latencies, 0.95);
  Row.P99Ms = percentile(Latencies, 0.99);
  return Row;
}

//===----------------------------------------------------------------------===//
// --chaos: the seeded resilience campaign (docs/SERVICE.md "Resilience").
//
// A live socket daemon, periodically armed with serve-layer faults, takes
// >= --chaos-requests adversarial requests from concurrent clients: torn
// frames, malformed frames, pings, pipelined bursts, hard disconnects
// mid-compile, and expired deadlines. Invariants enforced:
//
//   - the daemon never crashes (it drains cleanly and answers a final
//     ping after the abuse stops);
//   - every logical request is eventually answered exactly once (clients
//     reissue after injected drops; duplicates are failures);
//   - every audited `ok` response is byte-identical to what a cold
//     single-threaded CompileService produces for the same request
//     (canonicalized: id rewritten, per-request cache counts blanked).
//
// Requests that carry a deadline are checked for the degrade contract
// (ok + fell_back + deadline-exceeded) instead of byte identity: their
// responses legitimately depend on the wall clock.
//===----------------------------------------------------------------------===//

/// One raw connection to the chaos daemon (frame in, frame out).
struct ChaosConn {
  int FD = -1;
  std::unique_ptr<LineReader> Reader;

  explicit ChaosConn(const std::string &Path) {
    FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (FD < 0)
      return;
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      ::close(FD);
      FD = -1;
      return;
    }
    Reader = std::make_unique<LineReader>(FD);
  }
  ~ChaosConn() {
    if (FD >= 0)
      ::close(FD);
  }
  bool ok() const { return FD >= 0; }
  bool send(const std::string &Bytes) { return writeAll(FD, Bytes); }
  bool readFrame(std::string &Line) { return Reader->readLine(Line); }
  void hardClose() {
    ::close(FD);
    FD = -1;
  }
};

struct ChaosCounters {
  std::atomic<size_t> Issued{0};        ///< logical requests
  std::atomic<size_t> Answered{0};      ///< answered exactly once
  std::atomic<size_t> Reissues{0};      ///< extra attempts after drops
  std::atomic<size_t> Busy{0};          ///< busy refusals absorbed
  std::atomic<size_t> InjectedErrors{0};///< injected decode faults seen
  std::atomic<size_t> Disconnects{0};   ///< deliberate mid-compile closes
  std::atomic<size_t> DeadlineFellBack{0};
  std::atomic<size_t> IdentityFailures{0};
  std::atomic<size_t> ContractFailures{0}; ///< any broken invariant
};

/// Canonical ok-frame: the response as the reference service would label
/// it. Per-request cache counts legitimately differ between a cold and a
/// warmed daemon; everything else must match byte for byte.
std::string canonicalFrame(CompileResponse Res, const std::string &Id) {
  Res.Id = Id;
  Res.CacheHits = Res.CacheMisses = 0;
  return encodeResponse(Res);
}

/// One logical request, retried until answered: injected write faults
/// drop connections (reconnect and reissue), injected admission faults
/// and real capacity produce busy (back off and reissue), injected
/// decode faults produce an id-less parse error (reissue). Returns the
/// terminal response, or nullopt-style false on exhaustion.
bool chaosCall(const std::string &Path, const std::string &Frame,
               ChaosCounters &K, RNG &R, CompileResponse &Out,
               bool TearWrites) {
  for (unsigned Attempt = 0; Attempt < 64; ++Attempt) {
    if (Attempt > 0)
      K.Reissues.fetch_add(1);
    ChaosConn Conn(Path);
    if (!Conn.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    bool Sent;
    if (TearWrites && Frame.size() > 2) {
      size_t Cut = 1 + static_cast<size_t>(
                           R.nextDouble() *
                           static_cast<double>(Frame.size() - 2));
      Sent = Conn.send(Frame.substr(0, Cut)) && Conn.send(Frame.substr(Cut));
    } else {
      Sent = Conn.send(Frame);
    }
    if (!Sent)
      continue; // daemon-side drop beat the send; reissue
    std::string Line;
    if (!Conn.readFrame(Line))
      continue; // response lost to an injected write fault; reissue
    Expected<CompileResponse> Res = decodeResponse(Line);
    if (!Res)
      return false; // an unparseable response frame is a contract break
    if (Res->Status == "busy") {
      K.Busy.fetch_add(1);
      double Hint = 1.0;
      for (const auto &KV : Res->Extra)
        if (KV.first == "retry_after_ms")
          Hint = KV.second;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          Hint > 20.0 ? 20.0 : Hint));
      continue;
    }
    if (Res->Status == "error" && Res->Id.empty()) {
      // The injected frame-decode fault (or an idle-timeout notice):
      // per-frame, not connection-fatal -- reissue the valid request.
      K.InjectedErrors.fetch_add(1);
      continue;
    }
    Out = std::move(*Res);
    return true;
  }
  return false;
}

int runChaos(const Config &C, StatsRegistry &Stats) {
  std::signal(SIGPIPE, SIG_IGN); // a vanished peer must not kill the bench

  // The workload: a handful of unique programs, each with a committed
  // reference frame from a cold single-threaded service.
  GeneratorConfig GC;
  std::vector<std::string> Programs;
  for (unsigned I = 0; I < 5; ++I)
    Programs.push_back(serializeFuzzProgram(generateProgram(C.Seed + I, GC)));
  auto MakeRequest = [&](size_t U, std::string Id) {
    CompileRequest Req;
    Req.Id = std::move(Id);
    Req.IR = Programs[U];
    return Req;
  };
  CompileService Reference((ServiceOptions()));
  std::vector<std::string> RefFrames;
  for (size_t U = 0; U < Programs.size(); ++U)
    RefFrames.push_back(canonicalFrame(
        Reference.compile(MakeRequest(U, "ref")), "ref"));

  const std::string Path = "/tmp/cpr_bench_chaos_" +
                           std::to_string(::getpid()) + ".sock";
  ServerOptions SO;
  SO.SocketPath = Path;
  SO.Threads = 4;
  SO.MaxQueue = 32;
  SO.MaxPipeline = 8;
  SO.WriteTimeoutMs = 5000.0;
  Server Daemon(SO);
  std::thread Runner([&] { Daemon.runSocket(); });
  for (int I = 0; I < 100 && ::access(Path.c_str(), F_OK) != 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const char *FaultSites[] = {"serve.frame.decode", "serve.dispatch.enqueue",
                              "serve.cache.insert", "serve.socket.write"};
  ChaosCounters K;
  const unsigned ClientCount = 4;
  const size_t Total = C.ChaosRequests;
  std::atomic<size_t> NextReq{0};

  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < ClientCount; ++T)
    Clients.emplace_back([&, T] {
      RNG R(C.Seed * 7919 + T);
      for (;;) {
        size_t N = NextReq.fetch_add(1);
        if (N >= Total)
          return;
        // Periodically re-arm a serve-layer fault so abuse lands on a
        // *faulted* daemon. Single global armed site; races between
        // clients only change which request absorbs the fault.
        if (N % 7 == 0)
          fault::arm(FaultSites[(N / 7) % 4], 1 + N % 3);
        K.Issued.fetch_add(1);
        std::string Id = "q" + std::to_string(N);
        double Dice = R.nextDouble();
        if (Dice < 0.60) {
          // A good compile, torn writes half the time; byte-identity
          // audited against the cold reference.
          size_t U = N % Programs.size();
          CompileRequest Req = MakeRequest(U, Id);
          CompileResponse Res;
          if (!chaosCall(Path, encodeRequest(Req) + "\n", K, R, Res,
                         /*TearWrites=*/R.nextDouble() < 0.5)) {
            K.ContractFailures.fetch_add(1);
            continue;
          }
          K.Answered.fetch_add(1);
          if (Res.Status != "ok" ||
              canonicalFrame(std::move(Res), "ref") != RefFrames[U])
            K.IdentityFailures.fetch_add(1);
        } else if (Dice < 0.70) {
          CompileRequest Ping;
          Ping.Kind = RequestKind::Ping;
          Ping.Id = Id;
          CompileResponse Res;
          if (chaosCall(Path, encodeRequest(Ping) + "\n", K, R, Res,
                        false) &&
              Res.Status == "pong")
            K.Answered.fetch_add(1);
          else
            K.ContractFailures.fetch_add(1);
        } else if (Dice < 0.80) {
          // Malformed frame: owed exactly one id-less parse error.
          ChaosConn Conn(Path);
          std::string Line;
          if (Conn.ok() && Conn.send("{torn garbage " + Id + "\n") &&
              Conn.readFrame(Line)) {
            Expected<CompileResponse> Res = decodeResponse(Line);
            if (Res && Res->Status == "error")
              K.Answered.fetch_add(1);
            else
              K.ContractFailures.fetch_add(1);
          } else {
            // The daemon may have dropped us first (injected write
            // fault); a lost error frame for garbage is not a break.
            K.Answered.fetch_add(1);
          }
        } else if (Dice < 0.90) {
          // Vanish mid-compile: no response owed; the daemon must bill
          // the drop to this connection and keep serving.
          ChaosConn Conn(Path);
          if (Conn.ok())
            Conn.send(encodeRequest(MakeRequest(N % Programs.size(), Id)) +
                      "\n");
          Conn.hardClose();
          K.Disconnects.fetch_add(1);
          K.Answered.fetch_add(1); // nothing owed: trivially satisfied
        } else {
          // An expired deadline must degrade fail-safe, never hang.
          CompileRequest Req = MakeRequest(N % Programs.size(), Id);
          Req.DeadlineMs = 0.01;
          CompileResponse Res;
          if (!chaosCall(Path, encodeRequest(Req) + "\n", K, R, Res,
                         false)) {
            K.ContractFailures.fetch_add(1);
            continue;
          }
          K.Answered.fetch_add(1);
          bool FellBackWithCode = Res.FellBack;
          if (FellBackWithCode) {
            bool Found = false;
            for (const WireDiagnostic &W : Res.Diagnostics)
              Found = Found || W.Code == "deadline-exceeded";
            FellBackWithCode = Found;
            K.DeadlineFellBack.fetch_add(1);
          }
          if (Res.Status != "ok" || !FellBackWithCode)
            K.ContractFailures.fetch_add(1);
        }
      }
    });
  for (std::thread &T : Clients)
    T.join();
  fault::disarm();

  // The daemon survived the abuse iff it still answers cold.
  bool Alive = false;
  {
    CompileRequest Ping;
    Ping.Kind = RequestKind::Ping;
    Ping.Id = "post-chaos";
    RNG R(1);
    CompileResponse Res;
    ChaosCounters Scratch;
    Alive = chaosCall(Path, encodeRequest(Ping) + "\n", Scratch, R, Res,
                      false) &&
            Res.Status == "pong";
  }
  Daemon.requestStop();
  Runner.join();
  ServerStats S = Daemon.stats();

  Stats.addCount("chaos/requests", static_cast<double>(K.Issued.load()));
  Stats.addCount("chaos/answered", static_cast<double>(K.Answered.load()));
  Stats.addCount("chaos/reissues", static_cast<double>(K.Reissues.load()));
  Stats.addCount("chaos/busy", static_cast<double>(K.Busy.load()));
  Stats.addCount("chaos/injected_errors",
                 static_cast<double>(K.InjectedErrors.load()));
  Stats.addCount("chaos/disconnects",
                 static_cast<double>(K.Disconnects.load()));
  Stats.addCount("chaos/deadline_fell_back",
                 static_cast<double>(K.DeadlineFellBack.load()));
  Stats.addCount("chaos/identity_failures",
                 static_cast<double>(K.IdentityFailures.load()));
  Stats.addCount("chaos/contract_failures",
                 static_cast<double>(K.ContractFailures.load()));
  Stats.addCount("chaos/daemon_accepted", static_cast<double>(S.Accepted));
  Stats.addCount("chaos/daemon_shed", static_cast<double>(S.Shed));
  Stats.addCount("chaos/daemon_dropped", static_cast<double>(S.Dropped));
  Stats.addCount("chaos/daemon_alive", Alive ? 1.0 : 0.0);

  std::fprintf(stderr,
               "cpr-bench-serve: chaos: %zu request(s), %zu answered, "
               "%zu reissue(s), %zu busy, %zu injected error(s), "
               "%zu disconnect(s); daemon accepted %llu, shed %llu, "
               "dropped %llu; %zu identity / %zu contract failure(s)%s\n",
               K.Issued.load(), K.Answered.load(), K.Reissues.load(),
               K.Busy.load(), K.InjectedErrors.load(), K.Disconnects.load(),
               static_cast<unsigned long long>(S.Accepted),
               static_cast<unsigned long long>(S.Shed),
               static_cast<unsigned long long>(S.Dropped),
               K.IdentityFailures.load(), K.ContractFailures.load(),
               Alive ? "" : "; DAEMON DEAD");

  bool Clean = Alive && K.Answered.load() == K.Issued.load() &&
               K.IdentityFailures.load() == 0 &&
               K.ContractFailures.load() == 0 &&
               (K.Disconnects.load() == 0 || S.Dropped > 0);
  if (!Clean)
    std::fprintf(stderr, "cpr-bench-serve: chaos campaign FAILED\n");
  return Clean ? exit_codes::Success : exit_codes::Failure;
}

/// --validate: the committed baseline (and CI artifacts) must be a
/// cpr-stats-v1.2/v1.3 document with the serve keys present and numeric.
int validateDocument(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cpr-bench-serve: cannot open '%s'\n",
                 Path.c_str());
    return exit_codes::Failure;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  JSONParseResult PR = parseJSON(Buf.str());
  if (!PR) {
    std::fprintf(stderr, "cpr-bench-serve: %s: %s\n", Path.c_str(),
                 PR.Error.c_str());
    return exit_codes::Failure;
  }
  const JSONValue &Doc = PR.Value;
  // v1.3 added the additive sim/* counter families; serve documents are
  // unchanged between the two, so baselines written under either schema
  // validate.
  const JSONValue *Schema = Doc.find("schema");
  if (!Schema || !Schema->isString() ||
      (Schema->getString() != "cpr-stats-v1.2" &&
       Schema->getString() != "cpr-stats-v1.3")) {
    std::fprintf(stderr,
                 "cpr-bench-serve: %s: missing or wrong \"schema\" "
                 "(want cpr-stats-v1.2 or cpr-stats-v1.3)\n",
                 Path.c_str());
    return exit_codes::Failure;
  }
  const JSONValue *Counters = Doc.find("counters");
  if (!Counters || !Counters->isObject()) {
    std::fprintf(stderr, "cpr-bench-serve: %s: missing \"counters\"\n",
                 Path.c_str());
    return exit_codes::Failure;
  }
  for (const auto &M : Counters->members())
    if (!M.second.isNumber()) {
      std::fprintf(stderr,
                   "cpr-bench-serve: %s: counter \"%s\" is not a "
                   "number\n",
                   Path.c_str(), M.first.c_str());
      return exit_codes::Failure;
    }
  size_t ThreadRows = 0;
  for (const auto &M : Counters->members())
    if (M.first.size() > 6 && M.first.compare(0, 7, "serve/t") == 0 &&
        M.first.find("/requests") != std::string::npos)
      ++ThreadRows;
  if (ThreadRows < 4) {
    std::fprintf(stderr,
                 "cpr-bench-serve: %s: want serve/t*/requests rows for "
                 ">=4 thread counts, found %zu\n",
                 Path.c_str(), ThreadRows);
    return exit_codes::Failure;
  }
  const JSONValue *Identity = Counters->find("serve/identity_failures");
  if (!Identity || !Identity->isNumber() || Identity->getNumber() != 0) {
    std::fprintf(stderr,
                 "cpr-bench-serve: %s: serve/identity_failures missing "
                 "or nonzero\n",
                 Path.c_str());
    return exit_codes::Failure;
  }
  std::printf("cpr-bench-serve: %s: valid cpr-stats document "
              "(%zu thread rows)\n",
              Path.c_str(), ThreadRows);
  return exit_codes::Success;
}

} // namespace

int main(int argc, char **argv) {
  Config C;
  OptionTable Options = buildOptions(C);
  const std::string Usage = "usage: cpr-bench-serve [options]";

  std::string ParseError;
  std::vector<std::string> Positional;
  if (!Options.parse(argc, argv, ParseError, &Positional) ||
      !Positional.empty()) {
    if (!ParseError.empty())
      std::fprintf(stderr, "cpr-bench-serve: %s\n", ParseError.c_str());
    std::fprintf(stderr, "%s", Options.help(Usage).c_str());
    return exit_codes::UsageError;
  }
  if (C.Help) {
    std::printf("%s", Options.help(Usage).c_str());
    return exit_codes::Success;
  }
  if (!C.Validate.empty())
    return validateDocument(C.Validate);

  if (C.Chaos) {
    if (C.Quick && C.ChaosRequests > 150)
      C.ChaosRequests = 150;
    StatsRegistry ChaosStats;
    int RC = runChaos(C, ChaosStats);
    if (!C.Out.empty()) {
      std::string Error;
      if (!writeStatsJSONFile(ChaosStats, C.Out, &Error)) {
        std::fprintf(stderr, "cpr-bench-serve: %s\n", Error.c_str());
        return exit_codes::Failure;
      }
      std::fprintf(stderr, "cpr-bench-serve: wrote %s\n", C.Out.c_str());
    } else {
      std::printf("%s\n", ChaosStats.toJSONText().c_str());
    }
    return RC;
  }

  std::vector<std::string> IRs = buildPrograms(C);
  if (C.Quick && C.Repeats > 2)
    C.Repeats = 2;
  std::vector<WorkItem> Items = buildSchedule(IRs, C.Repeats);
  std::fprintf(stderr,
               "cpr-bench-serve: %zu unique program(s), %u repeat(s), "
               "%zu request(s) per thread count\n",
               IRs.size(), C.Repeats, Items.size());

  const unsigned ThreadCounts[] = {1, 2, 4, 8};
  StatsRegistry Stats;
  size_t TotalIdentityFailures = 0;
  for (unsigned T : ThreadCounts) {
    RunResultRow Row = runLoad(C, Items, IRs.size(), T);
    TotalIdentityFailures += Row.IdentityFailures;
    std::fprintf(stderr,
                 "  t=%u: %zu req in %.0f ms, %.0f regions/s, "
                 "p50=%.2f p95=%.2f p99=%.2f ms, hit rate %.1f%%, "
                 "%llu eviction(s)%s\n",
                 T, Row.Requests, Row.WallMs, Row.regionsPerSec(),
                 Row.P50Ms, Row.P95Ms, Row.P99Ms, 100.0 * Row.hitRate(),
                 static_cast<unsigned long long>(Row.CacheEvictions),
                 Row.IdentityFailures ? "  IDENTITY FAILURES" : "");

    const std::string P = "serve/t" + std::to_string(T) + "/";
    Stats.addCount(P + "requests", static_cast<double>(Row.Requests));
    Stats.addCount(P + "ok", static_cast<double>(Row.OkResponses));
    Stats.addCount(P + "regions", static_cast<double>(Row.Regions));
    Stats.addCount(P + "cache_hits", static_cast<double>(Row.CacheHits));
    Stats.addCount(P + "cache_misses",
                   static_cast<double>(Row.CacheMisses));
    Stats.addCount(P + "cache_evictions",
                   static_cast<double>(Row.CacheEvictions));
    Stats.addCount(P + "shed", static_cast<double>(Row.BusyResponses));
    Stats.addCount(P + "busy_rate_pct", 100.0 * Row.busyRate());
    Stats.addCount(P + "hit_rate_pct", 100.0 * Row.hitRate());
    Stats.recordTimeMs(P + "wall_ms", Row.WallMs);
    Stats.recordTimeMs(P + "p50_ms", Row.P50Ms);
    Stats.recordTimeMs(P + "p95_ms", Row.P95Ms);
    Stats.recordTimeMs(P + "p99_ms", Row.P99Ms);
    Stats.recordTimeMs(P + "regions_per_sec", Row.regionsPerSec());
  }
  Stats.addCount("serve/identity_failures",
                 static_cast<double>(TotalIdentityFailures));
  Stats.addCount("serve/unique_programs", static_cast<double>(IRs.size()));
  Stats.addCount("serve/repeats", C.Repeats);

  if (!C.Out.empty()) {
    std::string Error;
    if (!writeStatsJSONFile(Stats, C.Out, &Error)) {
      std::fprintf(stderr, "cpr-bench-serve: %s\n", Error.c_str());
      return exit_codes::Failure;
    }
    std::fprintf(stderr, "cpr-bench-serve: wrote %s\n", C.Out.c_str());
  } else {
    std::printf("%s\n", Stats.toJSONText().c_str());
  }

  if (TotalIdentityFailures > 0) {
    std::fprintf(stderr,
                 "cpr-bench-serve: FAILED: %zu response(s) were not "
                 "byte-identical across repeats\n",
                 TotalIdentityFailures);
    return exit_codes::Failure;
  }
  return exit_codes::Success;
}

//===- bench/bench_table3_opcounts.cpp - Paper Table 3 --------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates Table 3: the effect of ICBM on static and dynamic operation
// counts, for all operations and for branch operations only, as ratios of
// height-reduced to baseline code. Static counts come from the IR; dynamic
// counts come from the functional interpreter (operations dispatched,
// including nullified predicated operations -- the EPIC notion). The
// paper reports the medium processor; the counts are machine-independent
// in this framework, as they were in the paper (scheduling does not change
// what executes).
//
//===----------------------------------------------------------------------===//

#include "DriverCommon.h"
#include "pipeline/CompilerPipeline.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "pipeline/Reports.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

void printTable3(const DriverConfig &C, StatsRegistry *Stats) {
  PipelineOptions Opts;
  Opts.Threads = C.Threads;
  Opts.Stats = Stats;
  std::vector<SuiteRow> Rows = runSuite(Opts);
  std::printf("Table 3: effect of ICBM on static and dynamic operation "
              "counts (ratios, height-reduced / baseline)\n");
  std::printf("(paper reference Gmean-all: S tot 1.08, S br 1.03, "
              "D tot 0.93, D br 0.42)\n\n%s\n",
              renderTable3(Rows).c_str());
}

/// Dynamic-count measurement cost (two interpreter runs per benchmark).
void BM_DynamicCountsWc(benchmark::State &State) {
  for (auto _ : State) {
    KernelProgram P = buildWcKernel(4, 8192, 66);
    PipelineResult R = runPipeline(P);
    benchmark::DoNotOptimize(R.DynTreated.OpsDispatched);
  }
}
BENCHMARK(BM_DynamicCountsWc)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  DriverConfig C = parseDriverOptions(argc, argv, "bench_table3_opcounts");
  StatsRegistry Stats;
  printTable3(C, C.StatsJSON.empty() ? nullptr : &Stats);
  maybeWriteStats(C, Stats);
  maybeRunMicroBenchmarks(C, argv[0]);
  return 0;
}

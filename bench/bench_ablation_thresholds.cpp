//===- bench/bench_ablation_thresholds.cpp - Heuristic ablation -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Ablation A2 (DESIGN.md): Section 7 of the paper attributes some of its
// sequential/narrow losses to "a single set of CPR block selection
// heuristics for all the processors", tuned for the medium machine. This
// bench sweeps the exit-weight and predict-taken thresholds and reports
// the geometric-mean speedup over a representative subset of the suite on
// each machine, exposing the tuning surface the paper describes as
// immature.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

const char *SubsetNames[] = {"strcpy", "wc",        "grep",
                             "126.gcc", "022.li",   "023.eqntott",
                             "099.go",  "134.perl"};

std::vector<double> gmeansAcrossSubset(const CPROptions &CPR) {
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  std::vector<std::vector<double>> Cols(5);
  for (const char *Name : SubsetNames) {
    KernelProgram P = findBenchmark(Suite, Name).Build();
    PipelineOptions Opts;
    Opts.CPR = CPR;
    PipelineResult R = runPipeline(P, Opts);
    for (size_t M = 0; M < 5; ++M)
      Cols[M].push_back(R.Machines[M].speedup());
  }
  std::vector<double> G;
  for (size_t M = 0; M < 5; ++M)
    G.push_back(geometricMean(Cols[M]));
  return G;
}

void printAblation() {
  std::printf("Exit-weight threshold sweep (predict-taken fixed at "
              "0.60):\n");
  {
    TextTable T;
    T.setHeader({"exit-weight", "Seq", "Nar", "Med", "Wid", "Inf"});
    for (double W : {0.05, 0.10, 0.20, 0.35, 0.60, 1.00}) {
      CPROptions CPR;
      CPR.ExitWeightThreshold = W;
      std::vector<double> G = gmeansAcrossSubset(CPR);
      std::vector<std::string> Row{TextTable::fmt(W)};
      for (double V : G)
        Row.push_back(TextTable::fmt(V));
      T.addRow(Row);
    }
    std::printf("%s\n", T.render().c_str());
  }

  std::printf("Predict-taken threshold sweep (exit-weight fixed at "
              "0.20):\n");
  {
    TextTable T;
    T.setHeader({"predict-taken", "Seq", "Nar", "Med", "Wid", "Inf"});
    for (double W : {0.40, 0.60, 0.80, 0.95}) {
      CPROptions CPR;
      CPR.PredictTakenThreshold = W;
      std::vector<double> G = gmeansAcrossSubset(CPR);
      std::vector<std::string> Row{TextTable::fmt(W)};
      for (double V : G)
        Row.push_back(TextTable::fmt(V));
      T.addRow(Row);
    }
    std::printf("%s\n", T.render().c_str());
  }
  std::printf("(gmean over %zu benchmarks; one heuristic setting serves "
              "all machines, as in the paper)\n\n",
              std::size(SubsetNames));
}

void BM_ThresholdPoint(benchmark::State &State) {
  for (auto _ : State) {
    CPROptions CPR;
    CPR.ExitWeightThreshold = 0.20;
    std::vector<double> G = gmeansAcrossSubset(CPR);
    benchmark::DoNotOptimize(G.data());
  }
}
BENCHMARK(BM_ThresholdPoint)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

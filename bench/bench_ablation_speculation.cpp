//===- bench/bench_ablation_speculation.cpp - Speculation ablation --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Ablation A3 (DESIGN.md): Section 5.1 of the paper states that without
// predicate speculation, "separability systematically fails at almost
// every basic block" of FRP-converted code. This bench runs the suite
// subset with the speculation phase disabled and reports how many CPR
// blocks still form, how many branches they cover, and the resulting
// speedups -- quantifying the phase's enabling role.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

void printAblation() {
  const char *Names[] = {"strcpy", "wc",    "grep",     "lex",
                         "yacc",   "cccp",  "126.gcc",  "022.li",
                         "072.sc", "134.perl"};
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();

  TextTable T;
  T.setHeader({"Benchmark", "branches covered (spec on)",
               "branches covered (spec off)", "Med speedup (on)",
               "Med speedup (off)"});
  std::vector<double> OnMed, OffMed;
  for (const char *Name : Names) {
    PipelineOptions On;
    PipelineOptions Off;
    Off.CPR.EnablePredicateSpeculation = false;

    KernelProgram P1 = findBenchmark(Suite, Name).Build();
    PipelineResult ROn = runPipeline(P1, On);
    KernelProgram P2 = findBenchmark(Suite, Name).Build();
    PipelineResult ROff = runPipeline(P2, Off);

    T.addRow({Name, std::to_string(ROn.CPR.BranchesCovered),
              std::to_string(ROff.CPR.BranchesCovered),
              TextTable::fmt(ROn.speedupOn("medium")),
              TextTable::fmt(ROff.speedupOn("medium"))});
    OnMed.push_back(ROn.speedupOn("medium"));
    OffMed.push_back(ROff.speedupOn("medium"));
  }
  T.addSeparator();
  T.addRow({"Gmean", "", "", TextTable::fmt(geometricMean(OnMed)),
            TextTable::fmt(geometricMean(OffMed))});
  std::printf("Predicate speculation ablation (paper Section 5.1: without "
              "it, separability fails at almost every block of "
              "FRP-converted code)\n\n%s\n",
              T.render().c_str());
}

void BM_SpeculationPhase(benchmark::State &State) {
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  for (auto _ : State) {
    KernelProgram P = findBenchmark(Suite, "126.gcc").Build();
    PipelineResult R = runPipeline(P);
    benchmark::DoNotOptimize(R.CPR.Promoted);
  }
}
BENCHMARK(BM_SpeculationPhase)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench/bench_sim_predictors.cpp - Dynamic predictor comparison ------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The paper's Table 2 assumes perfect static knowledge of branch behavior:
// cycles are charged from profile frequencies alone, so collapsing a chain
// of predictable on-trace exits into one bypass branch is pure profit. The
// trace-driven simulator replays the real branch stream through hardware
// predictor models and charges a restart penalty per misprediction, which
// prices in the cost Section 8 warns about: the merged bypass branch is
// harder to predict than the branches it replaced.
//
// This benchmark prints, per suite kernel, total simulated cycles and MPKI
// for baseline vs height-reduced code under each predictor, and the
// resulting speedup -- the dynamic analogue of a Table 2 column (wide
// machine). Also registers google-benchmark timers for simulation cost.
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"
#include "pipeline/CompilerPipeline.h"
#include "support/TableFormat.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

void printPredictorTable() {
  PipelineOptions Opts;
  Opts.Simulate = true;
  Opts.Machines = {MachineDesc::wide()};

  std::printf("Dynamic simulation, wide machine: cycles, speedup, and "
              "post-CPR MPKI per predictor\n");
  std::printf("(static = profile-direction prediction; penalty = machine "
              "default restart cost)\n\n");

  TextTable T;
  std::vector<std::string> Header{"Benchmark"};
  for (PredictorKind K : Opts.Predictors) {
    Header.push_back(std::string(predictorKindName(K)) + " spd");
    Header.push_back(std::string(predictorKindName(K)) + " mpki");
  }
  T.setHeader(Header);

  for (const BenchmarkSpec &Spec : paperBenchmarkSuite()) {
    KernelProgram P = Spec.Build();
    PipelineResult R = runPipeline(P, Opts);
    std::vector<std::string> Cells{Spec.Name};
    for (PredictorKind K : Opts.Predictors) {
      const SimComparison *S = R.simOn("wide", predictorKindName(K));
      if (!S) {
        Cells.push_back("-");
        Cells.push_back("-");
        continue;
      }
      Cells.push_back(TextTable::fmt(S->speedup()));
      Cells.push_back(TextTable::fmt(S->Baseline.mpki()) + ">" +
                      TextTable::fmt(S->Treated.mpki()));
    }
    T.addRow(Cells);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Reading: 'spd' is CPR speedup under that predictor (compare "
              "against the static column\nto see how much of the paper's "
              "speedup survives real prediction); 'mpki' is\nbaseline>treated "
              "mispredicts per 1000 dispatched operations.\n");
}

/// Simulation cost: one trace replay through gshare on the wide machine.
void BM_SimulateGshare(benchmark::State &State) {
  KernelProgram P = buildStrcpyKernel(8, 4096, 1);
  Memory Mem = P.InitMem;
  BranchTrace Trace;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs, nullptr, &Trace);
  for (auto _ : State) {
    std::unique_ptr<BranchPredictor> Pred =
        makePredictor(PredictorKind::Gshare);
    SimEstimate E =
        simulateTrace(*P.Func, MachineDesc::wide(), Trace, *Pred);
    benchmark::DoNotOptimize(E.TotalCycles);
  }
}
BENCHMARK(BM_SimulateGshare)->Unit(benchmark::kMillisecond);

/// Predictor-model throughput on a synthetic alternating stream.
void BM_PredictorObserve(benchmark::State &State) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(static_cast<PredictorKind>(State.range(0)));
  uint64_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Pred->observe(OpId(1 + I % 7), I % 3 == 0));
    ++I;
  }
}
BENCHMARK(BM_PredictorObserve)->DenseRange(0, 3);

} // namespace

int main(int argc, char **argv) {
  printPredictorTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench/bench_sim_predictors.cpp - Dynamic predictor comparison ------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The paper's Table 2 assumes perfect static knowledge of branch behavior:
// cycles are charged from profile frequencies alone, so collapsing a chain
// of predictable on-trace exits into one bypass branch is pure profit. The
// trace-driven simulator replays the real branch stream through hardware
// predictor models and charges a restart penalty per misprediction, which
// prices in the cost Section 8 warns about: the merged bypass branch is
// harder to predict than the branches it replaced.
//
// This benchmark prints, per suite kernel, total simulated cycles and MPKI
// for baseline vs height-reduced code under each predictor, and the
// resulting speedup -- the dynamic analogue of a Table 2 column (wide
// machine).
//
// Each kernel is one staged PipelineRun session (profile and traces
// computed once, shared by every predictor simulation), fanned out over
// --threads=<n> pool workers; the table is identical at every thread
// count. --stats-json dumps per-stage counters; --micro runs the
// google-benchmark simulation-cost timers.
//
//===----------------------------------------------------------------------===//

#include "DriverCommon.h"
#include "interp/Profiler.h"
#include "pipeline/CompilerPipeline.h"
#include "pipeline/PipelineRun.h"
#include "support/TableFormat.h"
#include "support/ThreadPool.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

void printPredictorTable(const DriverConfig &C, StatsRegistry *Stats) {
  PipelineOptions Opts;
  Opts.Simulate = true;
  Opts.Machines = {MachineDesc::wide()};

  std::printf("Dynamic simulation, wide machine: cycles, speedup, and "
              "post-CPR MPKI per predictor\n");
  std::printf("(static = profile-direction prediction; penalty = machine "
              "default restart cost)\n\n");

  TextTable T;
  std::vector<std::string> Header{"Benchmark"};
  for (PredictorKind K : Opts.Predictors) {
    Header.push_back(std::string(predictorKindName(K)) + " spd");
    Header.push_back(std::string(predictorKindName(K)) + " mpki");
  }
  T.setHeader(Header);

  // One session per kernel in a preallocated slot; per-row registries
  // merge in suite order so stats are identical at every thread count.
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  std::vector<PipelineResult> Results(Suite.size());
  std::vector<StatsRegistry> RowStats(Stats ? Suite.size() : 0);
  auto RunOne = [&](size_t I) {
    KernelProgram P = Suite[I].Build();
    PipelineRun Run(std::move(P), Opts, Stats ? &RowStats[I] : nullptr,
                    Suite[I].Name + "/");
    Results[I] = Run.finish();
  };
  if (C.Threads != 1) {
    ThreadPool Pool(C.Threads);
    parallelFor(&Pool, Suite.size(), RunOne);
  } else {
    for (size_t I = 0; I < Suite.size(); ++I)
      RunOne(I);
  }
  if (Stats)
    for (const StatsRegistry &R : RowStats)
      Stats->mergeFrom(R);

  for (size_t I = 0; I < Suite.size(); ++I) {
    const PipelineResult &R = Results[I];
    std::vector<std::string> Cells{Suite[I].Name};
    for (PredictorKind K : Opts.Predictors) {
      const SimComparison *S = R.simOn("wide", predictorKindName(K));
      if (!S) {
        Cells.push_back("-");
        Cells.push_back("-");
        continue;
      }
      Cells.push_back(TextTable::fmt(S->speedup()));
      Cells.push_back(TextTable::fmt(S->Baseline.mpki()) + ">" +
                      TextTable::fmt(S->Treated.mpki()));
    }
    T.addRow(Cells);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Reading: 'spd' is CPR speedup under that predictor (compare "
              "against the static column\nto see how much of the paper's "
              "speedup survives real prediction); 'mpki' is\nbaseline>treated "
              "mispredicts per 1000 dispatched operations.\n");
}

/// Simulation cost: one trace replay through gshare on the wide machine.
void BM_SimulateGshare(benchmark::State &State) {
  KernelProgram P = buildStrcpyKernel(8, 4096, 1);
  Memory Mem = P.InitMem;
  BranchTrace Trace;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs, nullptr, &Trace);
  for (auto _ : State) {
    std::unique_ptr<BranchPredictor> Pred =
        makePredictor(PredictorKind::Gshare);
    SimEstimate E =
        simulateTrace(*P.Func, MachineDesc::wide(), Trace, *Pred);
    benchmark::DoNotOptimize(E.TotalCycles);
  }
}
BENCHMARK(BM_SimulateGshare)->Unit(benchmark::kMillisecond);

/// Predictor-model throughput on a synthetic alternating stream.
void BM_PredictorObserve(benchmark::State &State) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(static_cast<PredictorKind>(State.range(0)));
  uint64_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Pred->observe(OpId(1 + I % 7), I % 3 == 0));
    ++I;
  }
}
BENCHMARK(BM_PredictorObserve)->DenseRange(0, 3);

} // namespace

int main(int argc, char **argv) {
  DriverConfig C = parseDriverOptions(argc, argv, "bench_sim_predictors");
  StatsRegistry Stats;
  printPredictorTable(C, C.StatsJSON.empty() ? nullptr : &Stats);
  maybeWriteStats(C, Stats);
  maybeRunMicroBenchmarks(C, argv[0]);
  return 0;
}

//===- bench/bench_sim_predictors.cpp - Table 2-dyn frontend sweep --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The paper's Table 2 assumes perfect static knowledge of branch behavior:
// cycles are charged from profile frequencies alone, so collapsing a chain
// of predictable on-trace exits into one bypass branch is pure profit. The
// trace-driven simulator replays the real branch stream through hardware
// predictor models and charges a restart penalty per misprediction, which
// prices in the cost Section 8 warns about: the merged bypass branch is
// harder to predict than the branches it replaced.
//
// This driver runs the full Table 2-dyn frontend sweep (docs/SIMULATOR.md):
// workloads x machines x predictors (static, bimodal, gshare, local,
// tage-sc-l) x frontend configurations (flat penalty model, decoupled
// fetch + BTB), printing the per-(predictor, frontend) speedup tables and
// the MPKI / BTB-MPKI / fetch-stall detail. Each workload is one staged
// PipelineRun session (profile and traces computed once, shared by every
// cell), fanned out over --threads=<n>; every table and counter is
// byte-identical at any thread count.
//
// Sweep results are written as a deterministic cpr-stats-v1.3 document
// (counters only, no wall times) -- the committed bench/BENCH_sim.json
// baseline records one cell family per sweep point:
//
//   cpr-bench: bench_sim_predictors --out=bench/BENCH_sim.json
//              bench_sim_predictors --quick --out=/tmp/b.json   (CI smoke)
//              bench_sim_predictors --validate=bench/BENCH_sim.json
//
// --micro runs the google-benchmark simulation-cost timers. Exit codes:
// 0 success, 1 failure (bad validate target, I/O), 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "DriverCommon.h"
#include "interp/Profiler.h"
#include "pipeline/PipelineRun.h"
#include "pipeline/Reports.h"
#include "support/JSON.h"
#include "support/ThreadPool.h"
#include "workloads/BenchmarkSuite.h"
#include "workloads/Kernels.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace cpr;

namespace {

struct SimBenchConfig {
  std::string Out;
  std::string Validate;
  unsigned MaxWorkloads = 0; ///< 0 = the whole paper suite
  bool Quick = false;
  DriverConfig Driver; ///< --threads / --stats-json / --micro
};

OptionTable buildOptions(SimBenchConfig &C) {
  OptionTable T;
  T.addString("--out", "<file>",
              "write the deterministic cpr-stats-v1.3 sweep document "
              "here (the committed baseline is bench/BENCH_sim.json)",
              C.Out);
  T.addString("--validate", "<file>",
              "validate an existing sweep document against the "
              "cpr-stats-v1.3 schema and exit (no sweep run)",
              C.Validate);
  T.addUnsigned("--max-workloads", "<n>",
                "cap the sweep at the first n suite workloads (0 = all)",
                C.MaxWorkloads);
  T.addFlag("--quick", "small sweep for CI smoke runs (4 workloads)",
            C.Quick);
  T.addUnsigned("--threads", "<n>",
                "worker threads for the sweep (0 = all cores)",
                C.Driver.Threads);
  T.addString("--stats-json", "<file>",
              "write per-stage counters and wall times as JSON",
              C.Driver.StatsJSON);
  T.addFlag("--micro", "also run the google-benchmark micro timers",
            C.Driver.Micro);
  T.addFlag("--help", "print this help", C.Driver.Help);
  T.addFlag("-h", "print this help", C.Driver.Help);
  return T;
}

/// One cell's counter family in the sweep document. Only deterministic
/// facts are recorded (cycle totals, mispredict/BTB/stall counts, and the
/// ratios derived from them) so the document is a pure function of the
/// sweep shape.
void recordCell(StatsRegistry &Doc, const FrontendCell &Cell) {
  const std::string P = "sim/" + Cell.Workload + "/" + Cell.Machine + "/" +
                        Cell.Predictor + "/" + Cell.Frontend + "/";
  const SimComparison &SC = Cell.Sim;
  Doc.addCount(P + "speedup", SC.speedup());
  Doc.addCount(P + "cycles_baseline", SC.Baseline.TotalCycles);
  Doc.addCount(P + "cycles_treated", SC.Treated.TotalCycles);
  Doc.addCount(P + "mpki_baseline", SC.Baseline.mpki());
  Doc.addCount(P + "mpki_treated", SC.Treated.mpki());
  Doc.addCount(P + "btb_mpki_treated", SC.Treated.btbMpki());
  Doc.addCount(P + "fetch_stalls_treated",
               static_cast<double>(SC.Treated.FetchStallCycles));
}

/// --validate: the committed baseline (and CI artifacts) must be a
/// cpr-stats-v1.3 document whose sim/ cell families are complete and
/// numeric, with the advertised sweep shape.
int validateDocument(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_sim_predictors: cannot open '%s'\n",
                 Path.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  JSONParseResult PR = parseJSON(Buf.str());
  if (!PR) {
    std::fprintf(stderr, "bench_sim_predictors: %s: %s\n", Path.c_str(),
                 PR.Error.c_str());
    return 1;
  }
  const JSONValue &Doc = PR.Value;
  const JSONValue *Schema = Doc.find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->getString() != "cpr-stats-v1.3") {
    std::fprintf(stderr,
                 "bench_sim_predictors: %s: missing or wrong \"schema\" "
                 "(want cpr-stats-v1.3)\n",
                 Path.c_str());
    return 1;
  }
  const JSONValue *Counters = Doc.find("counters");
  if (!Counters || !Counters->isObject()) {
    std::fprintf(stderr, "bench_sim_predictors: %s: missing \"counters\"\n",
                 Path.c_str());
    return 1;
  }
  for (const auto &M : Counters->members())
    if (!M.second.isNumber()) {
      std::fprintf(stderr,
                   "bench_sim_predictors: %s: counter \"%s\" is not a "
                   "number\n",
                   Path.c_str(), M.first.c_str());
      return 1;
    }
  // Every cell family must be complete: a /speedup row implies its six
  // sibling rows, and the family count must match the advertised shape.
  static const char *const Leaves[] = {
      "cycles_baseline",   "cycles_treated", "mpki_baseline",
      "mpki_treated",      "btb_mpki_treated",
      "fetch_stalls_treated"};
  size_t CellRows = 0;
  for (const auto &M : Counters->members()) {
    const std::string &Key = M.first;
    const std::string Suffix = "/speedup";
    if (Key.compare(0, 4, "sim/") != 0 || Key.size() <= Suffix.size() ||
        Key.compare(Key.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    ++CellRows;
    const std::string Prefix = Key.substr(0, Key.size() - Suffix.size());
    for (const char *Leaf : Leaves)
      if (!Counters->find(Prefix + "/" + Leaf)) {
        std::fprintf(stderr,
                     "bench_sim_predictors: %s: cell \"%s\" misses "
                     "\"%s\"\n",
                     Path.c_str(), Prefix.c_str(), Leaf);
        return 1;
      }
  }
  const JSONValue *Cells = Counters->find("sim/cells");
  if (!Cells || !Cells->isNumber() ||
      Cells->getNumber() != static_cast<double>(CellRows) || CellRows == 0) {
    std::fprintf(stderr,
                 "bench_sim_predictors: %s: sim/cells (%s) does not match "
                 "the %zu cell families found\n",
                 Path.c_str(), Cells ? "present" : "missing", CellRows);
    return 1;
  }
  for (const char *Shape : {"sim/workloads", "sim/machines",
                            "sim/predictors", "sim/frontends"}) {
    const JSONValue *V = Counters->find(Shape);
    if (!V || !V->isNumber() || V->getNumber() <= 0) {
      std::fprintf(stderr,
                   "bench_sim_predictors: %s: missing shape counter "
                   "\"%s\"\n",
                   Path.c_str(), Shape);
      return 1;
    }
  }
  std::printf("bench_sim_predictors: %s: valid cpr-stats-v1.3 sweep "
              "document (%zu cells)\n",
              Path.c_str(), CellRows);
  return 0;
}

int runSweep(const SimBenchConfig &C) {
  StatsRegistry StageStats;
  FrontendSweepOptions SO;
  SO.Threads = C.Driver.Threads;
  SO.MaxWorkloads = C.Quick ? 4 : C.MaxWorkloads;
  SO.Stats = C.Driver.StatsJSON.empty() ? nullptr : &StageStats;

  FrontendSweepResult R = runFrontendSweep(SO);
  std::printf("%s", renderFrontendSweep(R).c_str());
  std::printf("%s", renderFrontendDetail(R).c_str());

  // The deterministic sweep document: counters only, so equal sweeps
  // produce byte-equal files (the determinism tests rely on this).
  StatsRegistry Doc;
  for (const FrontendCell &Cell : R.Cells)
    recordCell(Doc, Cell);
  std::vector<std::string> Machines, Predictors, Frontends;
  for (const FrontendCell &Cell : R.Cells) {
    auto Note = [](std::vector<std::string> &Seen, const std::string &V) {
      for (const std::string &S : Seen)
        if (S == V)
          return;
      Seen.push_back(V);
    };
    Note(Machines, Cell.Machine);
    Note(Predictors, Cell.Predictor);
    Note(Frontends, Cell.Frontend);
  }
  Doc.addCount("sim/cells", static_cast<double>(R.Cells.size()));
  Doc.addCount("sim/workloads", static_cast<double>(R.Workloads.size()));
  Doc.addCount("sim/machines", static_cast<double>(Machines.size()));
  Doc.addCount("sim/predictors", static_cast<double>(Predictors.size()));
  Doc.addCount("sim/frontends", static_cast<double>(Frontends.size()));

  if (!C.Out.empty()) {
    std::ofstream Out(C.Out);
    if (Out)
      Out << Doc.toJSONText(/*IncludeTimes=*/false) << "\n";
    if (!Out) {
      std::fprintf(stderr, "bench_sim_predictors: cannot write '%s'\n",
                   C.Out.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench_sim_predictors: wrote %s (%zu cells)\n",
                 C.Out.c_str(), R.Cells.size());
  }
  maybeWriteStats(C.Driver, StageStats);
  return 0;
}

/// Simulation cost: one trace replay through gshare on the wide machine.
void BM_SimulateGshare(benchmark::State &State) {
  KernelProgram P = buildStrcpyKernel(8, 4096, 1);
  Memory Mem = P.InitMem;
  BranchTrace Trace;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs, nullptr, &Trace);
  for (auto _ : State) {
    std::unique_ptr<BranchPredictor> Pred =
        makePredictor(PredictorKind::Gshare);
    SimEstimate E =
        simulateTrace(*P.Func, MachineDesc::wide(), Trace, *Pred);
    benchmark::DoNotOptimize(E.TotalCycles);
  }
}
BENCHMARK(BM_SimulateGshare)->Unit(benchmark::kMillisecond);

/// Predictor-model throughput on a synthetic alternating stream; the
/// dense range covers every registered kind, tage-sc-l included.
void BM_PredictorObserve(benchmark::State &State) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(static_cast<PredictorKind>(State.range(0)));
  uint64_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Pred->observe(OpId(1 + I % 7), I % 3 == 0));
    ++I;
  }
}
BENCHMARK(BM_PredictorObserve)->DenseRange(0, 4);

} // namespace

int main(int argc, char **argv) {
  SimBenchConfig C;
  OptionTable Options = buildOptions(C);
  const std::string Usage = "usage: bench_sim_predictors [options]";

  std::string Error;
  if (!Options.parse(argc, argv, Error, /*Positional=*/nullptr,
                     &C.Driver.Forwarded)) {
    std::fprintf(stderr, "bench_sim_predictors: %s\n%s", Error.c_str(),
                 Options.help(Usage).c_str());
    return 2;
  }
  for (const std::string &Arg : C.Driver.Forwarded) {
    if (Arg.rfind("--benchmark_", 0) != 0) {
      std::fprintf(stderr, "bench_sim_predictors: unknown option '%s'\n%s",
                   Arg.c_str(), Options.help(Usage).c_str());
      return 2;
    }
    C.Driver.Micro = true;
  }
  if (C.Driver.Help) {
    std::printf("%s", Options.help(Usage).c_str());
    return 0;
  }
  if (!C.Validate.empty())
    return validateDocument(C.Validate);

  int Ret = runSweep(C);
  if (Ret != 0)
    return Ret;
  maybeRunMicroBenchmarks(C.Driver, argv[0]);
  return 0;
}

//===- bench/bench_fig6_strcpy.cpp - Paper Figures 6 and 7 ----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates the paper's Section 6 worked example (Figures 6 and 7): the
// unrolled strcpy loop through every ICBM stage. Prints the listing after
// each phase (unrolled baseline, FRP conversion, predicate speculation,
// restructure + off-trace motion + DCE) and reports the quantities the
// paper calls out: on-trace and compensation operation counts and the
// dependence height through the loop before and after (8 -> 7 at unroll 4
// with the paper's latencies).
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"
#include "cpr/PredicateSpeculation.h"
#include "interp/Profiler.h"
#include "ir/IRPrinter.h"
#include "pipeline/CompilerPipeline.h"
#include "regions/FRPConversion.h"
#include "sched/ListScheduler.h"
#include "support/TableFormat.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

int loopHeight(const Function &F, const std::string &Name) {
  // The paper's "dependence height through the loop": the critical path
  // of the region's dependence graph under the Section 7 latencies.
  const Block &B = *const_cast<Function &>(F).blockByName(Name);
  RegionPQS PQS(F, B);
  Liveness LV(F);
  MachineDesc MD = MachineDesc::infinite();
  DepGraph DG(F, B, MD, PQS, LV);
  return DG.criticalPathLength();
}

void printWalkthrough() {
  PrintOptions PO;
  PO.ShowOpIds = true;

  KernelProgram P = buildStrcpyKernel(/*Unroll=*/4, /*StringLen=*/4096);
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

  std::printf("=== Figure 6(b): unrolled strcpy superblock ===\n\n%s\n",
              printBlock(*Base, *Base->blockByName("Loop"), PO).c_str());

  // Stage: FRP conversion.
  std::unique_ptr<Function> Frp = Base->clone();
  convertToFRP(*Frp, *Frp->blockByName("Loop"));
  std::printf("=== Figure 6(c): after FRP conversion ===\n\n%s\n",
              printBlock(*Frp, *Frp->blockByName("Loop"), PO).c_str());

  // Stage: predicate speculation.
  std::unique_ptr<Function> Spec = Frp->clone();
  SpeculationStats SS =
      speculatePredicates(*Spec, *Spec->blockByName("Loop"));
  std::printf("=== Figure 7(a): after predicate speculation (%u promoted, "
              "%u demoted) ===\n\n%s\n",
              SS.Promoted, SS.Demoted,
              printBlock(*Spec, *Spec->blockByName("Loop"), PO).c_str());

  // Full ICBM (match + restructure + motion + DCE).
  CPRResult CR;
  std::unique_ptr<Function> Final =
      applyControlCPR(*Base, Prof, CPROptions(), &CR);
  std::printf("=== Figure 7(c): after restructure, off-trace motion, and "
              "dead code elimination ===\n\n");
  for (size_t I = 0; I < Final->numBlocks(); ++I)
    std::printf("%s\n", printBlock(*Final, Final->block(I), PO).c_str());

  // The Section 6 summary quantities.
  size_t OrigOps = Base->blockByName("Loop")->size();
  size_t CompOps = 0;
  for (size_t I = 0; I < Final->numBlocks(); ++I)
    if (Final->block(I).isCompensation())
      CompOps += Final->block(I).size();
  // Taken variation: the tail of the loop block holds compensation code
  // too; count on-trace as ops up to and including the bypass.
  const Block &Loop = *Final->blockByName("Loop");
  size_t Bypass = 0;
  for (size_t I = 0; I < Loop.size(); ++I)
    if (Loop.ops()[I].isBranch())
      Bypass = I; // the backedge/bypass is the last on-trace branch
  // The first branch in the transformed loop is the bypass (taken
  // variation); ops after it are the compensation tail.
  for (size_t I = 0; I < Loop.size(); ++I)
    if (Loop.ops()[I].isBranch()) {
      Bypass = I;
      break;
    }
  size_t OnTraceProper = Bypass + 1;
  size_t Tail = Loop.size() - OnTraceProper;

  TextTable T;
  T.setHeader({"quantity", "paper (unroll 4)", "this reproduction"});
  T.addRow({"loop ops before", "30", std::to_string(OrigOps)});
  T.addRow({"on-trace ops after", "28",
            std::to_string(OnTraceProper)});
  T.addRow({"compensation ops", "11", std::to_string(CompOps + Tail)});
  T.addRow({"dependence height before", "8",
            std::to_string(loopHeight(*Base, "Loop"))});
  T.addRow({"dependence height after", "7",
            std::to_string(loopHeight(*Final, "Loop"))});
  std::printf("Section 6 summary:\n\n%s\n", T.render().c_str());
  std::printf("(operation counts differ slightly from the paper because "
              "our dead code elimination also strips the unused off-trace "
              "FRP targets the paper's listing keeps; the height reduction "
              "matches)\n\n");
}

void BM_StrcpyFullPipeline(benchmark::State &State) {
  for (auto _ : State) {
    KernelProgram P = buildStrcpyKernel(4, 4096);
    PipelineResult R = runPipeline(P);
    benchmark::DoNotOptimize(R.Machines.data());
  }
}
BENCHMARK(BM_StrcpyFullPipeline)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printWalkthrough();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

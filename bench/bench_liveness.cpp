//===- bench/bench_liveness.cpp - Dense vs set-based liveness -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Before/after microbenchmark for the ROADMAP O3 liveness rewrite: the
// original per-register hash-set fixed point (reproduced here verbatim as
// the baseline) against the dense BitVector solver that now backs
// analysis/Liveness.cpp. Inputs are fuzz-generated regions of increasing
// block count, so the numbers reflect the CFG shapes the pipeline
// actually analyzes rather than a hand-picked best case. The two
// implementations are cross-checked for equal live-in/live-out sets on
// every input before timing starts.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Liveness.h"
#include "fuzz/Generator.h"
#include "ir/Function.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace cpr;

namespace {

//===----------------------------------------------------------------------===//
// Baseline: the pre-rewrite hash-set implementation
//===----------------------------------------------------------------------===//

bool defAlwaysWritesLegacy(const Operation &Op, const DefSlot &D) {
  if (Op.isCmpp())
    return D.Act == CmppAction::UN || D.Act == CmppAction::UC;
  return Op.getGuard().isTruePred() || Op.isFrpGuard();
}

void transferSetLegacy(const Operation &Op, RegSet &Live) {
  for (const DefSlot &D : Op.defs())
    if (defAlwaysWritesLegacy(Op, D))
      Live.erase(D.R);
  if (!Op.getGuard().isTruePred())
    Live.insert(Op.getGuard());
  for (const Operand &S : Op.srcs())
    if (S.isReg())
      Live.insert(S.getReg());
}

/// The per-register std::unordered_set fixed point exactly as it shipped
/// before the dense rewrite.
struct LegacyLiveness {
  std::unordered_map<BlockId, RegSet> LiveInMap;
  std::unordered_map<BlockId, RegSet> LiveOutMap;
  RegSet ObservableSet;

  explicit LegacyLiveness(const Function &F) {
    for (Reg R : F.observableRegs())
      ObservableSet.insert(R);
    for (size_t I = 0, E = F.numBlocks(); I != E; ++I) {
      LiveInMap[F.block(I).getId()] = {};
      LiveOutMap[F.block(I).getId()] = {};
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t BI = F.numBlocks(); BI-- > 0;) {
        const Block &B = F.block(BI);
        RegSet Out;
        for (const BlockExit &E : blockExits(F, BI)) {
          if (E.Target == InvalidBlockId) {
            Out.insert(ObservableSet.begin(), ObservableSet.end());
            continue;
          }
          const RegSet &SuccIn = LiveInMap[E.Target];
          Out.insert(SuccIn.begin(), SuccIn.end());
        }
        RegSet Live = Out;
        std::vector<BlockExit> Exits = blockExits(F, BI);
        for (size_t OI = B.size(); OI-- > 0;) {
          const Operation &Op = B.ops()[OI];
          if (Op.isControl()) {
            for (const BlockExit &E : Exits) {
              if (E.OpIdx != static_cast<int>(OI))
                continue;
              if (E.Target == InvalidBlockId)
                Live.insert(ObservableSet.begin(), ObservableSet.end());
              else {
                const RegSet &SuccIn = LiveInMap[E.Target];
                Live.insert(SuccIn.begin(), SuccIn.end());
              }
            }
          }
          transferSetLegacy(Op, Live);
        }
        if (Live != LiveInMap[B.getId()]) {
          LiveInMap[B.getId()] = Live;
          Changed = true;
        }
        LiveOutMap[B.getId()] = std::move(Out);
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Inputs
//===----------------------------------------------------------------------===//

/// Deterministic fuzz-generated inputs, a handful per size class so a
/// single lucky CFG cannot skew the comparison.
std::vector<std::unique_ptr<Function>> makeInputs(unsigned MaxBlocks) {
  GeneratorConfig Cfg;
  Cfg.MaxBlocks = MaxBlocks;
  Cfg.MaxLoopDepth = 3;
  Cfg.MaxItemsPerRegion = 8;
  Cfg.SyntheticFrac = 0.0; // region grammar only: branchy CFGs
  std::vector<std::unique_ptr<Function>> Out;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed)
    Out.push_back(std::move(generateProgram(Seed * 7919, Cfg).Func));
  return Out;
}

bool sameSets(const Function &F, const LegacyLiveness &A, const Liveness &B) {
  for (size_t L = 0; L < F.numBlocks(); ++L) {
    BlockId Id = F.block(L).getId();
    if (A.LiveInMap.at(Id) != B.liveIn(Id) ||
        A.LiveOutMap.at(Id) != B.liveOut(Id))
      return false;
  }
  return true;
}

/// One-time agreement check over every benchmarked input.
bool crossCheck() {
  for (unsigned MaxBlocks : {40u, 120u, 240u})
    for (const auto &F : makeInputs(MaxBlocks)) {
      LegacyLiveness A(*F);
      Liveness B(*F);
      if (!sameSets(*F, A, B))
        return false;
    }
  return true;
}

void BM_LivenessLegacySets(benchmark::State &State) {
  auto Inputs = makeInputs(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    for (const auto &F : Inputs) {
      LegacyLiveness L(*F);
      benchmark::DoNotOptimize(L.LiveInMap.size());
    }
}
BENCHMARK(BM_LivenessLegacySets)
    ->Arg(40)
    ->Arg(120)
    ->Arg(240)
    ->Unit(benchmark::kMicrosecond);

void BM_LivenessDenseBitVector(benchmark::State &State) {
  auto Inputs = makeInputs(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    for (const auto &F : Inputs) {
      Liveness L(*F);
      benchmark::DoNotOptimize(&L);
    }
}
BENCHMARK(BM_LivenessDenseBitVector)
    ->Arg(40)
    ->Arg(120)
    ->Arg(240)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  if (!crossCheck()) {
    std::fprintf(stderr, "bench_liveness: legacy and dense liveness "
                         "disagree; benchmark numbers would be "
                         "meaningless\n");
    return 1;
  }
  std::printf("bench_liveness: legacy and dense agree on all inputs\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench/DriverCommon.h - Shared benchmark-driver options ---*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The option handling shared by the bench_* drivers, built on the same
/// declarative OptionTable as cprc: every driver accepts
///
///   --threads=<n>      worker threads for the suite run (0 = all cores)
///   --stats-json=<f>   write per-stage counters and wall times as JSON
///   --micro            also run the google-benchmark micro timers
///   --help / -h        generated from the table
///
/// Unknown `--benchmark_*` flags are collected and forwarded to
/// google-benchmark (and imply --micro); any other unknown option is an
/// error. By default the drivers print their paper table and exit, so a
/// suite run's wall clock measures the pipeline sessions themselves.
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_DRIVERCOMMON_H
#define BENCH_DRIVERCOMMON_H

#include "support/OptionParser.h"
#include "support/Statistics.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cpr {

/// Options common to every bench driver.
struct DriverConfig {
  unsigned Threads = 1;
  std::string StatsJSON;
  bool Micro = false;
  bool Help = false;
  /// Unrecognized options, forwarded to google-benchmark.
  std::vector<std::string> Forwarded;
};

/// Parses the shared driver options; exits on --help or a parse error.
inline DriverConfig parseDriverOptions(int argc, char **argv,
                                       const char *Tool) {
  DriverConfig C;
  OptionTable T;
  T.addUnsigned("--threads", "<n>",
                "worker threads for the suite run (0 = all cores)",
                C.Threads);
  T.addString("--stats-json", "<file>",
              "write per-stage counters and wall times as JSON",
              C.StatsJSON);
  T.addFlag("--micro", "also run the google-benchmark micro timers",
            C.Micro);
  T.addFlag("--help", "print this help", C.Help);
  T.addFlag("-h", "print this help", C.Help);

  std::string Error;
  if (!T.parse(argc, argv, Error, /*Positional=*/nullptr, &C.Forwarded)) {
    std::fprintf(stderr, "%s: %s\n%s", Tool, Error.c_str(),
                 T.help(std::string("usage: ") + Tool + " [options]")
                     .c_str());
    std::exit(2);
  }
  for (const std::string &Arg : C.Forwarded) {
    if (Arg.rfind("--benchmark_", 0) != 0) {
      std::fprintf(stderr, "%s: unknown option '%s'\n%s", Tool, Arg.c_str(),
                   T.help(std::string("usage: ") + Tool + " [options]")
                       .c_str());
      std::exit(2);
    }
    C.Micro = true; // an explicit benchmark flag implies the timers
  }
  if (C.Help) {
    std::printf("%s", T.help(std::string("usage: ") + Tool + " [options]")
                          .c_str());
    std::exit(0);
  }
  return C;
}

/// Writes the stats JSON when requested; exits on I/O failure.
inline void maybeWriteStats(const DriverConfig &C,
                            const StatsRegistry &Stats) {
  if (C.StatsJSON.empty())
    return;
  std::string Error;
  if (!writeStatsJSONFile(Stats, C.StatsJSON, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    std::exit(1);
  }
}

/// Runs the registered google-benchmark timers when --micro (or any
/// --benchmark_* flag) was given, forwarding those flags.
inline void maybeRunMicroBenchmarks(const DriverConfig &C, char *Argv0) {
  if (!C.Micro)
    return;
  std::vector<std::string> Args;
  Args.emplace_back(Argv0);
  Args.insert(Args.end(), C.Forwarded.begin(), C.Forwarded.end());
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  int Argc = static_cast<int>(Argv.size());
  benchmark::Initialize(&Argc, Argv.data());
  benchmark::RunSpecifiedBenchmarks();
}

} // namespace cpr

#endif // BENCH_DRIVERCOMMON_H

//===- bench/bench_table1_cmpp.cpp - Paper Table 1 ------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates Table 1: the behavior of the PlayDoh two-target compare
// destination actions (un/uc/on/oc/an/ac) as a function of the input
// (guard) predicate and the comparison result, printed from the library's
// executable semantics. Also microbenchmarks the interpreter's cmpp
// evaluation and the BDD algebra the Predicate Query System layers on it.
//
//===----------------------------------------------------------------------===//

#include "analysis/BDD.h"
#include "interp/Interpreter.h"
#include "ir/CmppAction.h"
#include "ir/IRParser.h"
#include "support/TableFormat.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

void printTable1() {
  TextTable T;
  T.setHeader({"input predicate", "result of compare", "un", "uc", "on",
               "oc", "an", "ac"});
  for (int Guard = 0; Guard <= 1; ++Guard)
    for (int Cmp = 0; Cmp <= 1; ++Cmp) {
      std::vector<std::string> Row{std::to_string(Guard),
                                   std::to_string(Cmp)};
      for (CmppAction A : {CmppAction::UN, CmppAction::UC, CmppAction::ON,
                           CmppAction::OC, CmppAction::AN, CmppAction::AC}) {
        std::optional<bool> R = evalCmppAction(A, Guard != 0, Cmp != 0);
        Row.push_back(R ? std::to_string(*R ? 1 : 0) : "-");
      }
      T.addRow(Row);
    }
  std::printf("Table 1: behavior of compare operations ('-' = destination "
              "left untouched)\n\n%s\n",
              T.render().c_str());
}

/// Interpreter throughput on a cmpp-dense block (the operation class
/// control CPR multiplies).
void BM_InterpretCmppBlock(benchmark::State &State) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @Loop:
  p1 = mov(1)
  p2 = mov(0)
  p1:ac, p2:on = cmpp.eq(r1, 1)
  p1:ac, p2:on = cmpp.eq(r2, 2)
  p1:ac, p2:on = cmpp.eq(r3, 3)
  p1:ac, p2:on = cmpp.eq(r4, 4)
  r9 = sub(r9, 1)
  p3:un = cmpp.gt(r9, 0)
  b1 = pbr(@Loop)
  branch(p3, b1)
  halt
}
)");
  for (auto _ : State) {
    Memory Mem;
    RunResult R = interpret(*F, Mem, {{Reg::gpr(9), 1000}});
    benchmark::DoNotOptimize(R.Steps);
  }
}
BENCHMARK(BM_InterpretCmppBlock)->Unit(benchmark::kMicrosecond);

/// BDD cost of the disjointness queries the scheduler issues for an
/// FRP-converted branch chain.
void BM_BddFrpChainDisjointness(benchmark::State &State) {
  for (auto _ : State) {
    BDD M;
    constexpr int N = 16;
    std::vector<BDD::NodeRef> Taken;
    BDD::NodeRef Path = BDD::True;
    for (int I = 0; I < N; ++I) {
      BDD::NodeRef C = M.var(static_cast<uint32_t>(I));
      Taken.push_back(M.mkAnd(Path, C));
      Path = M.mkAnd(Path, M.mkNot(C));
    }
    bool AllDisjoint = true;
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        AllDisjoint &= M.disjoint(Taken[static_cast<size_t>(I)],
                                  Taken[static_cast<size_t>(J)]);
    benchmark::DoNotOptimize(AllDisjoint);
  }
}
BENCHMARK(BM_BddFrpChainDisjointness)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench/bench_fig4_schema.cpp - Paper Figure 4 -----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates Figure 4: a structural audit of the ICBM schema on a single
// CPR block. Verifies, mechanically, the figure's claims about the
// transformed code: the on-trace path holds A0, the FRP-independent sets
// O_i, one lookahead compare per original compare, and exactly one bypass
// branch; the off-trace path holds the original compares, branches, and
// the FRP-dependent sets P_i; split operations appear on both paths; and
// the on-trace operation count is *irredundant* (strictly below the
// original, n branches replaced by one).
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/CompilerPipeline.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

/// One CPR block with three branches, FRP-dependent stores (P sets) and
/// FRP-independent address arithmetic (O sets), as in Figure 4.
const char *Fig4Src = R"(
func @figure4 {
block @Entry:
  r61 = mov(200)
block @SB:
  r11 = add(r2, 0)
  r51 = load.m1(r11)
  p1:un = cmpp.lt(r51, 4)
  b1 = pbr(@Exit)
  branch(p1, b1)
  r31 = add(r3, 0)
  store.m2(r31, r51)
  r12 = add(r2, 1)
  r52 = load.m1(r12)
  p2:un = cmpp.lt(r52, 4)
  b2 = pbr(@Exit)
  branch(p2, b2)
  r32 = add(r3, 1)
  store.m2(r32, r52)
  r13 = add(r2, 2)
  r53 = load.m1(r13)
  p3:un = cmpp.lt(r53, 4)
  b3 = pbr(@Exit)
  branch(p3, b3)
  r33 = add(r3, 2)
  store.m2(r33, r53)
  r2 = add(r2, 3)
  r3 = add(r3, 3)
  r61 = sub(r61, 1)
  p4:un = cmpp.gt(r61, 0)
  b4 = pbr(@SB)
  branch(p4, b4)
  halt
block @Exit:
  halt
}
)";

KernelProgram makeFig4Program() {
  KernelProgram P;
  P.Func = parseFunctionOrDie(Fig4Src);
  for (int64_t I = 0; I < 700; ++I)
    P.InitMem.store(1000 + I, 4 + (I * 13) % 96);
  P.InitRegs = {{Reg::gpr(2), 1000}, {Reg::gpr(3), 5000}};
  return P;
}

size_t countKind(const Block &B, bool (*Pred)(const Operation &)) {
  size_t N = 0;
  for (const Operation &Op : B.ops())
    if (Pred(Op))
      ++N;
  return N;
}

void printFigure4() {
  KernelProgram P = makeFig4Program();
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);
  CPRResult CR;
  PipelineOptions PO;
  PO.CPR.EnableTakenVariation = false; // the figure's fall-through schema
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Base, Prof, PO.CPR, &CR);

  const Block &OrigSB = *Base->blockByName("SB");
  const Block &OnTrace = *Treated->blockByName("SB");
  const Block *Comp = nullptr;
  for (size_t I = 0; I < Treated->numBlocks(); ++I)
    if (Treated->block(I).isCompensation())
      Comp = &Treated->block(I);

  auto IsBranch = +[](const Operation &Op) { return Op.isBranch(); };
  auto IsCmpp = +[](const Operation &Op) { return Op.isCmpp(); };
  auto IsStore = +[](const Operation &Op) { return Op.isStore(); };

  std::printf("Figure 4 schema audit (3-branch CPR block, fall-through "
              "variation)\n\n");
  std::printf("%-44s %8s %8s %8s\n", "", "original", "on-trace",
              "off-trace");
  std::printf("%-44s %8zu %8zu %8zu\n", "branches",
              countKind(OrigSB, IsBranch), countKind(OnTrace, IsBranch),
              Comp ? countKind(*Comp, IsBranch) : 0);
  std::printf("%-44s %8zu %8zu %8zu\n", "compares",
              countKind(OrigSB, IsCmpp), countKind(OnTrace, IsCmpp),
              Comp ? countKind(*Comp, IsCmpp) : 0);
  std::printf("%-44s %8zu %8zu %8zu\n", "stores (P sets, replicated)",
              countKind(OrigSB, IsStore), countKind(OnTrace, IsStore),
              Comp ? countKind(*Comp, IsStore) : 0);
  std::printf("%-44s %8zu %8zu %8zu\n", "total operations", OrigSB.size(),
              OnTrace.size(), Comp ? Comp->size() : 0);
  std::printf("\nschema checks:\n");

  // The figure's invariants. The CPR block covers the three exit
  // branches; the loop backedge remains (one CPR block + backedge = 2
  // on-trace branches when the backedge is not covered).
  size_t OnTraceBranches = countKind(OnTrace, IsBranch);
  std::printf("  one bypass branch per CPR block ............ %s\n",
              OnTraceBranches <= 2 ? "ok" : "VIOLATED");
  std::printf("  off-trace holds the original branches ...... %s\n",
              Comp && countKind(*Comp, IsBranch) == 3 ? "ok" : "VIOLATED");
  std::printf("  irredundant on-trace (ops <= original) ...... %s (%zu vs "
              "%zu)\n",
              OnTrace.size() <= OrigSB.size() ? "ok" : "VIOLATED",
              OnTrace.size(), OrigSB.size());
  std::printf("  behavior preserved (interpreter oracle) ..... %s\n\n",
              checkEquivalence(*Base, *Treated, P.InitMem, P.InitRegs)
                      .Equivalent
                  ? "ok"
                  : "VIOLATED");

  std::printf("on-trace code:\n%s\n",
              printBlock(*Treated, OnTrace).c_str());
  if (Comp)
    std::printf("off-trace code:\n%s\n", printBlock(*Treated, *Comp).c_str());
}

void BM_SchemaTransform(benchmark::State &State) {
  KernelProgram P = makeFig4Program();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  for (auto _ : State) {
    std::unique_ptr<Function> T =
        applyControlCPR(*P.Func, Prof, CPROptions());
    benchmark::DoNotOptimize(T.get());
  }
}
BENCHMARK(BM_SchemaTransform)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench/bench_fig2_bypass.cpp - Paper Figure 2 -----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates Figure 2: bypass-branch insertion and height-reduced FRP
// evaluation. Takes the canonical three-branch superblock, applies the
// full control CPR transformation, prints the before/after listings, and
// reports the dependence-height reduction the transformation achieves --
// the "final height-reduced code" panel of the figure -- across machine
// models.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/CompilerPipeline.h"
#include "sched/ListScheduler.h"
#include "support/TableFormat.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

/// Figure 2's starting superblock (conditions c1..c3, stores between the
/// branches), as a runnable loop so a profile exists.
const char *Fig2Src = R"(
func @figure2 {
block @Entry:
  r61 = mov(64)
block @SB:
  r11 = add(r2, 0)
  r51 = load.m1(r11)
  p1:un = cmpp.lt(r51, 5)
  b1 = pbr(@Exit)
  branch(p1, b1)
  store.m2(r31, r51)
  r12 = add(r2, 1)
  r52 = load.m1(r12)
  p2:un = cmpp.lt(r52, 5)
  b2 = pbr(@Exit)
  branch(p2, b2)
  store.m2(r32, r52)
  r13 = add(r2, 2)
  r53 = load.m1(r13)
  p3:un = cmpp.lt(r53, 5)
  b3 = pbr(@Exit)
  branch(p3, b3)
  store.m2(r33, r53)
  r2 = add(r2, 3)
  r61 = sub(r61, 1)
  p4:un = cmpp.gt(r61, 0)
  b4 = pbr(@SB)
  branch(p4, b4)
  halt
block @Exit:
  halt
}
)";

KernelProgram makeFig2Program() {
  KernelProgram P;
  P.Func = parseFunctionOrDie(Fig2Src);
  // Condition data: values >= 5 fall through (biased).
  for (int64_t I = 0; I < 400; ++I)
    P.InitMem.store(1000 + I, 5 + (I * 7) % 90);
  P.InitRegs = {{Reg::gpr(2), 1000},
                {Reg::gpr(31), 5000},
                {Reg::gpr(32), 5001},
                {Reg::gpr(33), 5002}};
  return P;
}

int bypassDeparture(const Function &F, const std::string &BlockName,
                    const MachineDesc &MD) {
  const Block *B = const_cast<Function &>(F).blockByName(BlockName);
  RegionPQS PQS(F, *B);
  Liveness LV(F);
  DepGraph DG(F, *B, MD, PQS, LV);
  Schedule S = scheduleBlock(*B, DG, MD);
  int Last = 0;
  for (size_t I = 0; I < B->size(); ++I)
    if (B->ops()[I].isBranch())
      Last = std::max(Last, S.departureCycle(I, *B, MD));
  return Last;
}

void printFigure2() {
  KernelProgram P = makeFig2Program();
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

  CPRResult CR;
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Base, Prof, CPROptions(), &CR);

  std::printf("Figure 2(a): the original superblock (inside the "
              "rectangle)\n\n%s\n",
              printBlock(*Base, *Base->blockByName("SB")).c_str());
  std::printf("Figure 2(b): final height-reduced code -- single on-trace "
              "bypass branch, wired-and/wired-or FRP evaluation, original "
              "branches in the compensation block\n\n");
  for (size_t I = 0; I < Treated->numBlocks(); ++I) {
    const Block &B = Treated->block(I);
    if (B.getName() == "SB" || B.isCompensation())
      std::printf("%s\n", printBlock(*Treated, B).c_str());
  }

  TextTable T;
  T.setHeader({"machine", "exit height, original", "exit height, CPR"});
  for (const MachineDesc &MD : MachineDesc::paperModels()) {
    T.addRow({MD.getName(),
              std::to_string(bypassDeparture(*Base, "SB", MD)),
              std::to_string(bypassDeparture(*Treated, "SB", MD))});
  }
  std::printf("Cycle at which the last on-trace exit resolves:\n\n%s\n",
              T.render().c_str());
  std::printf("CPR blocks transformed: %u (lookaheads %u, moved off-trace "
              "%u, split %u)\n\n",
              CR.CPRBlocksTransformed, CR.LookaheadsInserted,
              CR.OpsMovedOffTrace, CR.OpsSplit);
}

void BM_ControlCprFig2(benchmark::State &State) {
  KernelProgram P = makeFig2Program();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  for (auto _ : State) {
    std::unique_ptr<Function> T = applyControlCPR(*P.Func, Prof,
                                                  CPROptions());
    benchmark::DoNotOptimize(T.get());
  }
}
BENCHMARK(BM_ControlCprFig2)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

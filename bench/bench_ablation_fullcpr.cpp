//===- bench/bench_ablation_fullcpr.cpp - ICBM vs full CPR ----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Ablation A4: Section 4 of the paper positions ICBM against "full CPR"
// [SK95], which accelerates *all* paths at the cost of quadratic compare
// growth: "the use of profile data allows us to expedite some program
// paths at the expense of others; ICBM reduces code growth by
// accelerating only a single, statically predicted, program path...
// Thus, ICBM is attractive for processors with limited parallelism.
// Approaches that accelerate multiple paths can further improve
// performance for highly parallel processors or where static prediction
// is difficult."
//
// This bench implements that comparison: baseline vs ICBM vs full CPR on
// each machine model, plus the dynamic-operation ratios that expose full
// CPR's redundant execution.
//
//===----------------------------------------------------------------------===//

#include "cpr/FullCPR.h"
#include "support/Error.h"
#include "interp/Profiler.h"
#include "pipeline/CompilerPipeline.h"
#include "regions/DeadCodeElim.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

struct Variant {
  double Speedup[5];
  double DynOps;
};

Variant measure(const KernelProgram &P, const Function &Baseline,
                const Function &Treated, const ProfileData &BaseProfile,
                const DynStats &BaseStats) {
  Variant V;
  Memory Mem = P.InitMem;
  DynStats TreatedStats;
  ProfileData TreatedProfile =
      profileRun(Treated, Mem, P.InitRegs, &TreatedStats);
  std::vector<MachineDesc> Machines = MachineDesc::paperModels();
  for (size_t M = 0; M < 5; ++M) {
    double Before =
        estimatePerformance(Baseline, Machines[M], BaseProfile).TotalCycles;
    double After = estimatePerformance(Treated, Machines[M], TreatedProfile)
                       .TotalCycles;
    V.Speedup[M] = After > 0 ? Before / After : 0.0;
  }
  V.DynOps = static_cast<double>(TreatedStats.OpsDispatched) /
             static_cast<double>(BaseStats.OpsDispatched);
  return V;
}

void printComparison() {
  const char *Names[] = {"strcpy", "grep", "wc",       "126.gcc",
                         "022.li", "099.go", "023.eqntott"};
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();

  TextTable T;
  T.setHeader({"Benchmark", "variant", "Seq", "Nar", "Med", "Wid", "Inf",
               "dyn ops"});
  std::vector<double> IcbmMed, FullMed, IcbmInf, FullInf;
  for (const char *Name : Names) {
    KernelProgram P = findBenchmark(Suite, Name).Build();
    const Function &Baseline = *P.Func;
    Memory Mem = P.InitMem;
    DynStats BaseStats;
    ProfileData Prof = profileRun(Baseline, Mem, P.InitRegs, &BaseStats);

    // ICBM.
    std::unique_ptr<Function> Icbm =
        applyControlCPR(Baseline, Prof, CPROptions());
    Variant VI = measure(P, Baseline, *Icbm, Prof, BaseStats);

    // Full CPR (profile-free; DCE strips dead original predicates).
    std::unique_ptr<Function> Full = Baseline.clone();
    runFullCPR(*Full);
    eliminateDeadCode(*Full);
    EquivResult E = checkEquivalence(Baseline, *Full, P.InitMem, P.InitRegs);
    if (!E.Equivalent)
      reportFatalError("full CPR broke " + std::string(Name) + ": " +
                       E.Detail);
    Variant VF = measure(P, Baseline, *Full, Prof, BaseStats);

    for (int K = 0; K < 2; ++K) {
      const Variant &V = K ? VF : VI;
      std::vector<std::string> Row{K == 0 ? Name : "",
                                   K == 0 ? "ICBM" : "full CPR"};
      for (double S : V.Speedup)
        Row.push_back(TextTable::fmt(S));
      Row.push_back(TextTable::fmt(V.DynOps));
      T.addRow(Row);
    }
    IcbmMed.push_back(VI.Speedup[2]);
    FullMed.push_back(VF.Speedup[2]);
    IcbmInf.push_back(VI.Speedup[4]);
    FullInf.push_back(VF.Speedup[4]);
  }
  T.addSeparator();
  T.addRow({"Gmean", "ICBM", "", "", TextTable::fmt(geometricMean(IcbmMed)),
            "", TextTable::fmt(geometricMean(IcbmInf)), ""});
  T.addRow({"", "full CPR", "", "", TextTable::fmt(geometricMean(FullMed)),
            "", TextTable::fmt(geometricMean(FullInf)), ""});
  std::printf("ICBM vs full CPR [SK95] (paper Section 4: redundant "
              "all-paths acceleration vs irredundant single-path)\n\n%s\n",
              T.render().c_str());
  std::printf("(dyn ops: dynamic operations relative to baseline; full "
              "CPR's redundant compares execute on every path)\n\n");
}

void BM_FullCprTransform(benchmark::State &State) {
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  KernelProgram P = findBenchmark(Suite, "126.gcc").Build();
  for (auto _ : State) {
    std::unique_ptr<Function> Full = P.Func->clone();
    FullCPRStats S = runFullCPR(*Full);
    benchmark::DoNotOptimize(S.LookaheadsInserted);
  }
}
BENCHMARK(BM_FullCprTransform)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench/bench_fig1_frp.cpp - Paper Figure 1 --------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates Figure 1: the FRP conversion process on a superblock with
// three sequentially dependent branches. Prints the original superblock
// (branch dependences expose every branch's latency) and the
// FRP-converted form (branches guarded by mutually exclusive fully
// resolved predicates, freely reorderable), and measures the branch
// dependence height before and after on every machine model.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "regions/FRPConversion.h"
#include "sched/ListScheduler.h"
#include "support/TableFormat.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

/// The Figure 1 superblock: three compares/branches with stores between
/// them (the generic non-speculative operations of the figure).
const char *Fig1Src = R"(
func @figure1 {
block @SB:
  p1:un = cmpp.lt(r11, r21)
  b1 = pbr(@E1)
  branch(p1, b1)
  store.m1(r31, r41)
  p2:un = cmpp.lt(r12, r22)
  b2 = pbr(@E2)
  branch(p2, b2)
  store.m1(r32, r42)
  p3:un = cmpp.lt(r13, r23)
  b3 = pbr(@E3)
  branch(p3, b3)
  store.m1(r33, r43)
  halt
block @E1:
  halt
block @E2:
  halt
block @E3:
  halt
}
)";

int lastBranchDeparture(const Function &F, const MachineDesc &MD) {
  const Block &B = F.block(0);
  RegionPQS PQS(F, B);
  Liveness LV(F);
  DepGraph DG(F, B, MD, PQS, LV);
  Schedule S = scheduleBlock(B, DG, MD);
  int Last = 0;
  for (size_t I = 0; I < B.size(); ++I)
    if (B.ops()[I].isBranch())
      Last = std::max(Last, S.departureCycle(I, B, MD));
  return Last;
}

void printFigure1() {
  std::unique_ptr<Function> Orig = parseFunctionOrDie(Fig1Src);
  std::unique_ptr<Function> Conv = parseFunctionOrDie(Fig1Src);
  convertToFRP(*Conv, Conv->block(0));

  std::printf("Figure 1(a): original superblock, sequential branches\n\n%s\n",
              printBlock(*Orig, Orig->block(0)).c_str());
  std::printf("Figure 1(b): FRP-converted superblock, independent "
              "branches\n\n%s\n",
              printBlock(*Conv, Conv->block(0)).c_str());

  // Mutual exclusion evidence.
  RegionPQS PQS(*Conv, Conv->block(0));
  std::vector<size_t> Brs;
  for (size_t I = 0; I < Conv->block(0).size(); ++I)
    if (Conv->block(0).ops()[I].isBranch())
      Brs.push_back(I);
  bool AllDisjoint = true;
  for (size_t I = 0; I < Brs.size(); ++I)
    for (size_t J = I + 1; J < Brs.size(); ++J)
      AllDisjoint &=
          PQS.disjoint(PQS.takenExpr(Brs[I]), PQS.takenExpr(Brs[J]));
  std::printf("branch predicates pairwise disjoint after conversion: %s\n\n",
              AllDisjoint ? "yes" : "NO");

  TextTable T;
  T.setHeader({"machine (branch latency 2)", "last-exit cycle, original",
               "last-exit cycle, FRP-converted"});
  for (const MachineDesc &MD : MachineDesc::paperModels(/*BranchLat=*/2)) {
    std::unique_ptr<Function> O2 = parseFunctionOrDie(Fig1Src);
    std::unique_ptr<Function> C2 = parseFunctionOrDie(Fig1Src);
    convertToFRP(*C2, C2->block(0));
    T.addRow({MD.getName(),
              std::to_string(lastBranchDeparture(*O2, MD)),
              std::to_string(lastBranchDeparture(*C2, MD))});
  }
  std::printf("Exposed branch latency (2 cycles) makes the dependence "
              "chain visible; FRP conversion removes it on machines with "
              "branch throughput:\n\n%s\n",
              T.render().c_str());
}

void BM_FrpConversion(benchmark::State &State) {
  for (auto _ : State) {
    std::unique_ptr<Function> F = parseFunctionOrDie(Fig1Src);
    FRPConversionStats S = convertToFRP(*F, F->block(0));
    benchmark::DoNotOptimize(S.BranchesConverted);
  }
}
BENCHMARK(BM_FrpConversion)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench/bench_table2_speedup.cpp - Paper Table 2 ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates Table 2: "The effectiveness of ICBM for processors with
// branch latency 1" -- the speedup of height-reduced (FRP + ICBM + DCE)
// code over baseline superblock code, per benchmark, on the sequential,
// narrow, medium, wide, and infinite machine models, with geometric-mean
// rows over the SPEC-95 subset and over all benchmarks.
//
// Also registers google-benchmark timers for the pipeline's compile-side
// cost on a representative input.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"
#include "interp/Profiler.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "pipeline/Reports.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

void printTable2() {
  std::vector<SuiteRow> Rows = runSuite();
  std::printf("Table 2: speedup of control CPR (ICBM) over baseline "
              "superblock code, branch latency 1\n");
  std::printf("(paper reference Gmean-all: Seq 1.13, Nar 1.05, Med 1.18, "
              "Wid 1.33, Inf 1.41)\n\n%s\n",
              renderTable2(Rows).c_str());
}

/// Compile-side cost of the full pipeline on the strcpy kernel.
void BM_PipelineStrcpy(benchmark::State &State) {
  for (auto _ : State) {
    KernelProgram P = buildStrcpyKernel(8, 4096, 1);
    PipelineResult R = runPipeline(P);
    benchmark::DoNotOptimize(R.Machines.data());
  }
}
BENCHMARK(BM_PipelineStrcpy)->Unit(benchmark::kMillisecond);

/// ICBM transformation alone on a synthetic application.
void BM_ControlCPROnly(benchmark::State &State) {
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  KernelProgram P = findBenchmark(Suite, "126.gcc").Build();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  for (auto _ : State) {
    std::unique_ptr<Function> T = applyControlCPR(*P.Func, Prof,
                                                  CPROptions());
    benchmark::DoNotOptimize(T.get());
  }
}
BENCHMARK(BM_ControlCPROnly)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

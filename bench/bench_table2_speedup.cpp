//===- bench/bench_table2_speedup.cpp - Paper Table 2 ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates Table 2: "The effectiveness of ICBM for processors with
// branch latency 1" -- the speedup of height-reduced (FRP + ICBM + DCE)
// code over baseline superblock code, per benchmark, on the sequential,
// narrow, medium, wide, and infinite machine models, with geometric-mean
// rows over the SPEC-95 subset and over all benchmarks.
//
// The suite runs as one staged PipelineRun session per benchmark on a
// work-queue thread pool (--threads=<n>); the rendered table is identical
// at every thread count. --stats-json=<file> dumps per-stage counters and
// wall times; --micro (or any --benchmark_* flag) also runs the
// google-benchmark timers for the pipeline's compile-side cost.
//
//===----------------------------------------------------------------------===//

#include "DriverCommon.h"
#include "pipeline/CompilerPipeline.h"
#include "interp/Profiler.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "pipeline/Reports.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

void printTable2(const DriverConfig &C, StatsRegistry *Stats) {
  PipelineOptions Opts;
  Opts.Threads = C.Threads;
  Opts.Stats = Stats;
  std::vector<SuiteRow> Rows = runSuite(Opts);
  std::printf("Table 2: speedup of control CPR (ICBM) over baseline "
              "superblock code, branch latency 1\n");
  std::printf("(paper reference Gmean-all: Seq 1.13, Nar 1.05, Med 1.18, "
              "Wid 1.33, Inf 1.41)\n\n%s\n",
              renderTable2(Rows).c_str());
}

/// Compile-side cost of the full pipeline on the strcpy kernel.
void BM_PipelineStrcpy(benchmark::State &State) {
  for (auto _ : State) {
    KernelProgram P = buildStrcpyKernel(8, 4096, 1);
    PipelineResult R = runPipeline(P);
    benchmark::DoNotOptimize(R.Machines.data());
  }
}
BENCHMARK(BM_PipelineStrcpy)->Unit(benchmark::kMillisecond);

/// ICBM transformation alone on a synthetic application.
void BM_ControlCPROnly(benchmark::State &State) {
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  KernelProgram P = findBenchmark(Suite, "126.gcc").Build();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  for (auto _ : State) {
    std::unique_ptr<Function> T = applyControlCPR(*P.Func, Prof,
                                                  CPROptions());
    benchmark::DoNotOptimize(T.get());
  }
}
BENCHMARK(BM_ControlCPROnly)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  DriverConfig C = parseDriverOptions(argc, argv, "bench_table2_speedup");
  StatsRegistry Stats;
  printTable2(C, C.StatsJSON.empty() ? nullptr : &Stats);
  maybeWriteStats(C, Stats);
  maybeRunMicroBenchmarks(C, argv[0]);
  return 0;
}

//===- bench/bench_fig3_blocking.cpp - Paper Figure 3 ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Regenerates Figure 3: partitioning a long superblock into multiple CPR
// blocks. Sweeps the CPR-block size cap on a 12-branch superblock and
// reports, per machine, the estimated cycles of the transformed code --
// showing the blocking trade-off the paper discusses: whole-superblock
// CPR maximizes height reduction on wide machines but delays exits, while
// smaller CPR blocks tolerate unbiased exits better.
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"
#include "pipeline/CompilerPipeline.h"
#include "support/TableFormat.h"
#include "workloads/SyntheticProgram.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

KernelProgram makeLongSuperblock(double Bias) {
  SyntheticParams SP;
  SP.Superblocks = 1;
  SP.RungsPerSuperblock = 12;
  SP.FallThroughBias = Bias;
  SP.UnbiasedFrac = 0.0;
  SP.InseparableFrac = 0.0;
  SP.ChainLen = 1;
  SP.ParallelOps = 2;
  SP.StoresPerRung = 1;
  SP.Trips = 400;
  SP.Seed = 303;
  return buildSyntheticProgram("fig3", SP);
}

void printFigure3() {
  for (double Bias : {0.99, 0.92}) {
    std::printf("Figure 3 sweep: 12-branch superblock, per-branch "
                "fall-through bias %.2f\n",
                Bias);
    TextTable T;
    T.setHeader({"max branches per CPR block", "CPR blocks", "Seq", "Nar",
                 "Med", "Wid", "Inf"});
    for (unsigned Cap : {1u, 2u, 3u, 4u, 6u, 12u}) {
      KernelProgram P = makeLongSuperblock(Bias);
      PipelineOptions Opts;
      Opts.CPR.MaxBranchesPerBlock = Cap;
      // Disable the heuristics so the cap alone controls blocking.
      Opts.CPR.ExitWeightThreshold = 2.0;
      Opts.CPR.EnableTakenVariation = false;
      PipelineResult R = runPipeline(P, Opts);
      std::vector<std::string> Row{
          std::to_string(Cap), std::to_string(R.CPR.CPRBlocksTransformed)};
      for (const char *M :
           {"sequential", "narrow", "medium", "wide", "infinite"})
        Row.push_back(TextTable::fmt(R.speedupOn(M)));
      T.addRow(Row);
    }
    std::printf("%s\n", T.render().c_str());
  }
  std::printf("(speedup over the untransformed baseline; cap 12 = whole "
              "superblock as one CPR block, cap 1 = no transformation)\n\n");
}

void BM_BlockingSweepPoint(benchmark::State &State) {
  for (auto _ : State) {
    KernelProgram P = makeLongSuperblock(0.99);
    PipelineOptions Opts;
    Opts.CPR.MaxBranchesPerBlock = 4;
    PipelineResult R = runPipeline(P, Opts);
    benchmark::DoNotOptimize(R.CPR.CPRBlocksTransformed);
  }
}
BENCHMARK(BM_BlockingSweepPoint)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

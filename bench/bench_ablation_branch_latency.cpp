//===- bench/bench_ablation_branch_latency.cpp - Latency ablation ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Ablation A1 (DESIGN.md): the paper motivates control CPR partly by
// *exposed branch latency* -- EPIC branch units without prediction
// hardware take effect at a visible latency, so chains of dependent
// branches cost latency x chain length. This bench sweeps the branch
// latency from 1 (the paper's Table 2 setting) to 3 and reports the ICBM
// speedup on each machine model for a representative subset of the suite:
// the benefit of collapsing n branches into one grows with the exposed
// latency.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "workloads/BenchmarkSuite.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace cpr;

namespace {

void printAblation() {
  const char *Names[] = {"strcpy", "wc", "grep", "126.gcc", "147.vortex",
                         "023.eqntott"};
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();

  for (int Lat : {1, 2, 3}) {
    std::printf("Branch latency %d:\n", Lat);
    TextTable T;
    T.setHeader({"Benchmark", "Seq", "Nar", "Med", "Wid", "Inf"});
    std::vector<std::vector<double>> Cols(5);
    for (const char *Name : Names) {
      KernelProgram P = findBenchmark(Suite, Name).Build();
      PipelineOptions Opts;
      Opts.Machines = MachineDesc::paperModels(Lat);
      PipelineResult R = runPipeline(P, Opts);
      std::vector<std::string> Row{Name};
      for (size_t M = 0; M < 5; ++M) {
        double S = R.Machines[M].speedup();
        Row.push_back(TextTable::fmt(S));
        Cols[M].push_back(S);
      }
      T.addRow(Row);
    }
    T.addSeparator();
    std::vector<std::string> G{"Gmean"};
    for (size_t M = 0; M < 5; ++M)
      G.push_back(TextTable::fmt(geometricMean(Cols[M])));
    T.addRow(G);
    std::printf("%s\n", T.render().c_str());
  }
  std::printf("(ICBM speedup grows with exposed branch latency: each "
              "collapsed branch saves Lat cycles of dependence height)\n\n");
}

void BM_PipelineLat3(benchmark::State &State) {
  for (auto _ : State) {
    KernelProgram P = buildStrcpyKernel(8, 4096, 1);
    PipelineOptions Opts;
    Opts.Machines = MachineDesc::paperModels(3);
    PipelineResult R = runPipeline(P, Opts);
    benchmark::DoNotOptimize(R.Machines.data());
  }
}
BENCHMARK(BM_PipelineLat3)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

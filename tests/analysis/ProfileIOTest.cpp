//===- tests/analysis/ProfileIOTest.cpp - Profile serialization tests -----===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ProfileIO.h"

#include "interp/Profiler.h"
#include "pipeline/CompilerPipeline.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(ProfileIOTest, RoundTrip) {
  KernelProgram P = buildWcKernel(4, 2048, 17);
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);

  std::string Text = serializeProfile(Prof, *P.Func);
  ProfileParseResult R = parseProfile(Text);
  ASSERT_TRUE(R) << R.Error;

  for (size_t BI = 0; BI < P.Func->numBlocks(); ++BI) {
    BlockId Id = P.Func->block(BI).getId();
    EXPECT_EQ(R.Profile.blockEntries(Id), Prof.blockEntries(Id));
    for (const Operation &Op : P.Func->block(BI).ops()) {
      if (!Op.isBranch())
        continue;
      EXPECT_EQ(R.Profile.branchReached(Op.getId()),
                Prof.branchReached(Op.getId()));
      EXPECT_EQ(R.Profile.branchTaken(Op.getId()),
                Prof.branchTaken(Op.getId()));
    }
  }
}

TEST(ProfileIOTest, DeterministicOutput) {
  KernelProgram P = buildStrcpyKernel(4, 512, 3);
  Memory M1 = P.InitMem, M2 = P.InitMem;
  ProfileData A = profileRun(*P.Func, M1, P.InitRegs);
  ProfileData B = profileRun(*P.Func, M2, P.InitRegs);
  EXPECT_EQ(serializeProfile(A, *P.Func), serializeProfile(B, *P.Func));
}

TEST(ProfileIOTest, CommentsAndErrors) {
  ProfileParseResult Ok = parseProfile(
      "# a comment\nprofile v1\nblock 3 100 # trailing\nbranch 7 100 25\n");
  ASSERT_TRUE(Ok) << Ok.Error;
  EXPECT_EQ(Ok.Profile.blockEntries(3), 100u);
  EXPECT_DOUBLE_EQ(Ok.Profile.takenRatio(7), 0.25);

  EXPECT_FALSE(parseProfile("block 1 2\n"));            // missing header
  EXPECT_FALSE(parseProfile("profile v2\n"));           // bad version
  EXPECT_FALSE(parseProfile("profile v1\nbogus 1\n"));  // unknown record
  EXPECT_FALSE(parseProfile("profile v1\nbranch 1 5 9\n")); // taken>reached
  EXPECT_FALSE(parseProfile("profile v1\nblock xyz\n")); // malformed
}

TEST(ProfileIOTest, SavedProfileDrivesICBM) {
  // The [FF92] workflow the paper cites: profile on one input, transform,
  // run on another input -- behavior must hold and the transformation
  // still fires.
  KernelProgram Train = buildStrcpyKernel(8, 4096, 100);
  Memory Mem = Train.InitMem;
  ProfileData Prof = profileRun(*Train.Func, Mem, Train.InitRegs);
  std::string Text = serializeProfile(Prof, *Train.Func);

  ProfileParseResult Loaded = parseProfile(Text);
  ASSERT_TRUE(Loaded);

  CPRResult CR;
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Train.Func, Loaded.Profile, CPROptions(), &CR);
  EXPECT_GE(CR.CPRBlocksTransformed, 1u);

  // A different data set (the profile transfers, per [FF92]).
  KernelProgram Test = buildStrcpyKernel(8, 1024, 999);
  EquivResult E = checkEquivalence(*Test.Func, *Treated, Test.InitMem,
                                   Test.InitRegs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

} // namespace

//===- tests/analysis/PQSTest.cpp - Predicate Query System tests ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/PQS.h"

#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// Finds the index of the op with id \p Id in block 0.
size_t idx(const Function &F, OpId Id) {
  int I = F.block(0).indexOfOp(Id);
  EXPECT_GE(I, 0);
  return static_cast<size_t>(I);
}

TEST(PQSTest, UnUcPairIsComplementary) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.lt(r1, 10)
  r2 = add(r3, 1) if p1
  r4 = add(r3, 2) if p2
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  BDD::NodeRef E1 = PQS.guardExpr(1);
  BDD::NodeRef E2 = PQS.guardExpr(2);
  EXPECT_TRUE(PQS.disjoint(E1, E2));
  // Together they cover everything: !(p1 | p2) == false.
  EXPECT_EQ(PQS.bdd().mkOr(E1, E2), BDD::True);
}

TEST(PQSTest, DuplicateComparesShareAtoms) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  p2:un = cmpp.eq(r1, 0)
  p3:un = cmpp.ne(r1, 0)
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  BDD::NodeRef P1 = PQS.predValueAfter(0, Reg::pred(1));
  BDD::NodeRef P2 = PQS.predValueAfter(1, Reg::pred(2));
  BDD::NodeRef P3 = PQS.predValueAfter(2, Reg::pred(3));
  EXPECT_EQ(P1, P2) << "same comparison must share an atom";
  EXPECT_EQ(P3, PQS.bdd().mkNot(P1)) << "ne is the complement of eq";
}

TEST(PQSTest, RedefinitionBreaksAtomSharing) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  r1 = add(r1, 1)
  p2:un = cmpp.eq(r1, 0)
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  BDD::NodeRef P1 = PQS.predValueAfter(0, Reg::pred(1));
  BDD::NodeRef P2 = PQS.predValueAfter(2, Reg::pred(2));
  EXPECT_NE(P1, P2) << "r1 changed between the compares";
  EXPECT_FALSE(PQS.disjoint(P1, P2));
}

TEST(PQSTest, WiredOrAccumulation) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1 = mov(0)
  p1:on = cmpp.eq(r1, 1)
  p1:on = cmpp.eq(r2, 2)
  p2:un = cmpp.eq(r1, 1)
  p3:un = cmpp.eq(r2, 2)
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  BDD &M = PQS.bdd();
  BDD::NodeRef Or = PQS.predValueAfter(2, Reg::pred(1));
  BDD::NodeRef C1 = PQS.predValueAfter(3, Reg::pred(2));
  BDD::NodeRef C2 = PQS.predValueAfter(4, Reg::pred(3));
  EXPECT_EQ(Or, M.mkOr(C1, C2));
}

TEST(PQSTest, WiredAndWithRootInitialization) {
  // The ICBM on-trace FRP: init to root, then AC terms.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p9:un = cmpp.lt(r9, 5)
  p1 = mov(p9)
  p1:ac = cmpp.eq(r1, 0) if p9
  p1:ac = cmpp.eq(r2, 0) if p9
  p2:un = cmpp.eq(r1, 0)
  p3:un = cmpp.eq(r2, 0)
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  BDD &M = PQS.bdd();
  BDD::NodeRef Root = PQS.predValueAfter(0, Reg::pred(9));
  BDD::NodeRef OnTrace = PQS.predValueAfter(3, Reg::pred(1));
  BDD::NodeRef C1 = PQS.predValueAfter(4, Reg::pred(2));
  BDD::NodeRef C2 = PQS.predValueAfter(5, Reg::pred(3));
  // root & !c1 & !c2
  BDD::NodeRef Expected =
      M.mkAnd(Root, M.mkAnd(M.mkNot(C1), M.mkNot(C2)));
  EXPECT_EQ(OnTrace, Expected);
}

TEST(PQSTest, GuardedMovMergesValues) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.lt(r1, 3)
  p3 = mov(0)
  p3 = mov(1) if p1
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  // p3 = p1 ? 1 : 0 == p1.
  BDD::NodeRef P3 = PQS.predValueAfter(2, Reg::pred(3));
  BDD::NodeRef P1 = PQS.predValueAfter(0, Reg::pred(1));
  EXPECT_EQ(P3, P1);
}

TEST(PQSTest, FrpChainBranchesAreDisjoint) {
  // The structure FRP conversion produces: each taken predicate excludes
  // all earlier taken predicates.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  p3:un, p4:uc = cmpp.eq(r2, 0) if p2
  b2 = pbr(@X)
  branch(p3, b2)
  p5:un, p6:uc = cmpp.eq(r3, 0) if p4
  b3 = pbr(@X)
  branch(p5, b3)
  halt
block @X:
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  std::vector<size_t> Branches;
  for (size_t I = 0; I < B.size(); ++I)
    if (B.ops()[I].isBranch())
      Branches.push_back(I);
  ASSERT_EQ(Branches.size(), 3u);
  for (size_t I = 0; I < 3; ++I)
    for (size_t J = I + 1; J < 3; ++J)
      EXPECT_TRUE(PQS.disjoint(PQS.takenExpr(Branches[I]),
                               PQS.takenExpr(Branches[J])));
  // Each taken predicate implies the preceding fall-through predicate.
  EXPECT_TRUE(PQS.implies(PQS.takenExpr(Branches[1]),
                          PQS.predValueAfter(0, Reg::pred(2))));
}

TEST(PQSTest, LiveInPredicatesAreOpaque) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = add(r2, 1) if p7
  r3 = add(r2, 2) if p8
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  // Nothing is known about live-in predicates: not disjoint, no
  // implication either way.
  EXPECT_FALSE(PQS.disjoint(PQS.guardExpr(0), PQS.guardExpr(1)));
  EXPECT_FALSE(PQS.implies(PQS.guardExpr(0), PQS.guardExpr(1)));
  (void)idx;
}

} // namespace

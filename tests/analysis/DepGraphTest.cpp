//===- tests/analysis/DepGraphTest.cpp - Dependence graph tests -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"

#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

struct Built {
  std::unique_ptr<Function> F;
  std::unique_ptr<RegionPQS> PQS;
  std::unique_ptr<Liveness> LV;
  std::unique_ptr<DepGraph> DG;
};

Built build(const std::string &Src, bool AllowSpeculation = true) {
  Built Bu;
  Bu.F = parseFunctionOrDie(Src);
  const Block &B = Bu.F->block(0);
  Bu.PQS = std::make_unique<RegionPQS>(*Bu.F, B);
  Bu.LV = std::make_unique<Liveness>(*Bu.F);
  DepGraphOptions Opts;
  Opts.AllowSpeculation = AllowSpeculation;
  Bu.DG = std::make_unique<DepGraph>(*Bu.F, B, MachineDesc::medium(),
                                     *Bu.PQS, *Bu.LV, Opts);
  return Bu;
}

bool hasEdge(const DepGraph &DG, uint32_t From, uint32_t To, DepKind K) {
  for (const DepEdge &E : DG.edges())
    if (E.From == From && E.To == To && E.Kind == K)
      return true;
  return false;
}

bool hasAnyEdge(const DepGraph &DG, uint32_t From, uint32_t To) {
  for (const DepEdge &E : DG.edges())
    if (E.From == From && E.To == To)
      return true;
  return false;
}

TEST(DepGraphTest, FlowAntiOutput) {
  Built Bu = build(R"(
func @f {
block @A:
  r1 = mov(1)
  r2 = add(r1, 2)
  r1 = mov(3)
  halt
}
)");
  EXPECT_TRUE(hasEdge(*Bu.DG, 0, 1, DepKind::Flow));
  EXPECT_TRUE(hasEdge(*Bu.DG, 1, 2, DepKind::Anti));
  EXPECT_TRUE(hasEdge(*Bu.DG, 0, 2, DepKind::Output));
}

TEST(DepGraphTest, FlowLatencyIsProducerLatency) {
  Built Bu = build(R"(
func @f {
block @A:
  r1 = load(r9)
  r2 = add(r1, 2)
  r3 = mul(r2, r2)
  r4 = add(r3, 1)
  halt
}
)");
  // load latency 2, mul latency 3.
  for (const DepEdge &E : Bu.DG->edges()) {
    if (E.From == 0 && E.To == 1) {
      EXPECT_EQ(E.Latency, 2);
    }
    if (E.From == 2 && E.To == 3) {
      EXPECT_EQ(E.Latency, 3);
    }
  }
  // Critical path: load(2) + add(1) + mul(3) + add(1) = 7.
  EXPECT_EQ(Bu.DG->criticalPathLength(), 7);
}

TEST(DepGraphTest, WiredWritesAreMutuallyUnordered) {
  Built Bu = build(R"(
func @f {
block @A:
  p1 = mov(0)
  p1:on = cmpp.eq(r1, 1)
  p1:on = cmpp.eq(r2, 2)
  r3 = add(r3, 1) if p1
  halt
}
)");
  // Both wired writes depend on the initializer and feed the use, but not
  // each other.
  EXPECT_TRUE(hasAnyEdge(*Bu.DG, 0, 1));
  EXPECT_TRUE(hasAnyEdge(*Bu.DG, 0, 2));
  EXPECT_FALSE(hasAnyEdge(*Bu.DG, 1, 2));
  EXPECT_TRUE(hasEdge(*Bu.DG, 1, 3, DepKind::Flow));
  EXPECT_TRUE(hasEdge(*Bu.DG, 2, 3, DepKind::Flow));
}

TEST(DepGraphTest, MemoryClassesDisambiguate) {
  Built Bu = build(R"(
func @f {
block @A:
  store.m1(r1, r2)
  r3 = load.m1(r4)
  r5 = load.m2(r6)
  store.m2(r7, r8)
  halt
}
)");
  EXPECT_TRUE(hasEdge(*Bu.DG, 0, 1, DepKind::Mem));  // same class
  EXPECT_FALSE(hasAnyEdge(*Bu.DG, 0, 2));            // different class
  EXPECT_FALSE(hasAnyEdge(*Bu.DG, 1, 3));            // different class
  EXPECT_TRUE(hasEdge(*Bu.DG, 2, 3, DepKind::Mem));  // load then store, same
}

TEST(DepGraphTest, BaseOffsetDisambiguation) {
  Built Bu = build(R"(
func @f {
block @A:
  r10 = add(r1, 0)
  r11 = add(r1, 1)
  store.m1(r10, r2)
  store.m1(r11, r3)
  r4 = load.m1(r10)
  halt
}
)");
  // Same base, different offsets: stores independent.
  EXPECT_FALSE(hasAnyEdge(*Bu.DG, 2, 3));
  // Same base, same offset: store -> load dependence.
  EXPECT_TRUE(hasEdge(*Bu.DG, 2, 4, DepKind::Mem));
  EXPECT_FALSE(hasAnyEdge(*Bu.DG, 3, 4));
}

TEST(DepGraphTest, InductionUpdatesTrackedSymbolically) {
  Built Bu = build(R"(
func @f {
block @A:
  r10 = add(r1, 0)
  store.m1(r10, r2)
  r1 = add(r1, 4)
  r11 = add(r1, 0)
  r12 = add(r1, -4)
  r4 = load.m1(r11)
  r5 = load.m1(r12)
  halt
}
)");
  // "r1 += 4" is folded into the symbolic base: the post-update load at
  // offset 0 is base+4 (independent of the store at base+0), while the
  // load at offset -4 is the same address as the store.
  EXPECT_FALSE(hasAnyEdge(*Bu.DG, 1, 5));
  EXPECT_TRUE(hasEdge(*Bu.DG, 1, 6, DepKind::Mem));
}

TEST(DepGraphTest, DisjointGuardsPruneMemoryEdges) {
  Built Bu = build(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  store(r3, r4) if p1
  store(r3, r5) if p2
  halt
}
)");
  // Same (unknown) address but disjoint guards: never both execute.
  EXPECT_FALSE(hasAnyEdge(*Bu.DG, 1, 2));
}

TEST(DepGraphTest, ControlDependenceOnStores) {
  Built Bu = build(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  store(r3, r4)
  store(r5, r6) if p2
  halt
block @X:
  halt
}
)");
  // The unguarded store is control dependent on the branch; the store
  // guarded by the complementary (disjoint) predicate is not.
  EXPECT_TRUE(hasEdge(*Bu.DG, 2, 3, DepKind::Control));
  EXPECT_FALSE(hasEdge(*Bu.DG, 2, 4, DepKind::Control));
}

TEST(DepGraphTest, SpeculationRules) {
  const char *Src = R"(
func @f {
  observable r7
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r5 = add(r1, 1)
  r7 = add(r1, 2)
  halt
block @X:
  r9 = add(r7, 1)
  store(r9, r9)
  halt
}
)";
  // With speculation: r5 (dead at @X) may hoist; r7 (live at @X) may not.
  Built Spec = build(Src, /*AllowSpeculation=*/true);
  EXPECT_FALSE(hasAnyEdge(*Spec.DG, 2, 3));
  EXPECT_TRUE(hasEdge(*Spec.DG, 2, 4, DepKind::Control));
  // Without speculation both are pinned below the branch.
  Built NoSpec = build(Src, /*AllowSpeculation=*/false);
  EXPECT_TRUE(hasEdge(*NoSpec.DG, 2, 3, DepKind::Control));
  EXPECT_TRUE(hasEdge(*NoSpec.DG, 2, 4, DepKind::Control));
}

TEST(DepGraphTest, BranchOverlapRules) {
  Built Bu = build(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  p3:un = cmpp.eq(r2, 0) if p2
  p5:un = cmpp.eq(r3, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  b2 = pbr(@X)
  branch(p3, b2)
  b3 = pbr(@X)
  branch(p5, b3)
  halt
block @X:
  halt
}
)");
  // Branches 4 and 6 have provably disjoint taken predicates (p3 implies
  // !p1): they may overlap. Branch 8's predicate is unrelated: ordered.
  EXPECT_FALSE(hasAnyEdge(*Bu.DG, 4, 6));
  EXPECT_TRUE(hasEdge(*Bu.DG, 4, 8, DepKind::Control));
  EXPECT_TRUE(hasEdge(*Bu.DG, 6, 8, DepKind::Control));
}

TEST(DepGraphTest, TransitiveSuccessors) {
  Built Bu = build(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  r5 = add(r1, 1) if p2
  r6 = add(r5, 1)
  store(r6, r6)
  r7 = add(r1, 9)
  halt
}
)");
  std::vector<uint32_t> Succ = Bu.DG->transitiveSuccessors(0);
  // Chain: cmpp -> (guard) add r5 -> add r6 -> store. r7 is independent.
  EXPECT_NE(std::find(Succ.begin(), Succ.end(), 1u), Succ.end());
  EXPECT_NE(std::find(Succ.begin(), Succ.end(), 2u), Succ.end());
  EXPECT_NE(std::find(Succ.begin(), Succ.end(), 3u), Succ.end());
  EXPECT_EQ(std::find(Succ.begin(), Succ.end(), 4u), Succ.end());
}

TEST(DepGraphTest, DepthsAndHeightsAreConsistent) {
  Built Bu = build(R"(
func @f {
block @A:
  r1 = load(r9)
  r2 = add(r1, 2)
  r3 = add(r2, 1)
  halt
}
)");
  std::vector<int> D = Bu.DG->depths();
  std::vector<int> H = Bu.DG->heights();
  int CP = Bu.DG->criticalPathLength();
  for (size_t I = 0; I < D.size(); ++I)
    EXPECT_LE(D[I] + H[I], CP) << "node " << I;
  // The chain head has the full height.
  EXPECT_EQ(H[0], CP);
}

} // namespace

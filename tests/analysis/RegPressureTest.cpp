//===- tests/analysis/RegPressureTest.cpp - Register pressure tests -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/RegPressure.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "pipeline/CompilerPipeline.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(RegPressureTest, SerialChainHasLowPressure) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r4
block @A:
  r1 = mov(1)
  r2 = add(r1, 1)
  r3 = add(r2, 1)
  r4 = add(r3, 1)
  halt
}
)");
  PressureReport P = measureFunctionPressure(*F);
  // A pure chain keeps at most one value (plus its consumer's input)
  // alive.
  EXPECT_LE(P.gpr(), 2u);
}

TEST(RegPressureTest, ParallelValuesRaisePressure) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r9
block @A:
  r1 = mov(1)
  r2 = mov(2)
  r3 = mov(3)
  r4 = mov(4)
  r5 = add(r1, r2)
  r6 = add(r3, r4)
  r9 = add(r5, r6)
  halt
}
)");
  PressureReport P = measureFunctionPressure(*F);
  EXPECT_GE(P.gpr(), 4u);
}

TEST(RegPressureTest, PredicatePressureCounted) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  p3:un, p4:uc = cmpp.eq(r2, 0)
  store(r3, 1) if p1
  store(r3, 2) if p2
  store(r3, 3) if p3
  store(r3, 4) if p4
  halt
}
)");
  PressureReport P = measureFunctionPressure(*F);
  EXPECT_GE(P.pred(), 4u);
}

TEST(RegPressureTest, ControlCPRPressureEffect) {
  // A real second-order cost of control CPR the paper does not quantify:
  // on-trace values (the loaded characters feeding the split stores after
  // the bypass) stay live across the whole CPR block, so GPR pressure
  // grows roughly with the CPR block length -- here from ~8 to ~17 at
  // unroll 8. Predicate pressure grows by a couple of FRP registers.
  // The test pins the scale of both effects.
  KernelProgram P = buildStrcpyKernel(8, 2048, 5);
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Base, Prof, CPROptions());

  PressureReport Before = measureFunctionPressure(*Base);
  PressureReport After = measureFunctionPressure(*Treated);
  EXPECT_GT(After.gpr(), Before.gpr())
      << "split operands live across the CPR block";
  EXPECT_LE(After.gpr(), Before.gpr() + 2 * 8) << "bounded by block size";
  EXPECT_LE(After.pred(), Before.pred() + 6);
  EXPECT_GE(After.pred(), Before.pred())
      << "the on-trace FRP adds at least one live predicate";
}

} // namespace

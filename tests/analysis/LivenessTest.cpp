//===- tests/analysis/LivenessTest.cpp - Liveness analysis tests ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/PQS.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(LivenessTest, StraightLineUseDef) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r9
block @A:
  r1 = mov(5)
  r2 = add(r1, 1)
  r9 = add(r2, 1)
  halt
}
)");
  Liveness LV(*F);
  // Nothing is live into the entry (r1/r2 defined before use, r9 is the
  // observable computed inside).
  EXPECT_FALSE(LV.liveIn(F->block(0).getId()).count(Reg::gpr(1)));
  EXPECT_FALSE(LV.liveIn(F->block(0).getId()).count(Reg::gpr(2)));
}

TEST(LivenessTest, UseBeforeDefIsLiveIn) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r2 = add(r1, 1)
  r1 = mov(0)
  halt
}
)");
  Liveness LV(*F);
  EXPECT_TRUE(LV.liveIn(F->block(0).getId()).count(Reg::gpr(1)));
}

TEST(LivenessTest, PredicatedDefDoesNotKill) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r1
block @A:
  r1 = mov(7) if p1
  halt
}
)");
  Liveness LV(*F);
  // The guarded mov may not execute; the incoming r1 can survive to the
  // observable read at halt.
  EXPECT_TRUE(LV.liveIn(F->block(0).getId()).count(Reg::gpr(1)));
}

TEST(LivenessTest, FrpGuardedDefKills) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r1
block @A:
  r1 = mov(7) if p1 frp
  halt
}
)");
  Liveness LV(*F);
  // A positional (FRP) guard is true whenever the op is reached, so the
  // definition kills.
  EXPECT_FALSE(LV.liveIn(F->block(0).getId()).count(Reg::gpr(1)));
}

TEST(LivenessTest, BranchTargetContributesLiveness) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r9
block @A:
  p1:un = cmpp.lt(r1, 5)
  b1 = pbr(@X)
  branch(p1, b1)
  r9 = mov(0)
  halt
block @X:
  r9 = add(r7, 1)
  halt
}
)");
  Liveness LV(*F);
  // r7 is read in @X, so it is live at A's exit branch and into A.
  EXPECT_TRUE(LV.liveIn(F->block(0).getId()).count(Reg::gpr(7)));
  const Block &A = F->block(0);
  RegSet AtExit = LV.liveAtExit(*F, A, 2);
  EXPECT_TRUE(AtExit.count(Reg::gpr(7)));
  EXPECT_FALSE(AtExit.count(Reg::gpr(9)));
}

TEST(LivenessTest, LoopCarriedValue) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r1
block @Loop:
  r1 = add(r1, 1)
  p1:un = cmpp.lt(r1, 100)
  b1 = pbr(@Loop)
  branch(p1, b1)
  halt
}
)");
  Liveness LV(*F);
  EXPECT_TRUE(LV.liveIn(F->block(0).getId()).count(Reg::gpr(1)));
}

TEST(PredicatedLivenessTest, LivenessUnderExitCondition) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r7 = mov(1)
  halt
block @X:
  r9 = add(r7, 1)
  store(r9, r9)
  halt
}
)");
  const Block &A = F->block(0);
  RegionPQS PQS(*F, A);
  Liveness LV(*F);
  PredicatedLiveness PLV(*F, A, PQS, LV);

  // Before the branch, r7 is live only under the taken condition (the
  // fall-through path kills it with an unguarded mov).
  BDD::NodeRef LiveR7 = PLV.liveBefore(2, Reg::gpr(7));
  BDD::NodeRef Taken = PQS.takenExpr(2);
  EXPECT_EQ(LiveR7, Taken);
  // After the kill point it is dead.
  EXPECT_EQ(PLV.liveAfter(3, Reg::gpr(7)), BDD::False);
}

TEST(PredicatedLivenessTest, PromotionQueryPattern) {
  // The exact query predicate speculation issues: dest live anywhere the
  // op would not have executed?
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  r5 = add(r1, 1) if p2
  r6 = add(r5, 1) if p2
  store(r6, r6) if p2
  halt
}
)");
  const Block &A = F->block(0);
  RegionPQS PQS(*F, A);
  Liveness LV(*F);
  PredicatedLiveness PLV(*F, A, PQS, LV);
  BDD &M = PQS.bdd();

  // r5 after op 1 is live only under p2 (read by op 2 guarded p2), which
  // is disjoint from !p2: promotion of op 1 is safe.
  BDD::NodeRef LiveR5 = PLV.liveAfter(1, Reg::gpr(5));
  BDD::NodeRef NotGuard = M.mkNot(PQS.guardExpr(1));
  EXPECT_TRUE(M.disjoint(LiveR5, NotGuard));
}

TEST(PredicatedLivenessTest, BranchTargetRegLiveOnlyWhenTaken) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  b1 = pbr(@X)
  p1:un = cmpp.eq(r1, 0)
  branch(p1, b1)
  halt
block @X:
  halt
}
)");
  const Block &A = F->block(0);
  RegionPQS PQS(*F, A);
  Liveness LV(*F);
  PredicatedLiveness PLV(*F, A, PQS, LV);
  // The BTR is live before the branch only under the taken condition.
  BDD::NodeRef LiveB = PLV.liveBefore(2, Reg::btr(1));
  EXPECT_EQ(LiveB, PQS.takenExpr(2));
}

} // namespace

//===- tests/analysis/BDDTest.cpp - BDD package tests ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/BDD.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(BDDTest, Terminals) {
  BDD M;
  EXPECT_TRUE(M.isFalse(BDD::False));
  EXPECT_TRUE(M.isTrue(BDD::True));
  EXPECT_EQ(M.mkNot(BDD::True), BDD::False);
  EXPECT_EQ(M.mkNot(BDD::False), BDD::True);
}

TEST(BDDTest, BasicAlgebra) {
  BDD M;
  BDD::NodeRef A = M.var(0), B = M.var(1);
  EXPECT_EQ(M.mkAnd(A, BDD::True), A);
  EXPECT_EQ(M.mkAnd(A, BDD::False), BDD::False);
  EXPECT_EQ(M.mkOr(A, BDD::False), A);
  EXPECT_EQ(M.mkOr(A, BDD::True), BDD::True);
  EXPECT_EQ(M.mkAnd(A, A), A);
  EXPECT_EQ(M.mkOr(A, A), A);
  EXPECT_EQ(M.mkAnd(A, M.mkNot(A)), BDD::False);
  EXPECT_EQ(M.mkOr(A, M.mkNot(A)), BDD::True);
  // Canonicity: structurally equal functions share a node.
  EXPECT_EQ(M.mkAnd(A, B), M.mkAnd(B, A));
  EXPECT_EQ(M.mkOr(A, B), M.mkOr(B, A));
  EXPECT_EQ(M.mkNot(M.mkNot(A)), A);
}

TEST(BDDTest, DeMorgan) {
  BDD M;
  BDD::NodeRef A = M.var(0), B = M.var(1);
  EXPECT_EQ(M.mkNot(M.mkAnd(A, B)), M.mkOr(M.mkNot(A), M.mkNot(B)));
  EXPECT_EQ(M.mkNot(M.mkOr(A, B)), M.mkAnd(M.mkNot(A), M.mkNot(B)));
}

TEST(BDDTest, DisjointAndImplies) {
  BDD M;
  BDD::NodeRef A = M.var(0), B = M.var(1);
  BDD::NodeRef AandB = M.mkAnd(A, B);
  BDD::NodeRef AandNotB = M.mkAnd(A, M.mkNot(B));

  EXPECT_TRUE(M.disjoint(AandB, AandNotB));
  EXPECT_FALSE(M.disjoint(A, B));
  EXPECT_TRUE(M.implies(AandB, A));
  EXPECT_TRUE(M.implies(AandB, B));
  EXPECT_FALSE(M.implies(A, AandB));
  EXPECT_TRUE(M.implies(BDD::False, A));
  EXPECT_TRUE(M.implies(A, BDD::True));
}

/// The FRP structure of an n-branch superblock: branch i's taken FRP is
/// c_i & !c_1 & ... & !c_{i-1}. All taken FRPs must be mutually disjoint,
/// and the fall-through FRP must be disjoint from each of them.
TEST(BDDTest, FrpChainMutualExclusion) {
  BDD M;
  constexpr int N = 12;
  std::vector<BDD::NodeRef> Taken;
  BDD::NodeRef Path = BDD::True;
  for (int I = 0; I < N; ++I) {
    BDD::NodeRef C = M.var(static_cast<uint32_t>(I));
    Taken.push_back(M.mkAnd(Path, C));
    Path = M.mkAnd(Path, M.mkNot(C));
  }
  for (int I = 0; I < N; ++I) {
    EXPECT_TRUE(M.disjoint(Taken[static_cast<size_t>(I)], Path));
    for (int J = I + 1; J < N; ++J)
      EXPECT_TRUE(M.disjoint(Taken[static_cast<size_t>(I)],
                             Taken[static_cast<size_t>(J)]));
  }
  // The disjunction of all exits equals the negation of the on-trace FRP.
  BDD::NodeRef AnyExit = BDD::False;
  for (BDD::NodeRef T : Taken)
    AnyExit = M.mkOr(AnyExit, T);
  EXPECT_EQ(AnyExit, M.mkNot(Path));
}

/// Random expression pairs: BDD queries must agree with brute-force
/// truth-table evaluation.
class BDDRandomTest : public ::testing::TestWithParam<uint64_t> {};

/// A tiny random expression tree evaluator over `NVars` variables.
struct RandomExpr {
  enum Kind { Var, Not, And, Or } K;
  int A = -1, B = -1; // child indices or variable index
};

int buildRandom(std::vector<RandomExpr> &Pool, RNG &Rng, int Depth,
                int NVars) {
  RandomExpr E;
  if (Depth == 0 || Rng.nextBelow(4) == 0) {
    E.K = RandomExpr::Var;
    E.A = static_cast<int>(Rng.nextBelow(static_cast<uint64_t>(NVars)));
  } else {
    switch (Rng.nextBelow(3)) {
    case 0:
      E.K = RandomExpr::Not;
      E.A = buildRandom(Pool, Rng, Depth - 1, NVars);
      break;
    case 1:
      E.K = RandomExpr::And;
      E.A = buildRandom(Pool, Rng, Depth - 1, NVars);
      E.B = buildRandom(Pool, Rng, Depth - 1, NVars);
      break;
    default:
      E.K = RandomExpr::Or;
      E.A = buildRandom(Pool, Rng, Depth - 1, NVars);
      E.B = buildRandom(Pool, Rng, Depth - 1, NVars);
      break;
    }
  }
  Pool.push_back(E);
  return static_cast<int>(Pool.size()) - 1;
}

bool evalExpr(const std::vector<RandomExpr> &Pool, int Idx, unsigned Assign) {
  const RandomExpr &E = Pool[static_cast<size_t>(Idx)];
  switch (E.K) {
  case RandomExpr::Var:
    return (Assign >> E.A) & 1;
  case RandomExpr::Not:
    return !evalExpr(Pool, E.A, Assign);
  case RandomExpr::And:
    return evalExpr(Pool, E.A, Assign) && evalExpr(Pool, E.B, Assign);
  case RandomExpr::Or:
    return evalExpr(Pool, E.A, Assign) || evalExpr(Pool, E.B, Assign);
  }
  return false;
}

BDD::NodeRef toBdd(BDD &M, const std::vector<RandomExpr> &Pool, int Idx) {
  const RandomExpr &E = Pool[static_cast<size_t>(Idx)];
  switch (E.K) {
  case RandomExpr::Var:
    return M.var(static_cast<uint32_t>(E.A));
  case RandomExpr::Not:
    return M.mkNot(toBdd(M, Pool, E.A));
  case RandomExpr::And:
    return M.mkAnd(toBdd(M, Pool, E.A), toBdd(M, Pool, E.B));
  case RandomExpr::Or:
    return M.mkOr(toBdd(M, Pool, E.A), toBdd(M, Pool, E.B));
  }
  return BDD::Invalid;
}

TEST_P(BDDRandomTest, AgreesWithTruthTables) {
  RNG Rng(GetParam());
  constexpr int NVars = 6;
  BDD M;
  std::vector<RandomExpr> Pool;
  int F = buildRandom(Pool, Rng, 5, NVars);
  int G = buildRandom(Pool, Rng, 5, NVars);
  BDD::NodeRef FB = toBdd(M, Pool, F);
  BDD::NodeRef GB = toBdd(M, Pool, G);

  bool AnyBoth = false, FImpliesG = true;
  for (unsigned Assign = 0; Assign < (1u << NVars); ++Assign) {
    bool FV = evalExpr(Pool, F, Assign);
    bool GV = evalExpr(Pool, G, Assign);
    AnyBoth |= FV && GV;
    if (FV && !GV)
      FImpliesG = false;
  }
  EXPECT_EQ(M.disjoint(FB, GB), !AnyBoth);
  EXPECT_EQ(M.implies(FB, GB), FImpliesG);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BDDRandomTest,
                         ::testing::Range<uint64_t>(0, 40));

TEST(BDDTest, BudgetExhaustionIsConservative) {
  BDD M(/*MaxNodes=*/8); // tiny budget
  BDD::NodeRef F = BDD::True;
  for (uint32_t I = 0; I < 16; ++I) {
    BDD::NodeRef V = M.var(2 * I);
    BDD::NodeRef W = M.var(2 * I + 1);
    if (V == BDD::Invalid || W == BDD::Invalid) {
      F = BDD::Invalid;
      break;
    }
    F = M.mkAnd(F, M.mkOr(V, W));
    if (F == BDD::Invalid)
      break;
  }
  EXPECT_EQ(F, BDD::Invalid);
  // Queries on Invalid answer conservatively.
  EXPECT_FALSE(M.disjoint(F, BDD::True));
  EXPECT_FALSE(M.implies(F, BDD::False));
}

} // namespace

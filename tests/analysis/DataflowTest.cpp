//===- tests/analysis/DataflowTest.cpp - Dense dataflow solver units ------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The generic solver of analysis/Dataflow.h and its three in-tree
// clients: the dense register numbering, the forward/union reaching-def
// block analysis (including propagation around loop back edges), the
// forward/intersection definite-assignment analysis, and the
// predicate-partitioned write classification that feeds both.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "analysis/PQS.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

size_t layoutOf(const Function &F, const char *Name) {
  for (size_t L = 0; L < F.numBlocks(); ++L)
    if (F.block(L).getName() == Name)
      return L;
  ADD_FAILURE() << "no block named " << Name;
  return 0;
}

TEST(RegNumberingTest, DenseFirstAppearanceOrder) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r3 = add(r1, 1)
  r3 = sub(r3, r2)
  halt
}
)");
  RegNumbering N(*F);
  // First-appearance order, sources before defs within an op, no
  // duplicates, and no bit for the always-true predicate guard.
  EXPECT_EQ(N.size(), 3u);
  EXPECT_EQ(N.indexOf(Reg::gpr(1)), 0);
  EXPECT_EQ(N.indexOf(Reg::gpr(3)), 1);
  EXPECT_EQ(N.indexOf(Reg::gpr(2)), 2);
  EXPECT_EQ(N.indexOf(Reg::truePred()), -1);
  EXPECT_EQ(N.indexOf(Reg::gpr(9)), -1);
  for (size_t I = 0; I < N.size(); ++I)
    EXPECT_EQ(N.indexOf(N.regOf(I)), static_cast<int>(I));
}

TEST(ReachingDefBlocksTest, PropagatesAroundLoopBackEdge) {
  // @Loop defines r5 and branches back to itself: the def reaches
  // @Loop's own entry around the back edge, and @Exit's entry by fall
  // through. Nothing reaches the entry of @Loop from @Exit.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @Loop:
  r5 = add(r5, 1)
  p1:un = cmpp.lt(r5, 10)
  b1 = pbr(@Loop)
  branch(p1, b1)
block @Exit:
  r7 = mov(2)
  halt
}
)");
  RegNumbering N(*F);
  ReachingDefBlocks Reach(*F, N);
  size_t Loop = layoutOf(*F, "Loop"), Exit = layoutOf(*F, "Exit");
  EXPECT_TRUE(Reach.reachesEntry(Reg::gpr(5), Loop));
  EXPECT_TRUE(Reach.reachesEntry(Reg::gpr(5), Exit));
  // r7's only def is in @Exit, which nothing follows.
  EXPECT_FALSE(Reach.reachesEntry(Reg::gpr(7), Loop));
  EXPECT_FALSE(Reach.reachesEntry(Reg::gpr(7), Exit));
  // r1 is never defined at all.
  EXPECT_TRUE(Reach.hasAnyDef(Reg::gpr(5)));
  EXPECT_FALSE(Reach.hasAnyDef(Reg::gpr(1)));
}

TEST(DefiniteAssignmentTest, IntersectionOverDiamondPaths) {
  // Diamond: the left arm writes r3 and r4, the right arm only r4. At
  // the join only r4 is assigned on every path.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @E:
  p1:un = cmpp.lt(r1, 5)
  b1 = pbr(@Right)
  branch(p1, b1)
block @Left:
  r3 = mov(1)
  r4 = mov(1)
  p2 = mov(1)
  b2 = pbr(@Join)
  branch(p2, b2)
block @Right:
  r4 = mov(2)
block @Join:
  r6 = add(r4, 0)
  halt
}
)");
  RegNumbering N(*F);
  DefiniteAssignment DA(*F, N);
  size_t Join = layoutOf(*F, "Join");
  EXPECT_TRUE(DA.assignedAtEntry(Reg::gpr(4), Join));
  EXPECT_FALSE(DA.assignedAtEntry(Reg::gpr(3), Join));
  // Nothing is assigned at the function entry.
  EXPECT_FALSE(DA.assignedAtEntry(Reg::gpr(4), layoutOf(*F, "E")));
}

TEST(DefiniteAssignmentTest, GuardedWriteDoesNotCount) {
  // The write of r3 is guarded by a predicate that is not provably
  // true, so the read block cannot treat r3 as assigned.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.lt(r1, 5)
  r3 = mov(1) if p1
  r4 = mov(2)
block @B:
  r6 = add(r4, 0)
  halt
}
)");
  RegNumbering N(*F);
  DefiniteAssignment DA(*F, N);
  size_t B = layoutOf(*F, "B");
  EXPECT_FALSE(DA.assignedAtEntry(Reg::gpr(3), B));
  EXPECT_TRUE(DA.assignedAtEntry(Reg::gpr(4), B));
}

TEST(PredicatedWriteKindTest, PQSPartitionsGuardedWrites) {
  // p1 is constant-false (mov(0), never accumulated): a write under it
  // is Never. p2 comes from a compare: Maybe. Unguarded writes are
  // Always regardless of PQS.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1 = mov(0)
  p2:un = cmpp.lt(r1, 5)
  r3 = mov(1) if p1
  r4 = mov(2) if p2
  r5 = mov(3)
  halt
}
)");
  const Block &B = F->block(0);
  RegionPQS PQS(*F, B);
  auto KindAt = [&](size_t OpIdx) {
    const Operation &Op = B.ops()[OpIdx];
    return predicatedWriteKind(Op, Op.defs()[0], &PQS, OpIdx);
  };
  EXPECT_EQ(KindAt(2), WriteKind::Never);
  EXPECT_EQ(KindAt(3), WriteKind::Maybe);
  EXPECT_EQ(KindAt(4), WriteKind::Always);
  // Without PQS the classification is purely syntactic: any computed
  // guard is Maybe.
  const Operation &DeadMov = B.ops()[2];
  EXPECT_EQ(predicatedWriteKind(DeadMov, DeadMov.defs()[0], nullptr, 2),
            WriteKind::Maybe);
}

} // namespace

//===- tests/cpr/PropertyTest.cpp - Randomized transformation tests -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The project's strongest correctness evidence: generate random predicated
// superblock programs (random branch structures, biases, alias classes,
// if-converted counters, loop-carried registers), run FRP conversion +
// ICBM + DCE, and check observational equivalence against the original in
// the interpreter, plus structural invariants (irredundance, verifier
// cleanliness, schedule legality of the transformed code).
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"
#include "interp/Profiler.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "pipeline/CompilerPipeline.h"
#include "sched/ListScheduler.h"
#include "support/RNG.h"
#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

using cpr_test::makeRandomProgram;

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, TransformPreservesBehavior) {
  KernelProgram P = makeRandomProgram(GetParam());
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

  CPRResult CR;
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Base, Prof, CPROptions(), &CR);
  EXPECT_TRUE(verifyFunction(*Treated).empty());

  EquivResult E = checkEquivalence(*Base, *Treated, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << "seed " << GetParam() << ": " << E.Detail;
}

TEST_P(RandomProgramTest, TransformedCodeSchedulesLegally) {
  KernelProgram P = makeRandomProgram(GetParam());
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Base, Prof, CPROptions());

  Liveness LV(*Treated);
  for (const MachineDesc &MD : MachineDesc::paperModels()) {
    for (size_t BI = 0; BI < Treated->numBlocks(); ++BI) {
      const Block &B = Treated->block(BI);
      if (B.empty())
        continue;
      RegionPQS PQS(*Treated, B);
      DepGraph DG(*Treated, B, MD, PQS, LV);
      Schedule S = scheduleBlock(B, DG, MD);
      std::vector<std::string> Errors =
          checkScheduleLegality(B, DG, MD, S);
      EXPECT_TRUE(Errors.empty())
          << "seed " << GetParam() << " machine " << MD.getName()
          << " block @" << B.getName() << ": "
          << (Errors.empty() ? "" : Errors.front());
    }
  }
}

TEST_P(RandomProgramTest, IrredundanceHolds) {
  KernelProgram P = makeRandomProgram(GetParam());
  PipelineResult R = runPipeline(P);
  // ICBM's irredundance claim holds for the dominant path; entries that
  // leave through a taken exit re-execute a prefix in the compensation
  // block. Random programs here may draw nearly unbiased branches, so a
  // small dynamic overhead is tolerated; the hand kernels assert the
  // strict bound.
  EXPECT_LE(R.dynOpRatio(), 1.05) << "seed " << GetParam();
  if (R.CPR.CPRBlocksTransformed > 0) {
    EXPECT_LE(R.dynBranchRatio(), 1.0) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 60));

TEST(PropertyTest, TransformIsIdempotentOnTransformedCode) {
  // Running ICBM twice must keep the code correct (the second run may or
  // may not fire; either way behavior is preserved).
  KernelProgram P = makeRandomProgram(7);
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);
  std::unique_ptr<Function> Once = applyControlCPR(*Base, Prof,
                                                   CPROptions());
  Memory Mem2 = P.InitMem;
  ProfileData Prof2 = profileRun(*Once, Mem2, P.InitRegs);
  std::unique_ptr<Function> Twice =
      applyControlCPR(*Once, Prof2, CPROptions());
  EquivResult E = checkEquivalence(*Base, *Twice, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

} // namespace

//===- tests/cpr/ControlCPRDriverTest.cpp - ICBM driver tests -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/ControlCPR.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/CompilerPipeline.h"
#include "workloads/SyntheticProgram.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(ControlCPRDriverTest, UntransformedRegionsAreRestored) {
  // A region with unbiased branches (exit-weight stops everything): the
  // driver must leave it byte-identical to the input (no stray FRP
  // conversion or speculation).
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r5 = add(r9, 1)
  p2:un = cmpp.eq(r2, 0)
  b2 = pbr(@X)
  branch(p2, b2)
  store(r5, r5)
  halt
block @X:
  halt
}
)");
  std::string Before = printFunction(*F);

  ProfileData Prof;
  for (const Operation &Op : F->block(0).ops())
    if (Op.isBranch()) {
      Prof.addBranchReached(Op.getId(), 100);
      Prof.addBranchTaken(Op.getId(), 50); // unbiased
    }
  CPROptions Opts;
  Opts.ExitWeightThreshold = 0.10;
  Opts.EnableTakenVariation = false;
  CPRResult R = runControlCPR(*F, Prof, Opts);
  EXPECT_EQ(R.CPRBlocksTransformed, 0u);
  EXPECT_EQ(printFunction(*F), Before);
}

TEST(ControlCPRDriverTest, MultiRegionFunctions) {
  // Several superblocks in one function: the driver transforms each
  // independently and the stats aggregate.
  SyntheticParams SP;
  SP.Superblocks = 3;
  SP.RungsPerSuperblock = 4;
  SP.FallThroughBias = 0.99;
  SP.Trips = 200;
  SP.Seed = 404;
  KernelProgram P = buildSyntheticProgram("multi", SP);
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

  CPRResult R = runControlCPR(*P.Func, Prof, CPROptions());
  EXPECT_GE(R.RegionsProcessed, 3u);
  EXPECT_GE(R.CPRBlocksTransformed, 3u);
  EXPECT_GE(R.BranchesCovered, 9u);

  EquivResult E = checkEquivalence(*Base, *P.Func, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

TEST(ControlCPRDriverTest, CompensationBlocksAreNotReprocessed) {
  // Two rounds of the driver must not explode: compensation blocks are
  // skipped and the second round's output still behaves identically.
  SyntheticParams SP;
  SP.Superblocks = 1;
  SP.RungsPerSuperblock = 5;
  SP.FallThroughBias = 0.99;
  SP.Trips = 100;
  SP.Seed = 405;
  KernelProgram P = buildSyntheticProgram("reproc", SP);
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

  runControlCPR(*P.Func, Prof, CPROptions());
  size_t BlocksAfterOne = P.Func->numBlocks();

  Memory Mem2 = P.InitMem;
  ProfileData Prof2 = profileRun(*P.Func, Mem2, P.InitRegs);
  runControlCPR(*P.Func, Prof2, CPROptions());
  // Compensation blocks were skipped (no compensation-of-compensation).
  for (size_t I = 0; I < P.Func->numBlocks(); ++I) {
    const std::string &Name = P.Func->block(I).getName();
    EXPECT_EQ(Name.find("_cmp"), Name.rfind("_cmp"))
        << "nested compensation block: " << Name;
  }
  (void)BlocksAfterOne;
  EquivResult E = checkEquivalence(*Base, *P.Func, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

TEST(ControlCPRDriverTest, StatsAreConsistent) {
  KernelProgram P = buildStrcpyKernel(8, 2048, 55);
  PipelineResult R = runPipeline(P);
  const CPRResult &C = R.CPR;
  // Stop-reason histogram covers every formed CPR block.
  unsigned StopSum = 0;
  for (unsigned S : C.StopReasons)
    StopSum += S;
  EXPECT_EQ(StopSum, C.CPRBlocksFormed);
  // Transformed blocks are a subset of formed ones; covered branches need
  // at least MinBranches per transformed block.
  EXPECT_LE(C.CPRBlocksTransformed, C.CPRBlocksFormed);
  EXPECT_GE(C.BranchesCovered, 2 * C.CPRBlocksTransformed);
  EXPECT_EQ(C.LookaheadsInserted, C.BranchesCovered)
      << "one lookahead per covered branch";
}

TEST(ControlCPRDriverTest, TrapNeverExecutes) {
  // The compensation-block trap canary: run a workload with frequent
  // off-trace entries and assert no trap fires (the suitability theorem
  // holds dynamically).
  KernelProgram P = buildStrcpyKernel(4, 9, 77); // short string: hot exits
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  std::unique_ptr<Function> T = applyControlCPR(*P.Func, Prof, CPROptions());
  Memory Mem2 = P.InitMem;
  RunResult R = interpret(*T, Mem2, P.InitRegs);
  EXPECT_TRUE(R.halted()) << R.ErrorMsg;
  EXPECT_NE(R.St, RunResult::Status::Trapped);
}

} // namespace

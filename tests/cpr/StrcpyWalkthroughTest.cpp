//===- tests/cpr/StrcpyWalkthroughTest.cpp - Paper Section 6 example ------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// Drives the paper's worked example (Figures 6-7): the unrolled strcpy
// superblock through FRP conversion, predicate speculation, match,
// restructure, off-trace motion, and DCE, asserting the structural
// properties the paper calls out at each stage and full observational
// equivalence at the end.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"
#include "cpr/ControlCPR.h"
#include "cpr/PredicateSpeculation.h"
#include "interp/Profiler.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pipeline/CompilerPipeline.h"
#include "regions/FRPConversion.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// Counts operations of \p Opc in \p B.
size_t countOps(const Block &B, Opcode Opc) {
  size_t N = 0;
  for (const Operation &Op : B.ops())
    if (Op.getOpcode() == Opc)
      ++N;
  return N;
}

int regionHeight(const Function &F, const Block &B) {
  RegionPQS PQS(F, B);
  Liveness LV(F);
  MachineDesc MD = MachineDesc::infinite();
  DepGraph DG(F, B, MD, PQS, LV);
  return DG.criticalPathLength();
}

TEST(StrcpyWalkthrough, BaselineShapeMatchesFigure6b) {
  KernelProgram P = buildStrcpyKernel(/*Unroll=*/4, /*StringLen=*/64);
  Block &Loop = *P.Func->blockByName("Loop");
  // Figure 6(b): four branches, four compares, four stores, four loads in
  // the unrolled loop body.
  EXPECT_EQ(countOps(Loop, Opcode::Branch), 4u);
  EXPECT_EQ(countOps(Loop, Opcode::Cmpp), 4u);
  EXPECT_EQ(countOps(Loop, Opcode::Store), 4u);
  EXPECT_EQ(countOps(Loop, Opcode::Load), 4u);
  EXPECT_EQ(countOps(Loop, Opcode::Pbr), 4u);
}

TEST(StrcpyWalkthrough, FrpConversionMakesBranchesDisjoint) {
  KernelProgram P = buildStrcpyKernel(4, 64);
  Function &F = *P.Func;
  Block &Loop = *F.blockByName("Loop");

  FRPConversionStats Stats = convertToFRP(F, Loop);
  verifyOrDie(F, "after FRP conversion");
  EXPECT_EQ(Stats.BranchesConverted, 4u);
  // The first three compares gain UC fall-through destinations; the final
  // (backedge) compare does not need one.
  EXPECT_EQ(Stats.CmppDestsAdded, 3u);

  // All branch predicates must now be pairwise disjoint.
  RegionPQS PQS(F, Loop);
  std::vector<size_t> BranchIdx;
  for (size_t I = 0; I < Loop.size(); ++I)
    if (Loop.ops()[I].isBranch())
      BranchIdx.push_back(I);
  ASSERT_EQ(BranchIdx.size(), 4u);
  for (size_t I = 0; I < BranchIdx.size(); ++I)
    for (size_t J = I + 1; J < BranchIdx.size(); ++J)
      EXPECT_TRUE(PQS.disjoint(PQS.takenExpr(BranchIdx[I]),
                               PQS.takenExpr(BranchIdx[J])))
          << "branches " << I << " and " << J << " not disjoint";
}

TEST(StrcpyWalkthrough, FrpPlusSpeculationPreservesBehavior) {
  KernelProgram P = buildStrcpyKernel(4, 128);
  std::unique_ptr<Function> Baseline = P.Func->clone();
  Function &F = *P.Func;
  Block &Loop = *F.blockByName("Loop");

  convertToFRP(F, Loop);
  SpeculationStats SS = speculatePredicates(F, Loop);
  verifyOrDie(F, "after speculation");
  EXPECT_GT(SS.Promoted, 0u);

  EquivResult E = checkEquivalence(*Baseline, F, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

TEST(StrcpyWalkthrough, SpeculationKeepsStoresGuarded) {
  KernelProgram P = buildStrcpyKernel(4, 64);
  Function &F = *P.Func;
  Block &Loop = *F.blockByName("Loop");
  convertToFRP(F, Loop);
  speculatePredicates(F, Loop);
  // The paper's example: stores dependent on prior branches keep (are
  // demoted back to) their fall-through predicates; address arithmetic
  // and loads are promoted to true.
  size_t GuardedStores = 0, UnguardedLoads = 0;
  for (const Operation &Op : Loop.ops()) {
    if (Op.isStore() && !Op.getGuard().isTruePred())
      ++GuardedStores;
    if (Op.isLoad() && Op.getGuard().isTruePred())
      ++UnguardedLoads;
  }
  EXPECT_EQ(GuardedStores, 3u); // stores 2..4 of the unrolled body
  EXPECT_EQ(UnguardedLoads, 4u);
}

TEST(StrcpyWalkthrough, MatchFormsExpectedBlocks) {
  KernelProgram P = buildStrcpyKernel(4, 4096);
  Function &F = *P.Func;
  Block &Loop = *F.blockByName("Loop");

  Memory Mem = P.InitMem;
  ProfileData Profile = profileRun(F, Mem, P.InitRegs);

  convertToFRP(F, Loop);
  speculatePredicates(F, Loop);

  CPROptions Opts;
  std::vector<CPRBlockInfo> Blocks = matchCPRBlocks(F, Loop, Profile, Opts);
  ASSERT_FALSE(Blocks.empty());

  // With a long string the three early-exit branches are rarely taken and
  // the backedge is predominantly taken: match should cover all four
  // branches with one likely-taken CPR block.
  EXPECT_EQ(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0].size(), 4u);
  EXPECT_TRUE(Blocks[0].TakenVariation);
  EXPECT_TRUE(Blocks[0].Transformable);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::PredictTaken);
}

TEST(StrcpyWalkthrough, AliasedStoresBreakSeparability) {
  // Section 5.2 / Section 6: if the compiler cannot prove the copied-to
  // array distinct from the copied-from array, the load feeding the next
  // compare depends on the previous store and separability must fail.
  KernelProgram P = buildStrcpyKernel(4, 4096);
  Function &F = *P.Func;
  Block &Loop = *F.blockByName("Loop");
  // Force all memory into one alias class.
  for (Operation &Op : Loop.ops())
    if (opcodeIsMemory(Op.getOpcode()))
      Op.setAliasClass(0);

  Memory Mem = P.InitMem;
  ProfileData Profile = profileRun(F, Mem, P.InitRegs);
  convertToFRP(F, Loop);
  speculatePredicates(F, Loop);

  CPROptions Opts;
  std::vector<CPRBlockInfo> Blocks = matchCPRBlocks(F, Loop, Profile, Opts);
  ASSERT_FALSE(Blocks.empty());
  // No CPR block may span a store -> load dependence: every multi-branch
  // growth attempt stops at separability.
  for (const CPRBlockInfo &Info : Blocks)
    EXPECT_LE(Info.size(), 1u) << "separability failed to stop growth";
  bool SawSeparabilityStop = false;
  for (const CPRBlockInfo &Info : Blocks)
    if (Info.StopReason == MatchStopReason::Separability)
      SawSeparabilityStop = true;
  EXPECT_TRUE(SawSeparabilityStop);
}

TEST(StrcpyWalkthrough, FullTransformIsEquivalentAndIrredundant) {
  for (unsigned Unroll : {2u, 4u, 8u, 16u}) {
    SCOPED_TRACE("unroll " + std::to_string(Unroll));
    KernelProgram P = buildStrcpyKernel(Unroll, 2048);
    PipelineOptions Opts;
    PipelineResult R = runPipeline(P, Opts); // aborts on non-equivalence

    // ICBM must fire.
    EXPECT_GE(R.CPR.CPRBlocksTransformed, 1u);

    // Irredundance: the dynamic operation count must not grow (the paper's
    // central claim for ICBM), and dynamic branches must drop sharply.
    EXPECT_LE(R.dynOpRatio(), 1.001);
    EXPECT_LT(R.dynBranchRatio(), 0.7);

    // Static code grows (compensation blocks) but stays bounded.
    EXPECT_GE(R.staticOpRatio(), 1.0);
    EXPECT_LT(R.staticOpRatio(), 2.0);
  }
}

TEST(StrcpyWalkthrough, HeightIsReduced) {
  KernelProgram P = buildStrcpyKernel(4, 4096);
  std::unique_ptr<Function> Baseline = P.Func->clone();

  Memory Mem = P.InitMem;
  ProfileData Profile = profileRun(*Baseline, Mem, P.InitRegs);
  CPROptions Opts;
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Baseline, Profile, Opts);

  int HBase = regionHeight(*Baseline, *Baseline->blockByName("Loop"));
  int HTreated = regionHeight(*Treated, *Treated->blockByName("Loop"));
  // Paper Section 6: dependence height through the loop drops (8 -> 7 for
  // their latencies; the shape, not the absolute value, is asserted).
  EXPECT_LT(HTreated, HBase);
}

TEST(StrcpyWalkthrough, TransformedOnTraceHasOneExitBranchPerCPRBlock) {
  KernelProgram P = buildStrcpyKernel(4, 4096);
  std::unique_ptr<Function> Baseline = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Profile = profileRun(*Baseline, Mem, P.InitRegs);
  CPRResult CR;
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Baseline, Profile, CPROptions(), &CR);

  // One likely-taken CPR block covering all four branches: the on-trace
  // loop body ends with a single (bypass = backedge) branch.
  ASSERT_EQ(CR.CPRBlocksTransformed, 1u);
  EXPECT_EQ(CR.TakenVariants, 1u);
  const Block &Loop = *Treated->blockByName("Loop");
  // On-trace = ops up to and including the bypass branch. The taken
  // variation keeps the original branches in the tail; count branches
  // before the first branch (the bypass) to check the on-trace region.
  size_t FirstBranch = 0;
  while (FirstBranch < Loop.size() && !Loop.ops()[FirstBranch].isBranch())
    ++FirstBranch;
  ASSERT_LT(FirstBranch, Loop.size());
  // Everything before the bypass is branch-free on-trace code.
  for (size_t I = 0; I < FirstBranch; ++I)
    EXPECT_FALSE(Loop.ops()[I].isBranch());
}

} // namespace

//===- tests/cpr/TransactionTest.cpp - Per-region rollback ----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/RegionTransaction.h"

#include "cpr/ControlCPR.h"
#include "fuzz/Generator.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "support/FaultInjector.h"
#include "workloads/Kernels.h"
#include "workloads/SyntheticProgram.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

std::unique_ptr<Function> twoBlockFunc() {
  return parseFunctionOrDie(R"(
func @t {
block @A:
  r1 = add(r2, 1)
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@B)
  branch(p1, b1)
  halt
block @B:
  r3 = add(r1, 2)
  halt
}
)");
}

TEST(RegionTransactionTest, RollbackRestoresRegionAndRemovesBlocks) {
  std::unique_ptr<Function> F = twoBlockFunc();
  std::string Before = printFunction(*F);
  size_t BlocksBefore = F->numBlocks();

  RegionTransaction Txn(*F, F->block(0).getId());
  // Mutate the region and append a block, as restructure would.
  F->block(0).ops().clear();
  Block &Extra = F->addBlock("A_cmp_test");
  Extra.setCompensation(true);
  ASSERT_EQ(F->numBlocks(), BlocksBefore + 1);

  EXPECT_FALSE(Txn.rolledBack());
  unsigned Removed = Txn.rollback();
  EXPECT_TRUE(Txn.rolledBack());
  EXPECT_EQ(Removed, 1u);
  EXPECT_EQ(F->numBlocks(), BlocksBefore);
  EXPECT_EQ(printFunction(*F), Before);
}

TEST(RegionTransactionTest, RollbackIsIdempotent) {
  std::unique_ptr<Function> F = twoBlockFunc();
  std::string Before = printFunction(*F);
  RegionTransaction Txn(*F, F->block(0).getId());
  F->block(0).ops().pop_back();
  Txn.rollback();
  EXPECT_EQ(Txn.rollback(), 0u); // second rollback is a no-op
  EXPECT_EQ(printFunction(*F), Before);
}

TEST(RegionTransactionTest, RollbackIsSurgical) {
  // Only the transaction's region is restored; edits to other blocks
  // (another region's committed treatment) survive.
  std::unique_ptr<Function> F = twoBlockFunc();
  RegionTransaction Txn(*F, F->block(0).getId());
  F->block(0).ops().clear();
  Operation KeepMe = F->makeOp(Opcode::Halt);
  F->block(1).ops().push_back(std::move(KeepMe));
  size_t OtherSize = F->block(1).size();

  Txn.rollback();
  EXPECT_FALSE(F->block(0).empty());
  EXPECT_EQ(F->block(1).size(), OtherSize);
}

TEST(RegionTransactionTest, VerifyRejectsBrokenIR) {
  std::unique_ptr<Function> F = twoBlockFunc();
  RegionTransaction Txn(*F, F->block(0).getId());
  Status Ok = Txn.verify("unit test");
  EXPECT_TRUE(Ok.ok());

  // Break the region: an arithmetic op with a missing source.
  F->block(0).ops().clear();
  Operation Bad = F->makeOp(Opcode::Add);
  Bad.addDef(Reg(RegClass::GPR, 9));
  F->block(0).ops().push_back(std::move(Bad));
  Status S = Txn.verify("unit test");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.diagnostic().Code, DiagCode::VerifyFailed);
  EXPECT_NE(S.diagnostic().Message.find("unit test"), std::string::npos);
  Txn.rollback();
  EXPECT_TRUE(Txn.verify("after rollback").ok());
}

TEST(RegionTransactionTest, InjectedVerifyFault) {
  std::unique_ptr<Function> F = twoBlockFunc();
  RegionTransaction Txn(*F, F->block(0).getId());
  fault::ScopedFault Armed("ir.verify", 1);
  Status S = Txn.verify("armed");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.diagnostic().Code, DiagCode::VerifyFailed);
  EXPECT_EQ(S.diagnostic().Site, "ir.verify");
}

/// Driver-level rollback: a single-CPR-block function whose transform is
/// made to fail must come back byte-identical to the input.
TEST(RegionTransactionTest, DriverRollbackIsByteIdentical) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @g {
block @A:
  r21 = load.m1(r1)
  p1:un, p2:uc = cmpp.eq(r21, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r22 = load.m1(r2)
  p3:un, p4:uc = cmpp.lt(r22, 5) if p2
  b2 = pbr(@X)
  branch(p3, b2)
  store.m2(r5, r22) if p4
  halt
block @X:
  halt
}
)");
  ProfileData Prof;
  for (const Operation &Op : F->block(0).ops())
    if (Op.isBranch()) {
      Prof.addBranchReached(Op.getId(), 100);
      Prof.addBranchTaken(Op.getId(), 2); // heavily biased fall-through
    }
  std::string Before = printFunction(*F);

  fault::ScopedFault Armed("cpr.offtrace.move", 1);
  CPRContext Ctx;
  Ctx.FailSafe = true;
  DiagnosticEngine Diags;
  Ctx.Diags = &Diags;
  CPRResult R = runControlCPR(*F, Prof, CPROptions(), Ctx);
  ASSERT_TRUE(fault::fired()) << "fixture stopped being transformable";
  EXPECT_GE(R.BlocksRolledBack, 1u);
  EXPECT_GE(R.RegionsRolledBack, 1u);
  EXPECT_EQ(R.CPRBlocksTransformed, 0u);
  EXPECT_EQ(printFunction(*F), Before);
  EXPECT_GE(Diags.errorCount(), 1u);   // the transform fault
  EXPECT_GE(Diags.count(DiagSeverity::Remark), 1u); // the rollback remark
}

/// Multi-region: one region's failure must not disturb the treatment of
/// the others, and the result stays equivalent to the baseline.
TEST(RegionTransactionTest, DriverRollbackLeavesOtherRegionsTreated) {
  SyntheticParams SP;
  SP.Superblocks = 3;
  SP.RungsPerSuperblock = 4;
  SP.FallThroughBias = 0.99;
  SP.Trips = 200;
  SP.Seed = 404;
  KernelProgram P = buildSyntheticProgram("rollback", SP);
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

  fault::ScopedFault Armed("cpr.restructure.plan", 1);
  CPRContext Ctx;
  Ctx.FailSafe = true;
  CPRResult R = runControlCPR(*P.Func, Prof, CPROptions(), Ctx);
  EXPECT_GE(R.BlocksRolledBack, 1u);
  EXPECT_GE(R.CPRBlocksTransformed, 1u) << "other regions stay treated";

  EquivResult E = checkEquivalence(*Base, *P.Func, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

/// The planted compensation-skip miscompile is verifier-clean, so only
/// the per-region equivalence re-check can catch it -- and must, turning
/// it into a rollback (docs/ROBUSTNESS.md). With the re-check off the
/// defect survives the pass, which is exactly what the differential
/// fuzzer's oracle then reports as a mismatch.
TEST(RegionTransactionTest, PlantedDefectCaughtByRegionOracle) {
  // The compensation site only exists on the fall-through variation, so
  // scan a fixed seed list of generated programs for one where the
  // armed defect both fires and observably miscompiles (deterministic:
  // the first qualifying seed is always the same).
  GeneratorConfig GC;
  KernelProgram P;
  std::unique_ptr<Function> Base;
  bool FoundCase = false;
  for (uint64_t Seed = 1; Seed <= 32 && !FoundCase; ++Seed) {
    P = generateProgram(Seed, GC);
    Base = P.Func->clone();
    Memory Mem = P.InitMem;
    ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

    // With the re-check OFF the armed defect must survive as a
    // miscompile (the final oracle run diverges).
    std::unique_ptr<Function> T = Base->clone();
    fault::ScopedFault Armed("cpr.restructure.compensation", 1);
    CPRContext Ctx;
    Ctx.FailSafe = true;
    CPRResult R = runControlCPR(*T, Prof, CPROptions(), Ctx);
    if (!fault::fired())
      continue;
    EXPECT_EQ(R.BlocksRolledBack, 0u) << "verifier-clean defect";
    EquivResult E = checkEquivalence(*Base, *T, P.InitMem, P.InitRegs);
    FoundCase = !E.Equivalent;
  }
  ASSERT_TRUE(FoundCase)
      << "no generated case made the planted defect observable";
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

  // With the re-check ON the same defect becomes a per-region rollback
  // and the output stays baseline-equivalent.
  {
    std::unique_ptr<Function> T = Base->clone();
    fault::ScopedFault Armed("cpr.restructure.compensation", 1);
    CPRContext Ctx;
    Ctx.FailSafe = true;
    DiagnosticEngine Diags;
    Ctx.Diags = &Diags;
    Ctx.RegionOracle = [&](const Function &Cand) -> Status {
      EquivResult E = checkEquivalence(*Base, Cand, P.InitMem, P.InitRegs);
      if (!E.Equivalent)
        return Status::error(DiagCode::OracleMismatch, E.Detail,
                             "interp.oracle");
      return Status::success();
    };
    CPRResult R = runControlCPR(*T, Prof, CPROptions(), Ctx);
    ASSERT_TRUE(fault::fired());
    EXPECT_GE(R.BlocksRolledBack, 1u);
    EquivResult E = checkEquivalence(*Base, *T, P.InitMem, P.InitRegs);
    EXPECT_TRUE(E.Equivalent) << E.Detail;
    EXPECT_GE(Diags.errorCount(), 1u);
  }
}

/// Budget exhaustion is an ordinary diagnostic: regions past the budget
/// are left untreated, everything before it stays treated, and the
/// result still runs.
TEST(RegionTransactionTest, TransformBudgetDegradesGracefully) {
  SyntheticParams SP;
  SP.Superblocks = 3;
  SP.RungsPerSuperblock = 4;
  SP.FallThroughBias = 0.99;
  SP.Trips = 150;
  SP.Seed = 7;
  KernelProgram P = buildSyntheticProgram("budget", SP);
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*Base, Mem, P.InitRegs);

  Budget Limit;
  Limit.MaxSteps = 1; // one CPR-block transform allowed
  BudgetTracker Tracker(Limit);
  CPRContext Ctx;
  Ctx.FailSafe = true;
  Ctx.Budget = &Tracker;
  DiagnosticEngine Diags;
  Ctx.Diags = &Diags;
  CPRResult R = runControlCPR(*P.Func, Prof, CPROptions(), Ctx);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_EQ(R.CPRBlocksTransformed, 1u) << "budget of 1 grants 1 transform";
  EXPECT_GE(R.RegionsSkippedBudget, 1u);
  EXPECT_GE(Diags.count(DiagSeverity::Warning), 1u);

  EquivResult E = checkEquivalence(*Base, *P.Func, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

} // namespace

//===- tests/cpr/SpeculationTest.cpp - Predicate speculation tests --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/PredicateSpeculation.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(SpeculationTest, PromotesDeadDestinationChains) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r5 = add(r9, 1) if p2 frp
  r6 = load.m1(r5) if p2 frp
  p3:un = cmpp.eq(r6, 0) if p2 frp
  b2 = pbr(@X)
  branch(p3, b2)
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  SpeculationStats S = speculatePredicates(*F, A);
  EXPECT_GE(S.Promoted, 2u);
  // The address add and the load feed the next compare: promoted to T.
  EXPECT_TRUE(A.ops()[3].getGuard().isTruePred()); // add
  EXPECT_TRUE(A.ops()[4].getGuard().isTruePred()); // load
}

TEST(SpeculationTest, NeverPromotesStoresOrCompares) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  store(r9, 7) if p2 frp
  p3:un = cmpp.eq(r2, 0) if p2 frp
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  speculatePredicates(*F, A);
  EXPECT_FALSE(A.ops()[3].getGuard().isTruePred()); // store keeps guard
  EXPECT_FALSE(A.ops()[4].getGuard().isTruePred()); // cmpp keeps guard
}

TEST(SpeculationTest, RejectsPromotionWhenDestLiveAtExit) {
  // r5 is read at the branch target: promoting the guarded definition
  // would clobber the value the exit path observes once ICBM removes the
  // branch from above it.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r5 = add(r5, 1) if p2 frp
  p3:un = cmpp.eq(r5, 9) if p2 frp
  b2 = pbr(@X)
  branch(p3, b2)
  halt
block @X:
  store(r5, r5)
  halt
}
)");
  Block &A = F->block(0);
  speculatePredicates(*F, A);
  EXPECT_FALSE(A.ops()[3].getGuard().isTruePred())
      << "r5 is live at @X; promotion must be rejected";
}

TEST(SpeculationTest, RejectsPromotionOfIfConvertedUpdate) {
  // A counter update guarded by a *taken* predicate: its destination is
  // live on the fall-through path, so promotion would overwrite it.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r5
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  r5 = add(r5, 1) if p1
  b1 = pbr(@X)
  branch(p1, b1)
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  speculatePredicates(*F, A);
  EXPECT_FALSE(A.ops()[1].getGuard().isTruePred());
}

TEST(SpeculationTest, DemotionRestoresUselessPromotion) {
  // The paper's demotion example: a value chained behind its own guard's
  // compare gains nothing from promotion (depth already reaches past the
  // guard availability) and is demoted back -- provided it does not feed
  // a later branch-controlling compare.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r6 = load.m1(r1)
  p1:un, p2:uc = cmpp.eq(r6, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r7 = mul(r6, r6) if p2 frp
  r8 = mul(r7, r7) if p2 frp
  store.m2(r9, r8) if p2 frp
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  SpeculationStats S = speculatePredicates(*F, A);
  // The second multiply sits deep enough that its guard is free; demotion
  // restores it.
  EXPECT_GE(S.Demoted, 1u);
  EXPECT_FALSE(A.ops()[5].getGuard().isTruePred());
}

TEST(SpeculationTest, SpeculationPreservesBehavior) {
  const char *Src = R"(
func @f {
  observable r5
block @A:
  r5 = mov(0)
  r6 = load.m1(r1)
  p1:un, p2:uc = cmpp.eq(r6, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r7 = add(r6, 3) if p2 frp
  r8 = load.m1(r7) if p2 frp
  p3:un, p4:uc = cmpp.eq(r8, 0) if p2 frp
  b2 = pbr(@X)
  branch(p3, b2)
  r5 = add(r7, r8) if p4 frp
  halt
block @X:
  r5 = mov(99)
  halt
}
)";
  for (int64_t V1 : {0, 5})
    for (int64_t V2 : {0, 7}) {
      std::unique_ptr<Function> Base = parseFunctionOrDie(Src);
      std::unique_ptr<Function> Spec = parseFunctionOrDie(Src);
      speculatePredicates(*Spec, Spec->block(0));
      Memory Mem;
      Mem.store(1000, V1);
      Mem.store(1000 + V1 + 3, V2);
      EquivResult E = checkEquivalence(*Base, *Spec, Mem,
                                       {{Reg::gpr(1), 1000}});
      EXPECT_TRUE(E.Equivalent) << V1 << "," << V2 << ": " << E.Detail;
    }
}

} // namespace

//===- tests/cpr/RandomProgram.h - Shared random program generator --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// Shared between the property tests and debugging tools.
//
//===----------------------------------------------------------------------===//

#ifndef TESTS_CPR_RANDOMPROGRAM_H
#define TESTS_CPR_RANDOMPROGRAM_H

#include "interp/Profiler.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "workloads/Kernels.h"

namespace cpr_test {
using namespace cpr;

constexpr int64_t DataBase = 1'000'000;
constexpr int64_t OutBase = 2'000'000;

/// Generates a random, executable loop whose body is one superblock with
/// RungCount exit branches, assorted arithmetic, predicated (if-converted)
/// updates, loop-carried registers, and stores.
KernelProgram makeRandomProgram(uint64_t Seed) {
  RNG Rng(Seed);
  KernelProgram P;
  P.Func = std::make_unique<Function>("rand" + std::to_string(Seed));
  Function &F = *P.Func;

  unsigned Rungs = 2 + static_cast<unsigned>(Rng.nextBelow(6));
  unsigned Trips = 8 + static_cast<unsigned>(Rng.nextBelow(40));
  bool SingleAliasClass = Rng.nextBool(0.3);
  double Bias = 0.5 + 0.5 * Rng.nextDouble();

  Block &Entry = F.addBlock("Entry");
  Block &Loop = F.addBlock("Loop");
  Block &Off = F.addBlock("Off");
  Block &Exit = F.addBlock("Exit");

  Reg Trip = F.newReg(RegClass::GPR);
  Reg Cursor = F.newReg(RegClass::GPR);
  Reg Out = F.newReg(RegClass::GPR);
  Reg Acc = F.newReg(RegClass::GPR);
  Reg Carry = F.newReg(RegClass::GPR); // loop-carried scratch value
  F.observableRegs().push_back(Acc);
  F.observableRegs().push_back(Carry);

  IRBuilder B(F, Entry);
  B.emitMovTo(Acc, Operand::imm(1));
  B.emitMovTo(Carry, Operand::imm(2));

  B.setInsertBlock(Loop);
  uint8_t LoadClass = SingleAliasClass ? 0 : 1;
  uint8_t StoreClass = SingleAliasClass ? 0 : 2;
  for (unsigned J = 0; J < Rungs; ++J) {
    // Random arithmetic over the accumulator / carry.
    unsigned Ops = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    Reg V = Acc;
    for (unsigned Q = 0; Q < Ops; ++Q) {
      Opcode Opc = Rng.nextBool(0.5) ? Opcode::Add : Opcode::Xor;
      V = B.emitArith(Opc, Operand::reg(V),
                      Rng.nextBool(0.5)
                          ? Operand::reg(Carry)
                          : Operand::imm(Rng.nextRange(1, 9)));
    }
    if (Rng.nextBool(0.7))
      B.emitMovTo(Acc, Operand::reg(V));
    if (Rng.nextBool(0.4))
      B.emitMovTo(Carry, Operand::reg(V));

    // Occasional store.
    if (Rng.nextBool(0.7)) {
      Reg Slot = B.emitArith(Opcode::Add, Operand::reg(Out),
                             Operand::imm(static_cast<int64_t>(J)));
      B.emitStore(Slot, Operand::reg(V), StoreClass);
    }

    // Branch condition from data.
    Reg Addr = B.emitArith(Opcode::Add, Operand::reg(Cursor),
                           Operand::imm(static_cast<int64_t>(J)));
    Reg CondV = B.emitLoad(Addr, LoadClass);
    int64_t Thr = static_cast<int64_t>(100.0 * (1.0 - Bias));
    Reg PT = B.emitCmpp1(CompareCond::LT, Operand::reg(CondV),
                         Operand::imm(Thr), CmppAction::UN);
    // Occasional if-converted update guarded by the taken predicate.
    if (Rng.nextBool(0.5))
      B.emitArithTo(Acc, Opcode::Add, Operand::reg(Acc), Operand::imm(1),
                    PT);
    B.emitBranchTo(Off, PT);
  }
  B.emitArithTo(Cursor, Opcode::Add, Operand::reg(Cursor),
                Operand::imm(static_cast<int64_t>(Rungs)));
  B.emitArithTo(Out, Opcode::Add, Operand::reg(Out),
                Operand::imm(static_cast<int64_t>(Rungs)));
  B.emitArithTo(Trip, Opcode::Sub, Operand::reg(Trip), Operand::imm(1));
  Reg PMore = B.emitCmpp1(CompareCond::GT, Operand::reg(Trip),
                          Operand::imm(0), CmppAction::UN);
  B.emitBranchTo(Loop, PMore);
  B.emitBranchTo(Exit, Reg::truePred());

  // Off-trace path: touch the live state, then resume the loop.
  B.setInsertBlock(Off);
  B.emitArithTo(Acc, Opcode::Xor, Operand::reg(Acc), Operand::imm(85));
  Reg Slot = B.emitArith(Opcode::Add, Operand::reg(Out), Operand::imm(50));
  B.emitStore(Slot, Operand::reg(Acc), StoreClass);
  B.emitArithTo(Cursor, Opcode::Add, Operand::reg(Cursor),
                Operand::imm(static_cast<int64_t>(Rungs)));
  B.emitArithTo(Out, Opcode::Add, Operand::reg(Out),
                Operand::imm(static_cast<int64_t>(Rungs)));
  B.emitArithTo(Trip, Opcode::Sub, Operand::reg(Trip), Operand::imm(1));
  Reg PMore2 = B.emitCmpp1(CompareCond::GT, Operand::reg(Trip),
                           Operand::imm(0), CmppAction::UN);
  B.emitBranchTo(Loop, PMore2);
  B.emitBranchTo(Exit, Reg::truePred());

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "random program");

  for (size_t I = 0; I < static_cast<size_t>(Trips) * Rungs + 64; ++I)
    P.InitMem.store(DataBase + static_cast<int64_t>(I),
                    Rng.nextRange(0, 99));
  P.InitRegs = {{Trip, static_cast<int64_t>(Trips)},
                {Cursor, DataBase},
                {Out, OutBase}};
  return P;
}


} // namespace cpr_test

#endif // TESTS_CPR_RANDOMPROGRAM_H

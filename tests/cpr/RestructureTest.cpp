//===- tests/cpr/RestructureTest.cpp - ICBM restructure phase tests -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// Structural assertions on the code restructure emits: lookahead compares
// with AC/ON wired targets guarded by the root predicate, bypass branch +
// compensation block (fall-through variation), re-purposed final branch
// with inverted final compare sense (taken variation), and re-wiring of
// original predicates after the bypass.
//
//===----------------------------------------------------------------------===//

#include "cpr/Restructure.h"

#include "cpr/OffTraceMotion.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

const char *TwoBranchSrc = R"(
func @f {
block @A:
  r21 = load.m1(r1)
  p1:un, p2:uc = cmpp.eq(r21, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r22 = load.m1(r2)
  p3:un, p4:uc = cmpp.lt(r22, 5) if p2
  b2 = pbr(@X)
  branch(p3, b2)
  store.m2(r5, r22) if p4
  halt
block @X:
  halt
}
)";

CPRBlockInfo makeInfo(const Function &F, bool Taken) {
  CPRBlockInfo Info;
  const Block &B = F.block(0);
  for (size_t I = 0; I < B.size(); ++I) {
    if (!B.ops()[I].isBranch())
      continue;
    Info.BranchIds.push_back(B.ops()[I].getId());
    int C = B.lastDefBefore(B.ops()[I].branchPred(), I);
    Info.CmppIds.push_back(B.ops()[static_cast<size_t>(C)].getId());
  }
  Info.TakenVariation = Taken;
  Info.Transformable = true;
  return Info;
}

TEST(RestructureTest, FallThroughVariationStructure) {
  std::unique_ptr<Function> F = parseFunctionOrDie(TwoBranchSrc);
  Block &A = F->block(0);
  CPRBlockInfo Info = makeInfo(*F, /*Taken=*/false);
  Expected<RestructurePlan> PlanOr = restructureCPRBlock(*F, A, Info);
  ASSERT_TRUE(PlanOr.ok()) << PlanOr.diagnostic().str();
  RestructurePlan Plan = PlanOr.takeValue();
  verifyOrDie(*F, "after restructure");

  // Two lookaheads inserted, one per original compare.
  ASSERT_EQ(Plan.LookaheadIds.size(), 2u);
  for (size_t K = 0; K < 2; ++K) {
    int LI = A.indexOfOp(Plan.LookaheadIds[K]);
    ASSERT_GE(LI, 0);
    const Operation &Look = A.ops()[static_cast<size_t>(LI)];
    ASSERT_TRUE(Look.isCmpp());
    // AC target on the on-trace FRP, ON target on the off-trace FRP,
    // guarded by the root predicate.
    ASSERT_EQ(Look.defs().size(), 2u);
    EXPECT_EQ(Look.defs()[0].R, Plan.OnTracePred);
    EXPECT_EQ(Look.defs()[0].Act, CmppAction::AC);
    EXPECT_EQ(Look.defs()[1].R, Plan.OffTracePred);
    EXPECT_EQ(Look.defs()[1].Act, CmppAction::ON);
    EXPECT_EQ(Look.getGuard(), Plan.RootPred);
    // Each lookahead directly follows its original compare and mirrors
    // its condition and sources.
    const Operation &Orig = A.ops()[static_cast<size_t>(LI) - 1];
    EXPECT_EQ(Orig.getId(), Info.CmppIds[K]);
    EXPECT_EQ(Look.getCond(), Orig.getCond());
    EXPECT_EQ(Look.srcs(), Orig.srcs());
  }

  // Bypass branch after the final original branch, reading the off-trace
  // FRP and targeting the compensation block.
  int BI = A.indexOfOp(Plan.BypassBranchId);
  ASSERT_GE(BI, 0);
  const Operation &Bypass = A.ops()[static_cast<size_t>(BI)];
  EXPECT_EQ(Bypass.branchPred(), Plan.OffTracePred);
  ASSERT_NE(Plan.CompBlock, InvalidBlockId);
  const Block *Comp = F->blockById(Plan.CompBlock);
  ASSERT_NE(Comp, nullptr);
  EXPECT_TRUE(Comp->isCompensation());
  // Compensation block currently holds only the self-check trap.
  ASSERT_EQ(Comp->size(), 1u);
  EXPECT_EQ(Comp->ops()[0].getOpcode(), Opcode::Trap);

  // Re-wiring: the store after the bypass now reads the on-trace FRP.
  bool FoundStore = false;
  for (size_t I = static_cast<size_t>(BI) + 1; I < A.size(); ++I)
    if (A.ops()[I].isStore()) {
      FoundStore = true;
      EXPECT_EQ(A.ops()[I].getGuard(), Plan.OnTracePred);
    }
  EXPECT_TRUE(FoundStore);
}

TEST(RestructureTest, TakenVariationStructure) {
  std::unique_ptr<Function> F = parseFunctionOrDie(TwoBranchSrc);
  Block &A = F->block(0);
  CPRBlockInfo Info = makeInfo(*F, /*Taken=*/true);
  OpId FinalBranch = Info.BranchIds.back();
  Expected<RestructurePlan> PlanOr = restructureCPRBlock(*F, A, Info);
  ASSERT_TRUE(PlanOr.ok()) << PlanOr.diagnostic().str();
  RestructurePlan Plan = PlanOr.takeValue();
  verifyOrDie(*F, "after restructure (taken)");

  // The final original branch is the bypass; its predicate was replaced
  // by the on-trace FRP; no compensation block exists.
  EXPECT_EQ(Plan.BypassBranchId, FinalBranch);
  EXPECT_EQ(Plan.CompBlock, InvalidBlockId);
  int BI = A.indexOfOp(FinalBranch);
  ASSERT_GE(BI, 0);
  EXPECT_EQ(A.ops()[static_cast<size_t>(BI)].branchPred(),
            Plan.OnTracePred);

  // The final lookahead's sense is inverted (lt -> ge); earlier ones are
  // not. No off-trace FRP targets exist.
  ASSERT_EQ(Plan.LookaheadIds.size(), 2u);
  const Operation &L0 =
      A.ops()[static_cast<size_t>(A.indexOfOp(Plan.LookaheadIds[0]))];
  const Operation &L1 =
      A.ops()[static_cast<size_t>(A.indexOfOp(Plan.LookaheadIds[1]))];
  EXPECT_EQ(L0.getCond(), CompareCond::EQ);
  EXPECT_EQ(L1.getCond(), CompareCond::GE); // inverted from lt
  EXPECT_EQ(L0.defs().size(), 1u);
  EXPECT_EQ(L1.defs().size(), 1u);
  EXPECT_EQ(L0.defs()[0].Act, CmppAction::AC);
}

TEST(RestructureTest, OnTraceFrpInitializedFromRoot) {
  std::unique_ptr<Function> F = parseFunctionOrDie(TwoBranchSrc);
  Block &A = F->block(0);
  CPRBlockInfo Info = makeInfo(*F, false);
  Expected<RestructurePlan> PlanOr = restructureCPRBlock(*F, A, Info);
  ASSERT_TRUE(PlanOr.ok()) << PlanOr.diagnostic().str();
  RestructurePlan Plan = PlanOr.takeValue();

  // Find the initializing movs: off-trace = 0, on-trace = root (imm 1
  // when the root is the true predicate).
  int OffInit = -1, OnInit = -1;
  for (size_t I = 0; I < A.size(); ++I) {
    const Operation &Op = A.ops()[I];
    if (Op.getOpcode() != Opcode::Mov || Op.defs().empty())
      continue;
    if (Op.defs()[0].R == Plan.OffTracePred)
      OffInit = static_cast<int>(I);
    if (Op.defs()[0].R == Plan.OnTracePred)
      OnInit = static_cast<int>(I);
  }
  ASSERT_GE(OffInit, 0);
  ASSERT_GE(OnInit, 0);
  const Operation &Off = A.ops()[static_cast<size_t>(OffInit)];
  const Operation &On = A.ops()[static_cast<size_t>(OnInit)];
  EXPECT_EQ(Off.srcs()[0].getImm(), 0);
  ASSERT_TRUE(Plan.RootPred.isTruePred());
  EXPECT_EQ(On.srcs()[0].getImm(), 1);
  // Both initializers precede the first lookahead.
  EXPECT_LT(OnInit, A.indexOfOp(Plan.LookaheadIds[0]));
}

TEST(RestructureTest, FullTransformOnThisShapeIsEquivalent) {
  // Drive restructure + motion end to end on the two-branch block and
  // execute both versions.
  for (bool Taken : {false, true}) {
    std::unique_ptr<Function> F = parseFunctionOrDie(TwoBranchSrc);
    std::unique_ptr<Function> Base = F->clone();
    Block &A = F->block(0);
    CPRBlockInfo Info = makeInfo(*F, Taken);
    Expected<RestructurePlan> Plan = restructureCPRBlock(*F, A, Info);
    ASSERT_TRUE(Plan.ok()) << Plan.diagnostic().str();
    Expected<MotionStats> MS = moveOffTrace(*F, *Plan);
    ASSERT_TRUE(MS.ok()) << MS.diagnostic().str();
    verifyOrDie(*F, "after motion");

    for (int64_t V1 : {0, 7})
      for (int64_t V2 : {3, 9}) {
        Memory Mem;
        Mem.store(100, V1);
        Mem.store(200, V2);
        std::vector<RegBinding> Init = {{Reg::gpr(1), 100},
                                        {Reg::gpr(2), 200},
                                        {Reg::gpr(5), 300}};
        EquivResult E = checkEquivalence(*Base, *F, Mem, Init);
        EXPECT_TRUE(E.Equivalent)
            << "taken=" << Taken << " v1=" << V1 << " v2=" << V2 << ": "
            << E.Detail;
      }
  }
}

} // namespace

//===- tests/cpr/MatchTest.cpp - ICBM match phase tests -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// Exercises the four match tests of Figure 5 on hand-written IR with
// fabricated profiles.
//
//===----------------------------------------------------------------------===//

#include "cpr/Match.h"

#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// A 3-branch FRP-converted superblock (the Figure 1 shape).
const char *ThreeBranchSrc = R"(
func @f {
block @A:
  r11 = add(r1, 1)
  r21 = load.m1(r11)
  p1:un, p2:uc = cmpp.eq(r21, 0)
  b1 = pbr(@E1)
  branch(p1, b1)
  r12 = add(r1, 2)
  r22 = load.m1(r12)
  p3:un, p4:uc = cmpp.eq(r22, 0) if p2
  b2 = pbr(@E2)
  branch(p3, b2)
  r13 = add(r1, 3)
  r23 = load.m1(r13)
  p5:un, p6:uc = cmpp.eq(r23, 0) if p4
  b3 = pbr(@E3)
  branch(p5, b3)
  halt
block @E1:
  halt
block @E2:
  halt
block @E3:
  halt
}
)";

/// Branch op ids in @A of ThreeBranchSrc (1-based op ids from the parser).
struct Branches {
  OpId B1, B2, B3;
};

Branches branchIds(const Function &F) {
  std::vector<OpId> Ids;
  for (const Operation &Op : F.block(0).ops())
    if (Op.isBranch())
      Ids.push_back(Op.getId());
  EXPECT_EQ(Ids.size(), 3u);
  return Branches{Ids[0], Ids[1], Ids[2]};
}

/// Builds a profile where every branch is reached \p Reached times and
/// takes with the given per-branch counts.
ProfileData makeProfile(const Function &F, uint64_t Reached,
                        std::vector<uint64_t> Taken) {
  ProfileData P;
  size_t I = 0;
  uint64_t Remaining = Reached;
  for (const Operation &Op : F.block(0).ops()) {
    if (!Op.isBranch())
      continue;
    P.addBranchReached(Op.getId(), Remaining);
    uint64_t T = I < Taken.size() ? Taken[I] : 0;
    P.addBranchTaken(Op.getId(), T);
    Remaining -= T;
    ++I;
  }
  P.addBlockEntry(F.block(0).getId(), Reached);
  return P;
}

TEST(MatchTest, BiasedBranchesFormOneBlock) {
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  ProfileData P = makeProfile(*F, 1000, {10, 10, 10});
  CPROptions Opts;
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, Opts);
  ASSERT_EQ(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0].size(), 3u);
  EXPECT_TRUE(Blocks[0].Transformable);
  EXPECT_FALSE(Blocks[0].TakenVariation);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::NoMoreBranches);
}

TEST(MatchTest, ExitWeightTruncatesGrowth) {
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  // Cumulative exits: 10% after b1, 25% after b2 -> with threshold 0.20
  // the block must stop before appending b2's successor... precisely:
  // b1+b2 = 250/1000 > 0.20 stops b2 from joining.
  ProfileData P = makeProfile(*F, 1000, {100, 150, 10});
  CPROptions Opts;
  Opts.ExitWeightThreshold = 0.20;
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, Opts);
  ASSERT_GE(Blocks.size(), 2u);
  EXPECT_EQ(Blocks[0].size(), 1u);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::ExitWeight);
}

TEST(MatchTest, PredictTakenFormsTakenVariation) {
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  // The third branch takes 90% of the block's entries.
  ProfileData P = makeProfile(*F, 1000, {5, 5, 900});
  CPROptions Opts;
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, Opts);
  ASSERT_EQ(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0].size(), 3u);
  EXPECT_TRUE(Blocks[0].TakenVariation);
  EXPECT_TRUE(Blocks[0].Transformable);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::PredictTaken);
}

TEST(MatchTest, PredictTakenHasPriorityOverExitWeight) {
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  // b2 exceeds the exit-weight threshold but is itself predicted taken:
  // the paper's rule appends it anyway and ends the block.
  ProfileData P = makeProfile(*F, 1000, {5, 800, 10});
  CPROptions Opts;
  Opts.ExitWeightThreshold = 0.20;
  Opts.PredictTakenThreshold = 0.60;
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, Opts);
  ASSERT_GE(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0].size(), 2u);
  EXPECT_TRUE(Blocks[0].TakenVariation);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::PredictTaken);
}

TEST(MatchTest, DisabledTakenVariation) {
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  ProfileData P = makeProfile(*F, 1000, {5, 800, 10});
  CPROptions Opts;
  Opts.EnableTakenVariation = false;
  Opts.ExitWeightThreshold = 0.20;
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, Opts);
  for (const CPRBlockInfo &Info : Blocks)
    EXPECT_FALSE(Info.TakenVariation);
}

TEST(MatchTest, SizeCapLimitsGrowth) {
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  ProfileData P = makeProfile(*F, 1000, {1, 1, 1});
  CPROptions Opts;
  Opts.MaxBranchesPerBlock = 2;
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, Opts);
  ASSERT_GE(Blocks.size(), 2u);
  EXPECT_EQ(Blocks[0].size(), 2u);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::SizeCap);
}

TEST(MatchTest, SuitabilityRequiresUnComputedPredicate) {
  // The second branch's predicate comes from a wired-or compare: not a
  // UN-computed predicate, so suitability must stop the block.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  p3 = mov(0)
  p3:on = cmpp.eq(r2, 0) if p2
  b2 = pbr(@X)
  branch(p3, b2)
  halt
block @X:
  halt
}
)");
  ProfileData P = makeProfile(*F, 1000, {10, 10});
  CPROptions Opts;
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, Opts);
  ASSERT_GE(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0].size(), 1u);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::Suitability);
}

TEST(MatchTest, SuitabilityRequiresGuardInSP) {
  // The second compare is guarded by an unrelated live-in predicate, not
  // by a member of the suitable-predicate set.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  p3:un = cmpp.eq(r2, 0) if p9
  b2 = pbr(@X)
  branch(p3, b2)
  halt
block @X:
  halt
}
)");
  ProfileData P = makeProfile(*F, 1000, {10, 10});
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, CPROptions());
  ASSERT_GE(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0].size(), 1u);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::Suitability);
}

TEST(MatchTest, SeparabilityStopsOnDataChain) {
  // The paper's Section 5.2 example: the second compare's source value
  // flows (through a store/load pair in one alias class) from code that
  // depends on the first compare.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r21 = load.m1(r1)
  p1:un, p2:uc = cmpp.eq(r21, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  store.m1(r3, r21) if p2
  r22 = load.m1(r4)
  p3:un, p4:uc = cmpp.eq(r22, 0) if p2
  b2 = pbr(@X)
  branch(p3, b2)
  halt
block @X:
  halt
}
)");
  ProfileData P;
  for (const Operation &Op : F->block(0).ops())
    if (Op.isBranch()) {
      P.addBranchReached(Op.getId(), 1000);
      P.addBranchTaken(Op.getId(), 5);
    }
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, CPROptions());
  ASSERT_GE(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0].size(), 1u);
  EXPECT_EQ(Blocks[0].StopReason, MatchStopReason::Separability);
}

TEST(MatchTest, UcGuardChainIsIgnorable) {
  // The pure UC-guard chain (suitability-licensed) must NOT trip
  // separability: this is the FRP-converted shape.
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  ProfileData P = makeProfile(*F, 1000, {10, 10, 10});
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, CPROptions());
  ASSERT_EQ(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0].size(), 3u);
}

TEST(MatchTest, NeverReachedBranchesStillMatch) {
  // A zero-entry profile (cold code): heuristics must not divide by zero;
  // blocks still form structurally.
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  ProfileData P; // empty
  std::vector<CPRBlockInfo> Blocks =
      matchCPRBlocks(*F, F->block(0), P, CPROptions());
  ASSERT_GE(Blocks.size(), 1u);
  EXPECT_TRUE(Blocks[0].Transformable);
  (void)branchIds(*F);
}

} // namespace

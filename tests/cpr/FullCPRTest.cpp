//===- tests/cpr/FullCPRTest.cpp - Full CPR baseline tests ----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/FullCPR.h"

#include "analysis/PQS.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "regions/DeadCodeElim.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

const char *ThreeBranchSrc = R"(
func @f {
  observable r5
block @A:
  r5 = mov(0)
  p1:un = cmpp.lt(r1, 10)
  b1 = pbr(@X)
  branch(p1, b1)
  r5 = add(r5, 1)
  p2:un = cmpp.lt(r2, 10)
  b2 = pbr(@X)
  branch(p2, b2)
  r5 = add(r5, 2)
  p3:un = cmpp.lt(r3, 10)
  b3 = pbr(@X)
  branch(p3, b3)
  r5 = add(r5, 4)
  halt
block @X:
  r5 = add(r5, 100)
  halt
}
)";

TEST(FullCPRTest, QuadraticLookaheadGrowth) {
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  FullCPRStats S = runFullCPR(*F);
  verifyOrDie(*F, "after full CPR");
  EXPECT_EQ(S.BranchesAccelerated, 3u);
  // Branch i needs i compares: 1 + 2 + 3 = 6 for a 3-branch chain.
  EXPECT_EQ(S.LookaheadsInserted, 6u);
}

TEST(FullCPRTest, AllBranchPredicatesBecomeDisjointAndIndependent) {
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  runFullCPR(*F);
  const Block &A = F->block(0);
  RegionPQS PQS(*F, A);
  std::vector<size_t> Brs;
  for (size_t I = 0; I < A.size(); ++I)
    if (A.ops()[I].isBranch())
      Brs.push_back(I);
  ASSERT_EQ(Brs.size(), 3u);
  for (size_t I = 0; I < Brs.size(); ++I)
    for (size_t J = I + 1; J < Brs.size(); ++J)
      EXPECT_TRUE(
          PQS.disjoint(PQS.takenExpr(Brs[I]), PQS.takenExpr(Brs[J])));
}

TEST(FullCPRTest, PreservesBehaviorExhaustively) {
  std::unique_ptr<Function> Base = parseFunctionOrDie(ThreeBranchSrc);
  std::unique_ptr<Function> Full = parseFunctionOrDie(ThreeBranchSrc);
  runFullCPR(*Full);
  eliminateDeadCode(*Full);
  for (int64_t V1 : {5, 15})
    for (int64_t V2 : {5, 15})
      for (int64_t V3 : {5, 15}) {
        Memory Mem;
        std::vector<RegBinding> Init = {{Reg::gpr(1), V1},
                                        {Reg::gpr(2), V2},
                                        {Reg::gpr(3), V3}};
        EquivResult E = checkEquivalence(*Base, *Full, Mem, Init);
        EXPECT_TRUE(E.Equivalent)
            << V1 << "," << V2 << "," << V3 << ": " << E.Detail;
      }
}

TEST(FullCPRTest, PreservesKernelBehavior) {
  for (unsigned Unroll : {2u, 4u, 8u}) {
    KernelProgram P = buildStrcpyKernel(Unroll, 512, 31);
    std::unique_ptr<Function> Base = P.Func->clone();
    runFullCPR(*P.Func);
    eliminateDeadCode(*P.Func);
    verifyOrDie(*P.Func, "full CPR on strcpy");
    EquivResult E = checkEquivalence(*Base, *P.Func, P.InitMem, P.InitRegs);
    EXPECT_TRUE(E.Equivalent) << "unroll " << Unroll << ": " << E.Detail;
  }
}

TEST(FullCPRTest, NeedsNoProfile) {
  // Unlike ICBM, full CPR fires on cold code (no heuristics).
  std::unique_ptr<Function> F = parseFunctionOrDie(ThreeBranchSrc);
  FullCPRStats S = runFullCPR(*F);
  EXPECT_EQ(S.BranchesAccelerated, 3u);
}

TEST(FullCPRTest, StopsAtUnsuitableBranches) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.lt(r1, 10)
  b1 = pbr(@X)
  branch(p1, b1)
  p2 = mov(0)
  p2:on = cmpp.lt(r2, 10)
  b2 = pbr(@X)
  branch(p2, b2)
  p3:un = cmpp.lt(r3, 10)
  b3 = pbr(@X)
  branch(p3, b3)
  halt
block @X:
  halt
}
)");
  FullCPRStats S = runFullCPR(*F);
  // The wired-or-controlled branch splits the chain; neither remnant has
  // two suitable branches, so nothing is accelerated.
  EXPECT_EQ(S.BranchesAccelerated, 0u);
}

} // namespace

//===- tests/cpr/OffTraceMotionTest.cpp - Motion set tests ----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// Direct assertions on the three sets of paper Section 5.4: moved
// operations (set 1), split operations (set 2), and beneficial sinks
// (set 3).
//
//===----------------------------------------------------------------------===//

#include "cpr/OffTraceMotion.h"

#include "cpr/Restructure.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "support/Error.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// Two-branch FRP-converted block with a store trapped between branches
/// and a pbr feeding each branch.
const char *Src = R"(
func @f {
block @A:
  r21 = load.m1(r1)
  p1:un, p2:uc = cmpp.eq(r21, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  store.m2(r5, r21) if p2
  r22 = load.m1(r2)
  p3:un, p4:uc = cmpp.lt(r22, 5) if p2
  b2 = pbr(@X)
  branch(p3, b2)
  store.m2(r6, r22) if p4
  halt
block @X:
  halt
}
)";

struct Prepared {
  std::unique_ptr<Function> F;
  RestructurePlan Plan;
  MotionStats Stats;
};

Prepared prepare() {
  Prepared P;
  P.F = parseFunctionOrDie(Src);
  Block &A = P.F->block(0);
  CPRBlockInfo Info;
  for (size_t I = 0; I < A.size(); ++I) {
    if (!A.ops()[I].isBranch())
      continue;
    Info.BranchIds.push_back(A.ops()[I].getId());
    int C = A.lastDefBefore(A.ops()[I].branchPred(), I);
    Info.CmppIds.push_back(A.ops()[static_cast<size_t>(C)].getId());
  }
  Info.Transformable = true;
  Expected<RestructurePlan> Plan = restructureCPRBlock(*P.F, A, Info);
  if (!Plan)
    reportFatalError(Plan.diagnostic().str());
  P.Plan = Plan.takeValue();
  Expected<MotionStats> Stats = moveOffTrace(*P.F, P.Plan);
  if (!Stats)
    reportFatalError(Stats.diagnostic().str());
  P.Stats = Stats.takeValue();
  verifyOrDie(*P.F, "after motion");
  return P;
}

TEST(OffTraceMotionTest, OriginalComparesAndBranchesMove) {
  Prepared P = prepare();
  const Block &A = P.F->block(0);
  const Block *Comp = P.F->blockById(P.Plan.CompBlock);
  ASSERT_NE(Comp, nullptr);

  // On-trace: exactly one branch (the bypass) remains.
  unsigned OnTraceBranches = 0;
  for (const Operation &Op : A.ops())
    if (Op.isBranch())
      ++OnTraceBranches;
  EXPECT_EQ(OnTraceBranches, 1u);
  EXPECT_EQ(A.ops()[static_cast<size_t>(
                        A.indexOfOp(P.Plan.BypassBranchId))]
                .branchPred(),
            P.Plan.OffTracePred);

  // Off-trace: both original branches and compares, in order, plus the
  // trap canary at the end.
  unsigned CompBranches = 0, CompCmpps = 0;
  for (const Operation &Op : Comp->ops()) {
    CompBranches += Op.isBranch();
    CompCmpps += Op.isCmpp();
  }
  EXPECT_EQ(CompBranches, 2u);
  EXPECT_EQ(CompCmpps, 2u);
  EXPECT_EQ(Comp->ops().back().getOpcode(), Opcode::Trap);
}

TEST(OffTraceMotionTest, StoresAreSplit) {
  Prepared P = prepare();
  // Only the store trapped *between* the branches moves and splits; the
  // store after the final branch is merely re-wired in place to the
  // on-trace FRP.
  EXPECT_EQ(P.Stats.Split, 1u);
  // Both now sit after the bypass with the on-trace FRP as guard.
  const Block &A = P.F->block(0);
  int BypassIdx = A.indexOfOp(P.Plan.BypassBranchId);
  unsigned Copies = 0;
  for (size_t I = static_cast<size_t>(BypassIdx) + 1; I < A.size(); ++I)
    if (A.ops()[I].isStore()) {
      ++Copies;
      EXPECT_EQ(A.ops()[I].getGuard(), P.Plan.OnTracePred);
    }
  EXPECT_EQ(Copies, 2u);
  // Off-trace originals keep their original fall-through predicates.
  const Block *Comp = P.F->blockById(P.Plan.CompBlock);
  for (const Operation &Op : Comp->ops())
    if (Op.isStore()) {
      EXPECT_NE(Op.getGuard(), P.Plan.OnTracePred);
    }
}

TEST(OffTraceMotionTest, PbrsSinkWithTheirBranches) {
  Prepared P = prepare();
  const Block *Comp = P.F->blockById(P.Plan.CompBlock);
  // Each moved branch's BTR is prepared inside the compensation block
  // (set 3 / forced split).
  for (size_t I = 0; I < Comp->size(); ++I)
    if (Comp->ops()[I].isBranch()) {
      EXPECT_GE(Comp->lastDefBefore(Comp->ops()[I].branchTargetReg(), I),
                0);
    }
}

TEST(OffTraceMotionTest, LookaheadsStayOnTrace) {
  Prepared P = prepare();
  const Block &A = P.F->block(0);
  for (OpId Id : P.Plan.LookaheadIds)
    EXPECT_GE(A.indexOfOp(Id), 0) << "lookahead moved off-trace";
  const Block *Comp = P.F->blockById(P.Plan.CompBlock);
  for (OpId Id : P.Plan.LookaheadIds)
    EXPECT_LT(Comp->indexOfOp(Id), 0);
}

TEST(OffTraceMotionTest, BehaviorAcrossAllPaths) {
  for (int64_t V1 : {0, 3})
    for (int64_t V2 : {2, 9}) {
      std::unique_ptr<Function> Base = parseFunctionOrDie(Src);
      Prepared P = prepare();
      Memory Mem;
      Mem.store(100, V1);
      Mem.store(200, V2);
      std::vector<RegBinding> Init = {{Reg::gpr(1), 100},
                                      {Reg::gpr(2), 200},
                                      {Reg::gpr(5), 300},
                                      {Reg::gpr(6), 301}};
      EquivResult E = checkEquivalence(*Base, *P.F, Mem, Init);
      EXPECT_TRUE(E.Equivalent)
          << V1 << "," << V2 << ": " << E.Detail;
    }
}

} // namespace

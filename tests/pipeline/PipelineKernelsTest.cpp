//===- tests/pipeline/PipelineKernelsTest.cpp - End-to-end kernels --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// Runs every hand-written kernel through the full pipeline (profile ->
// FRP -> ICBM -> DCE -> schedule -> estimate) and checks the paper's
// qualitative claims: observational equivalence (enforced inside the
// pipeline), irredundant dynamic operation counts, reduced dynamic branch
// counts, and speedups that grow with machine width.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

struct KernelCase {
  const char *Name;
  KernelProgram (*Build)();
};

KernelProgram buildStrcpy() { return buildStrcpyKernel(8, 4096, 11); }
KernelProgram buildCmp() { return buildCmpKernel(8, 4096, 4000, 12); }
KernelProgram buildGrep() { return buildGrepKernel(8, 8192, 0.02, 13); }
KernelProgram buildWc() { return buildWcKernel(4, 8192, 14); }

const KernelCase Cases[] = {
    {"strcpy", buildStrcpy},
    {"cmp", buildCmp},
    {"grep", buildGrep},
    {"wc", buildWc},
};

class PipelineKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(PipelineKernelTest, EquivalentAndIrredundant) {
  KernelProgram P = GetParam().Build();
  PipelineResult R = runPipeline(P); // aborts on non-equivalence

  // The transformation must fire on these branch-dominated kernels.
  EXPECT_GE(R.CPR.CPRBlocksTransformed, 1u) << GetParam().Name;

  // Irredundance (the paper's core ICBM property): dynamic operations do
  // not increase; dynamic branches drop.
  EXPECT_LE(R.dynOpRatio(), 1.001) << GetParam().Name;
  EXPECT_LT(R.dynBranchRatio(), 0.80) << GetParam().Name;

  // Static code growth exists but is bounded (compensation code).
  EXPECT_GE(R.staticOpRatio(), 1.0) << GetParam().Name;
  EXPECT_LT(R.staticOpRatio(), 2.5) << GetParam().Name;
}

TEST_P(PipelineKernelTest, SpeedupGrowsWithWidth) {
  KernelProgram P = GetParam().Build();
  PipelineResult R = runPipeline(P);

  double Med = R.speedupOn("medium");
  double Wid = R.speedupOn("wide");
  double Inf = R.speedupOn("infinite");

  // Kernels with biased branches and separable conditions are the paper's
  // best case: clear wins on medium and monotone growth toward infinite.
  EXPECT_GT(Med, 1.0) << GetParam().Name;
  EXPECT_GE(Wid, Med * 0.95) << GetParam().Name;
  EXPECT_GE(Inf, Wid * 0.95) << GetParam().Name;
  EXPECT_GT(Inf, 1.2) << GetParam().Name;
}

INSTANTIATE_TEST_SUITE_P(Kernels, PipelineKernelTest,
                         ::testing::ValuesIn(Cases),
                         [](const ::testing::TestParamInfo<KernelCase> &I) {
                           return std::string(I.param.Name);
                         });

TEST(PipelineKernelsTest, StrcpyUnrollSweepStaysEquivalent) {
  for (unsigned U : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    KernelProgram P = buildStrcpyKernel(U, 1024, 100 + U);
    PipelineResult R = runPipeline(P); // equivalence enforced inside
    if (U >= 2) {
      EXPECT_GE(R.CPR.CPRBlocksTransformed, 1u) << "unroll " << U;
    }
  }
}

TEST(PipelineKernelsTest, ShortStringsExerciseEarlyExits) {
  // Short strings make the early exits hot: the exit-weight test must cut
  // CPR blocks short and equivalence must still hold (compensation paths
  // execute frequently).
  for (size_t Len : {0u, 1u, 2u, 3u, 5u, 7u, 9u}) {
    KernelProgram P = buildStrcpyKernel(4, Len, 200 + Len);
    PipelineResult R = runPipeline(P);
    (void)R;
  }
}

TEST(PipelineKernelsTest, CmpEarlyMismatch) {
  // A mismatch in the first chunk: the off-trace path runs on iteration 1.
  KernelProgram P = buildCmpKernel(8, 1024, /*MatchPrefix=*/3, 77);
  PipelineResult R = runPipeline(P);
  (void)R;
}

TEST(PipelineKernelsTest, GrepHitRateSweep) {
  for (double Rate : {0.0, 0.01, 0.1, 0.5}) {
    KernelProgram P = buildGrepKernel(8, 2048, Rate, 31);
    PipelineResult R = runPipeline(P);
    // Dense hits make the scan branches unbiased; CPR may fire less, but
    // must never break equivalence (checked inside) or inflate dynamic
    // work beyond the baseline meaningfully.
    EXPECT_LE(R.dynOpRatio(), 1.25) << "hit rate " << Rate;
  }
}

TEST(PipelineKernelsTest, BlockLengthModeAlsoShowsWins) {
  // The paper's literal schedule-length x frequency formula.
  KernelProgram P = buildStrcpyKernel(8, 4096, 5);
  PipelineOptions Opts;
  Opts.Perf.WeightMode = PerfModelOptions::Mode::BlockLength;
  PipelineResult R = runPipeline(P, Opts);
  EXPECT_GT(R.speedupOn("infinite"), 1.1);
}

} // namespace

//===- tests/pipeline/ParallelSuiteTest.cpp - Staged/parallel pipeline ----===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Determinism and staged-session tests for the PipelineRun API and the
// pool-parallel suite runner: the same work must produce byte-identical
// tables and stats counters at every thread count, and session artifacts
// must be computed once, shared, and injectable.
//
//===----------------------------------------------------------------------===//

#include "pipeline/PipelineRun.h"
#include "pipeline/Reports.h"
#include "support/JSON.h"
#include "support/Statistics.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

TEST(PipelineRun, ArtifactsAreLazyCachedAndShared) {
  PipelineOptions Opts;
  Opts.Simulate = true;
  StatsRegistry Stats;
  PipelineRun Run(buildStrcpyKernel(4, 256, 1), Opts, &Stats, "s/");

  const ProfileData &Prof = Run.baselineProfile();
  EXPECT_EQ(&Prof, &Run.baselineProfile()); // computed once, cached
  EXPECT_GT(Run.baselineDynStats().OpsDispatched, 0u);
  EXPECT_GT(Run.baselineTrace().size(), 0u);

  Run.prepare();
  MachineComparison MC = Run.estimateMachine(MachineDesc::wide());
  SimComparison SC = Run.simulate(MachineDesc::wide(), PredictorKind::Gshare);
  EXPECT_GT(MC.BaselineCycles, 0.0);
  EXPECT_GT(SC.Baseline.TotalCycles, 0.0);

  PipelineResult R = Run.finish();
  ASSERT_NE(R.Treated, nullptr);
  // finish() reuses the same artifacts: its rows match the direct calls.
  EXPECT_EQ(R.speedupOn("wide"), MC.speedup());
  const SimComparison *S = R.simOn("wide", "gshare");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Baseline.TotalCycles, SC.Baseline.TotalCycles);
  EXPECT_EQ(S->Treated.Mispredicts, SC.Treated.Mispredicts);

  // Stage reporting landed under the session prefix.
  EXPECT_GT(Stats.count("s/dyn_ops_baseline"), 0.0);
  EXPECT_GT(Stats.count("s/static_ops_treated"), 0.0);
  EXPECT_GT(Stats.timeMs("s/profile_baseline"), 0.0);
}

TEST(PipelineRun, InjectedTreatedSkipsTransform) {
  KernelProgram P = buildStrcpyKernel(4, 256, 1);
  std::unique_ptr<Function> Identical = P.Func->clone();
  PipelineRun Run(std::move(P));
  Run.setTreated(std::move(Identical));
  Run.checkEquivalence(); // identical program: trivially equivalent
  EXPECT_EQ(Run.cprResult().CPRBlocksTransformed, 0u);
  PipelineResult R = Run.finish();
  for (const MachineComparison &M : R.Machines) {
    EXPECT_GT(M.BaselineCycles, 0.0);
    EXPECT_DOUBLE_EQ(M.speedup(), 1.0);
  }
}

TEST(PipelineRun, InjectedProfileMatchesMeasuredProfile) {
  PipelineRun Measured(buildStrcpyKernel(4, 256, 1));
  ProfileData Copy = Measured.baselineProfile();
  MachineComparison Want = [&] {
    Measured.prepare();
    return Measured.estimateMachine(MachineDesc::wide());
  }();

  PipelineRun Injected(buildStrcpyKernel(4, 256, 1));
  Injected.setBaselineProfile(std::move(Copy));
  Injected.prepare();
  MachineComparison Got = Injected.estimateMachine(MachineDesc::wide());
  EXPECT_EQ(Got.BaselineCycles, Want.BaselineCycles);
  EXPECT_EQ(Got.TreatedCycles, Want.TreatedCycles);
}

TEST(RunPipeline, ThreadedRunMatchesSerialRun) {
  PipelineOptions Serial;
  Serial.Simulate = true;
  PipelineResult A = runPipeline(buildWcKernel(4, 2048, 66), Serial);

  PipelineOptions Threaded = Serial;
  Threaded.Threads = 4;
  PipelineResult B = runPipeline(buildWcKernel(4, 2048, 66), Threaded);

  ASSERT_EQ(A.Machines.size(), B.Machines.size());
  for (size_t I = 0; I < A.Machines.size(); ++I) {
    EXPECT_EQ(A.Machines[I].MachineName, B.Machines[I].MachineName);
    EXPECT_EQ(A.Machines[I].BaselineCycles, B.Machines[I].BaselineCycles);
    EXPECT_EQ(A.Machines[I].TreatedCycles, B.Machines[I].TreatedCycles);
  }
  ASSERT_EQ(A.Sim.size(), B.Sim.size());
  for (size_t I = 0; I < A.Sim.size(); ++I) {
    EXPECT_EQ(A.Sim[I].MachineName, B.Sim[I].MachineName);
    EXPECT_EQ(A.Sim[I].PredictorName, B.Sim[I].PredictorName);
    EXPECT_EQ(A.Sim[I].Baseline.TotalCycles, B.Sim[I].Baseline.TotalCycles);
    EXPECT_EQ(A.Sim[I].Treated.Mispredicts, B.Sim[I].Treated.Mispredicts);
  }
}

TEST(RunSuite, ParallelSuiteIsByteIdenticalToSerial) {
  PipelineOptions SerialOpts;
  SerialOpts.Threads = 1;
  StatsRegistry SerialStats;
  SerialOpts.Stats = &SerialStats;
  std::vector<SuiteRow> Serial = runSuite(SerialOpts);

  PipelineOptions PoolOpts;
  PoolOpts.Threads = 8;
  StatsRegistry PoolStats;
  PoolOpts.Stats = &PoolStats;
  std::vector<SuiteRow> Pooled = runSuite(PoolOpts);

  // Rendered reports are byte-identical at every thread count.
  EXPECT_EQ(renderTable2(Serial), renderTable2(Pooled));
  EXPECT_EQ(renderTable3(Serial), renderTable3(Pooled));

  // So is the deterministic (counters-only) stats document.
  EXPECT_EQ(SerialStats.toJSONText(false), PoolStats.toJSONText(false));
  EXPECT_FALSE(SerialStats.counters().empty());

  // The full document -- wall times included -- round-trips through the
  // strict parser with the expected schema tag.
  JSONParseResult P = parseJSON(PoolStats.toJSONText(true));
  ASSERT_TRUE(static_cast<bool>(P)) << P.Error;
  const JSONValue *Schema = P.Value.find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->getString(), "cpr-stats-v1.3");
  const JSONValue *Counters = P.Value.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->members().size(), SerialStats.counters().size());
  ASSERT_NE(P.Value.find("times_ms"), nullptr);
}

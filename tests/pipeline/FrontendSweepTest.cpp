//===- tests/pipeline/FrontendSweepTest.cpp - Table 2-dyn sweep tests -----===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The frontend sweep (workloads x machines x predictors x frontends) is
// the benchmark surface of the frontend-fidelity subsystem; its contract
// is byte-identical output at every thread count and a stable
// workload-major cell order every renderer and serializer can rely on.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Reports.h"

#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

FrontendSweepOptions smallSweep(unsigned Threads) {
  FrontendSweepOptions O;
  O.Threads = Threads;
  O.MaxWorkloads = 3;
  O.Machines = {MachineDesc::medium(), MachineDesc::wide()};
  O.Predictors = {PredictorKind::Gshare, PredictorKind::TageScL};
  return O;
}

TEST(FrontendSweep, CellOrderIsWorkloadMajorAndComplete) {
  FrontendSweepResult R = runFrontendSweep(smallSweep(1));
  ASSERT_EQ(R.Workloads.size(), 3u);
  // 3 workloads x 2 machines x 2 predictors x 2 frontend configs.
  ASSERT_EQ(R.Cells.size(), 3u * 2 * 2 * 2);

  size_t I = 0;
  for (const std::string &W : R.Workloads)
    for (const char *M : {"medium", "wide"})
      for (const char *P : {"gshare", "tage-sc-l"})
        for (const char *FE : {"flat", "fetch4.btb64x4"}) {
          const FrontendCell &C = R.Cells[I++];
          EXPECT_EQ(C.Workload, W);
          EXPECT_EQ(C.Machine, M);
          EXPECT_EQ(C.Predictor, P);
          EXPECT_EQ(C.Frontend, FE);
          EXPECT_TRUE(C.Sim.Baseline.ok()) << C.Sim.Baseline.Error;
          EXPECT_TRUE(C.Sim.Treated.ok()) << C.Sim.Treated.Error;
          EXPECT_GT(C.Sim.Baseline.TotalCycles, 0.0);
        }
}

TEST(FrontendSweep, FrontendCostsAreVisibleInTheCells) {
  FrontendSweepResult R = runFrontendSweep(smallSweep(1));
  uint64_t FlatBTB = 0, FrontBTB = 0, FrontStalls = 0;
  double FlatCycles = 0, FrontCycles = 0;
  for (const FrontendCell &C : R.Cells) {
    if (C.Frontend == "flat") {
      FlatBTB += C.Sim.Treated.BTBLookups;
      FlatCycles += C.Sim.Treated.TotalCycles;
    } else {
      FrontBTB += C.Sim.Treated.BTBLookups;
      FrontStalls += C.Sim.Treated.FetchStallCycles;
      FrontCycles += C.Sim.Treated.TotalCycles;
    }
  }
  EXPECT_EQ(FlatBTB, 0u);      // the flat model never consults a BTB
  EXPECT_GT(FrontBTB, 0u);     // the frontend config does
  EXPECT_GT(FrontStalls, 0u);  // 4-wide fetch trails the wide backends
  EXPECT_GT(FrontCycles, FlatCycles); // extra cost classes only add cycles
}

TEST(FrontendSweep, ByteIdenticalAtEveryThreadCount) {
  StatsRegistry SerialStats;
  FrontendSweepOptions Serial = smallSweep(1);
  Serial.Stats = &SerialStats;
  FrontendSweepResult Want = runFrontendSweep(Serial);
  std::string WantSweep = renderFrontendSweep(Want);
  std::string WantDetail = renderFrontendDetail(Want);
  EXPECT_FALSE(WantSweep.empty());
  EXPECT_FALSE(WantDetail.empty());

  for (unsigned Threads : {2u, 4u, 8u}) {
    StatsRegistry Stats;
    FrontendSweepOptions O = smallSweep(Threads);
    O.Stats = &Stats;
    FrontendSweepResult Got = runFrontendSweep(O);
    EXPECT_EQ(renderFrontendSweep(Got), WantSweep) << Threads << " threads";
    EXPECT_EQ(renderFrontendDetail(Got), WantDetail) << Threads << " threads";
    EXPECT_EQ(Stats.toJSONText(false), SerialStats.toJSONText(false))
        << Threads << " threads";
  }
  EXPECT_FALSE(SerialStats.counters().empty());
}

} // namespace

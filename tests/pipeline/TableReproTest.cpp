//===- tests/pipeline/TableReproTest.cpp - Paper-shape regression ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Runs the full 24-benchmark suite once and asserts the qualitative
// findings of the paper's Tables 2 and 3 (see EXPERIMENTS.md). This is
// the repository's regression lock: any change that breaks the
// reproduction's shape fails here, not silently in a bench nobody reads.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"
#include "support/Statistics.h"
#include "workloads/BenchmarkSuite.h"

#include <gtest/gtest.h>

#include <map>

using namespace cpr;

namespace {

/// Shared fixture: run the suite once for the whole test case.
class TableReproTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Results = new std::map<std::string, PipelineResult>();
    for (const BenchmarkSpec &Spec : paperBenchmarkSuite()) {
      KernelProgram P = Spec.Build();
      Results->emplace(Spec.Name, runPipeline(P));
    }
  }
  static void TearDownTestSuite() {
    delete Results;
    Results = nullptr;
  }

  static const PipelineResult &get(const std::string &Name) {
    auto It = Results->find(Name);
    EXPECT_NE(It, Results->end()) << Name;
    return It->second;
  }

  static std::vector<double> column(const char *Machine) {
    std::vector<double> V;
    for (const auto &[Name, R] : *Results)
      V.push_back(R.speedupOn(Machine));
    return V;
  }

  static std::map<std::string, PipelineResult> *Results;
};

std::map<std::string, PipelineResult> *TableReproTest::Results = nullptr;

TEST_F(TableReproTest, GmeansTrackThePaper) {
  // Paper Gmean-all: 1.13 / 1.05 / 1.18 / 1.33 / 1.41. Assert bands wide
  // enough to tolerate modeling differences but tight enough to catch
  // regressions.
  double Seq = geometricMean(column("sequential"));
  double Nar = geometricMean(column("narrow"));
  double Med = geometricMean(column("medium"));
  double Wid = geometricMean(column("wide"));
  double Inf = geometricMean(column("infinite"));
  EXPECT_GT(Seq, 0.95);
  EXPECT_GT(Nar, 0.90);
  EXPECT_GT(Med, 1.10);
  EXPECT_GT(Wid, 1.22);
  EXPECT_GT(Inf, 1.28);
  // Monotone growth with machine width.
  EXPECT_LE(Med, Wid + 0.02);
  EXPECT_LE(Wid, Inf + 0.02);
}

TEST_F(TableReproTest, KernelsAreTheBigWinners) {
  // Table 2's strongest rows: cmp, grep, strcpy all exceed 2x on the
  // infinite machine (paper: 3.60, 2.61, 4.26).
  EXPECT_GT(get("cmp").speedupOn("infinite"), 2.0);
  EXPECT_GT(get("grep").speedupOn("infinite"), 2.0);
  EXPECT_GT(get("strcpy").speedupOn("infinite"), 2.0);
  // And they dominate the applications.
  EXPECT_GT(get("strcpy").speedupOn("infinite"),
            get("126.gcc").speedupOn("infinite"));
}

TEST_F(TableReproTest, GoIsImmuneToControlCPR) {
  // 099.go is dominated by unbiased branches (paper: 0.96-1.02).
  const PipelineResult &Go = get("099.go");
  for (const MachineComparison &M : Go.Machines) {
    EXPECT_GT(M.speedup(), 0.90) << M.MachineName;
    EXPECT_LT(M.speedup(), 1.10) << M.MachineName;
  }
  EXPECT_GT(Go.dynBranchRatio(), 0.85) << "go's branches mostly survive";
}

TEST_F(TableReproTest, EqntottCrossover) {
  // The paper's signature pathology: loses on sequential/narrow, wins on
  // medium+ (0.85/0.87 -> 1.10/1.23/1.23).
  const PipelineResult &Eq = get("023.eqntott");
  EXPECT_LT(Eq.speedupOn("sequential"), 1.0);
  EXPECT_LT(Eq.speedupOn("narrow"), 1.0);
  EXPECT_GT(Eq.speedupOn("wide"), 1.05);
  EXPECT_GT(Eq.speedupOn("infinite"), 1.05);
}

TEST_F(TableReproTest, DynamicBranchReduction) {
  // Table 3 "D br": Gmean-all 0.42 in the paper; kernels in .07-.40.
  std::vector<double> Ratios;
  for (const auto &[Name, R] : *Results)
    Ratios.push_back(R.dynBranchRatio());
  double G = geometricMean(Ratios);
  EXPECT_GT(G, 0.25);
  EXPECT_LT(G, 0.60);
  EXPECT_LT(get("strcpy").dynBranchRatio(), 0.25);
  EXPECT_LT(get("cmp").dynBranchRatio(), 0.25);
}

TEST_F(TableReproTest, IrredundanceAcrossTheSuite) {
  // Table 3 "D tot": Gmean-all 0.93 in the paper. Dynamic operations must
  // not grow meaningfully for any benchmark.
  for (const auto &[Name, R] : *Results) {
    EXPECT_LE(R.dynOpRatio(), 1.05) << Name;
  }
  std::vector<double> Ratios;
  for (const auto &[Name, R] : *Results)
    Ratios.push_back(R.dynOpRatio());
  EXPECT_LT(geometricMean(Ratios), 1.0);
}

TEST_F(TableReproTest, StaticGrowthIsBounded) {
  // Compensation code costs static space; it must stay bounded (paper:
  // <10% for applications; our programs are far smaller, so the bound is
  // looser -- see EXPERIMENTS.md).
  for (const auto &[Name, R] : *Results) {
    EXPECT_GE(R.staticOpRatio(), 1.0) << Name;
    EXPECT_LT(R.staticOpRatio(), 1.6) << Name;
  }
}

TEST_F(TableReproTest, TransformationFiresBroadly) {
  // ICBM must fire on the biased-branch benchmarks (everything except
  // go-like code).
  unsigned Fired = 0;
  for (const auto &[Name, R] : *Results)
    if (R.CPR.CPRBlocksTransformed > 0)
      ++Fired;
  EXPECT_GE(Fired, 20u) << "of 24 benchmarks";
}

} // namespace

//===- tests/pipeline/PipelineRobustnessTest.cpp - Fail-safe sessions -----===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The fail-safe half of the PipelineRun contract (docs/ROBUSTNESS.md):
// the finish() poison, stage-fault fallback, interpreter and transform
// budgets, rollback counters in the stats registry, and determinism of
// the degraded output across thread counts.
//
//===----------------------------------------------------------------------===//

#include "pipeline/PipelineRun.h"

#include "ir/IRPrinter.h"
#include "support/Error.h"
#include "support/FaultInjector.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "workloads/Kernels.h"
#include "workloads/SyntheticProgram.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

unsigned countCode(const DiagnosticEngine &Diags, DiagCode Code) {
  unsigned N = 0;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Code == Code)
      ++N;
  return N;
}

KernelProgram syntheticProgram(uint64_t Seed) {
  SyntheticParams SP;
  SP.Superblocks = 3;
  SP.RungsPerSuperblock = 4;
  SP.FallThroughBias = 0.99;
  SP.Trips = 150;
  SP.Seed = Seed;
  return buildSyntheticProgram("robust", SP);
}

TEST(PipelineRobustness, FinishPoisonsTheSession) {
  PipelineRun Run(buildStrcpyKernel(4, 64, 1));
  PipelineResult R = Run.finish();
  ASSERT_NE(R.Treated, nullptr);

  // Any stage access after finish() is a loud fatal error, not a silent
  // use-after-move on the departed treated function.
  ScopedFatalErrorTrap Trap;
  try {
    (void)Run.treated();
    FAIL() << "treated() after finish() did not trap";
  } catch (const FatalError &E) {
    EXPECT_NE(E.message().find("after finish()"), std::string::npos)
        << E.message();
  }
  EXPECT_THROW((void)Run.baselineProfile(), FatalError);
  EXPECT_THROW((void)Run.finish(), FatalError); // second finish() too
}

TEST(PipelineRobustness, TransformStageFaultFallsBackToBaseline) {
  KernelProgram P = buildStrcpyKernel(4, 64, 1);
  std::unique_ptr<Function> Base = P.Func->clone();

  PipelineOptions Opts;
  Opts.FailSafe = true;
  DiagnosticEngine Diags;
  Opts.Diags = &Diags;
  StatsRegistry Stats;
  PipelineRun Run(std::move(P), Opts, &Stats, "p/");

  fault::ScopedFault Armed("pipeline.transform", 1);
  Status S = Run.tryPrepare();
  EXPECT_TRUE(S.ok()) << "fail-safe sessions degrade, never fail here";
  EXPECT_TRUE(Run.fellBack());
  EXPECT_EQ(Run.cprResult().CPRBlocksTransformed, 0u);
  EXPECT_GE(countCode(Diags, DiagCode::TransformFault), 1u);
  EXPECT_EQ(Stats.count("p/cpr/fallback_baseline"), 1.0);

  // finish() still yields a runnable function: the untreated baseline.
  PipelineResult R = Run.finish();
  ASSERT_NE(R.Treated, nullptr);
  EXPECT_EQ(printFunction(*R.Treated), printFunction(*Base));
  for (const MachineComparison &M : R.Machines)
    EXPECT_DOUBLE_EQ(M.speedup(), 1.0);
}

TEST(PipelineRobustness, InterpBudgetExhaustionIsAnOrdinaryDiagnostic) {
  PipelineOptions Opts;
  Opts.FailSafe = true;
  Opts.InterpMaxSteps = 5; // far below the kernel's dynamic length
  DiagnosticEngine Diags;
  Opts.Diags = &Diags;
  PipelineRun Run(buildStrcpyKernel(4, 64, 1), Opts);

  // The baseline profile is the session's foundation; when its budget
  // runs out the session fails -- via a returned Status, not an abort.
  Status S = Run.tryPrepare();
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.diagnostic().Code, DiagCode::BudgetExhausted);
  EXPECT_GE(countCode(Diags, DiagCode::BudgetExhausted), 1u);
}

TEST(PipelineRobustness, TransformBudgetCountersLandInStats) {
  PipelineOptions Opts;
  Opts.FailSafe = true;
  Opts.TransformBudget.MaxSteps = 1;
  DiagnosticEngine Diags;
  Opts.Diags = &Diags;
  StatsRegistry Stats;
  PipelineRun Run(syntheticProgram(7), Opts, &Stats, "p/");

  ASSERT_TRUE(Run.tryPrepare().ok());
  EXPECT_TRUE(Run.cprResult().BudgetExhausted);
  EXPECT_EQ(Run.cprResult().CPRBlocksTransformed, 1u);
  EXPECT_EQ(Stats.count("p/budget/transform_exhausted"), 1.0);
  EXPECT_EQ(Stats.count("p/cpr/blocks_transformed"), 1.0);
  EXPECT_GE(Stats.count("p/cpr/regions_skipped_budget"), 1.0);
  EXPECT_TRUE(Run.checkEquivalenceResult().Equivalent);
}

TEST(PipelineRobustness, RollbackCountersLandInStats) {
  PipelineOptions Opts;
  Opts.FailSafe = true;
  DiagnosticEngine Diags;
  Opts.Diags = &Diags;
  StatsRegistry Stats;
  PipelineRun Run(syntheticProgram(404), Opts, &Stats, "p/");

  fault::ScopedFault Armed("cpr.restructure.plan", 1);
  ASSERT_TRUE(Run.tryPrepare().ok());
  ASSERT_TRUE(fault::fired());
  EXPECT_FALSE(Run.fellBack()) << "one region's failure is not a fallback";
  EXPECT_GE(Stats.count("p/cpr/blocks_rolled_back"), 1.0);
  EXPECT_GE(Stats.count("p/cpr/regions_rolled_back"), 1.0);
  EXPECT_GE(Stats.count("p/cpr/blocks_transformed"), 1.0)
      << "other regions stay treated";
  // The rollback diagnostics were mirrored under the engine's prefix.
  EXPECT_GE(Diags.count(DiagSeverity::Remark), 1u);
  EXPECT_TRUE(Run.checkEquivalenceResult().Equivalent);
}

TEST(PipelineRobustness, DegradedOutputIsIdenticalAtAnyThreadCount) {
  // The rollback is surgical and deterministic: the same injected fault
  // yields byte-identical treated output whether finish() fans out on a
  // pool or runs inline.
  std::string Serial, Pooled;
  {
    PipelineOptions Opts;
    Opts.FailSafe = true;
    PipelineRun Run(syntheticProgram(404), Opts);
    fault::ScopedFault Armed("cpr.restructure.plan", 1);
    ASSERT_TRUE(Run.tryPrepare().ok());
    PipelineResult R = Run.finish(nullptr);
    Serial = printFunction(*R.Treated);
  }
  {
    ThreadPool Pool(4);
    PipelineOptions Opts;
    Opts.FailSafe = true;
    PipelineRun Run(syntheticProgram(404), Opts);
    fault::ScopedFault Armed("cpr.restructure.plan", 1);
    ASSERT_TRUE(Run.tryPrepare().ok());
    PipelineResult R = Run.finish(&Pool);
    Pooled = printFunction(*R.Treated);
  }
  EXPECT_EQ(Serial, Pooled);
}

} // namespace

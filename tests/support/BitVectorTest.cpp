//===- tests/support/BitVectorTest.cpp - Dense bitset units ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The dense bitset under every dataflow set (support/BitVector.h):
// word-boundary behavior, the bulk operations' changed-bit reporting the
// solver's fixed-point test relies on, and the canonical-tail invariant
// that makes operator== a plain word compare.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(BitVectorTest, SetTestResetAcrossWordBoundary) {
  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  EXPECT_TRUE(V.none());
  for (size_t I : {size_t(0), size_t(63), size_t(64), size_t(129)})
    V.set(I);
  EXPECT_EQ(V.count(), 4u);
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_FALSE(V.test(65));
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 3u);
  V.reset();
  EXPECT_TRUE(V.none());
}

TEST(BitVectorTest, FindNextWalksSetBits) {
  BitVector V(200);
  V.set(3);
  V.set(64);
  V.set(199);
  EXPECT_EQ(V.findFirst(), 3u);
  EXPECT_EQ(V.findNext(4), 64u);
  EXPECT_EQ(V.findNext(65), 199u);
  EXPECT_EQ(V.findNext(200), BitVector::npos);
  BitVector Empty(200);
  EXPECT_EQ(Empty.findFirst(), BitVector::npos);
}

TEST(BitVectorTest, BulkOpsReportChanges) {
  BitVector A(70), B(70);
  A.set(1);
  B.set(1);
  B.set(65);
  EXPECT_TRUE(A.orWith(B)); // gains 65
  EXPECT_TRUE(A.test(65));
  EXPECT_FALSE(A.orWith(B)); // already a superset
  EXPECT_FALSE(A.andWith(B)); // A == B now
  BitVector C(70);
  C.set(1);
  EXPECT_TRUE(A.andWith(C)); // loses 65
  EXPECT_EQ(A.count(), 1u);
  EXPECT_TRUE(A.andNot(C)); // loses 1
  EXPECT_TRUE(A.none());
  EXPECT_FALSE(A.andNot(C)); // already empty
}

TEST(BitVectorTest, EqualityIsCanonicalAfterResize) {
  BitVector A(70);
  A.set(65);
  A.resize(64); // drops bit 65; the tail must be cleared
  BitVector B(64);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.count(), 0u);
  A.resize(70); // regrown bits arrive clear
  EXPECT_TRUE(A.none());
  BitVector C(71);
  EXPECT_NE(A, C); // different universes are never equal
}

} // namespace

//===- tests/support/SupportTest.cpp - Support library tests --------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(RNGTest, Deterministic) {
  RNG A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  RNG A2(42), C2(43);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(RNGTest, RangesRespected) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextRange(-5, 9);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 9);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    EXPECT_LT(R.nextBelow(17), 17u);
  }
}

TEST(RNGTest, BoolProbabilityIsPlausible) {
  RNG R(11);
  int Hits = 0;
  constexpr int N = 20000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextBool(0.25) ? 1 : 0;
  double Rate = static_cast<double>(Hits) / N;
  EXPECT_GT(Rate, 0.22);
  EXPECT_LT(Rate, 0.28);
}

TEST(StatisticsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({2.0, 2.0, 2.0}), 2.0);
  EXPECT_NEAR(geometricMean({1.0, 8.0}), 2.8284271, 1e-6);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(StatisticsTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(TableFormatTest, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "x", "y"});
  T.addRow({"alpha", "1", "2.50"});
  T.addRow({"b", "100", "3"});
  std::string Out = T.render();
  // Header present, separator line present, right-aligned numerics.
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Each line has the same trailing column position for "y" values:
  // check that "100" and "  1" align right by looking at line lengths.
  size_t FirstNl = Out.find('\n');
  std::string HeaderLine = Out.substr(0, FirstNl);
  EXPECT_FALSE(HeaderLine.empty());
}

TEST(TableFormatTest, SeparatorRows) {
  TextTable T;
  T.setHeader({"a", "b"});
  T.addRow({"1", "2"});
  T.addSeparator();
  T.addRow({"3", "4"});
  std::string Out = T.render();
  // Two separator lines: one under the header, one explicit.
  size_t First = Out.find("--");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("--", First + 3), std::string::npos);
}

TEST(TableFormatTest, FormatsDoubles) {
  EXPECT_EQ(TextTable::fmt(1.234567), "1.23");
  EXPECT_EQ(TextTable::fmt(1.235, 2), "1.24");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt(0.07, 3), "0.070");
}

} // namespace

//===- tests/support/StatsRegistryTest.cpp - Stats registry tests ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace cpr;

TEST(StatsRegistry, CountsAccumulate) {
  StatsRegistry R;
  EXPECT_EQ(R.count("x"), 0.0);
  R.addCount("x");
  R.addCount("x", 2.5);
  R.addCount("y", 4.0);
  EXPECT_EQ(R.count("x"), 3.5);
  EXPECT_EQ(R.count("y"), 4.0);
  R.clear();
  EXPECT_EQ(R.count("x"), 0.0);
  EXPECT_TRUE(R.counters().empty());
}

TEST(StatsRegistry, TimesAccumulate) {
  StatsRegistry R;
  R.recordTimeMs("stage", 1.5);
  R.recordTimeMs("stage", 2.5);
  EXPECT_EQ(R.timeMs("stage"), 4.0);
}

TEST(StatsRegistry, SnapshotsAreSortedByKey) {
  StatsRegistry R;
  R.addCount("zeta", 1);
  R.addCount("alpha", 2);
  R.addCount("mid/key", 3);
  std::vector<std::pair<std::string, double>> C = R.counters();
  ASSERT_EQ(C.size(), 3u);
  EXPECT_EQ(C[0].first, "alpha");
  EXPECT_EQ(C[1].first, "mid/key");
  EXPECT_EQ(C[2].first, "zeta");
}

TEST(StatsRegistry, MergePrependsPrefix) {
  StatsRegistry Task;
  Task.addCount("branches", 5);
  Task.recordTimeMs("transform", 1.0);
  StatsRegistry Total;
  Total.addCount("kernel/branches", 1);
  Total.mergeFrom(Task, "kernel/");
  EXPECT_EQ(Total.count("kernel/branches"), 6.0);
  EXPECT_EQ(Total.timeMs("kernel/transform"), 1.0);
}

TEST(StatsRegistry, JSONDocumentShape) {
  StatsRegistry R;
  R.addCount("b", 2);
  R.addCount("a", 1);
  R.recordTimeMs("t", 0.5);

  JSONParseResult P = parseJSON(R.toJSONText());
  ASSERT_TRUE(static_cast<bool>(P)) << P.Error;
  const JSONValue *Schema = P.Value.find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->getString(), "cpr-stats-v1.3");
  const JSONValue *Counters = P.Value.find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_EQ(Counters->members().size(), 2u);
  EXPECT_EQ(Counters->members()[0].first, "a"); // sorted
  EXPECT_EQ(Counters->members()[1].first, "b");
  EXPECT_EQ(Counters->members()[1].second.getNumber(), 2.0);
  const JSONValue *Times = P.Value.find("times_ms");
  ASSERT_NE(Times, nullptr);
  EXPECT_EQ(Times->members().size(), 1u);
}

TEST(StatsRegistry, TimesExcludableForDeterministicComparison) {
  StatsRegistry A, B;
  A.addCount("k", 1);
  A.recordTimeMs("t", 1.0);
  B.addCount("k", 1);
  B.recordTimeMs("t", 99.0); // different wall time, same work
  EXPECT_NE(A.toJSONText(true), B.toJSONText(true));
  EXPECT_EQ(A.toJSONText(false), B.toJSONText(false));
  EXPECT_EQ(A.toJSONText(false).find("times_ms"), std::string::npos);
}

TEST(StatsRegistry, ConcurrentReportingIsDeterministic) {
  StatsRegistry R;
  ThreadPool Pool(4);
  parallelFor(&Pool, 200, [&R](size_t I) {
    R.addCount("total");
    R.addCount(I % 2 ? "odd" : "even");
  });
  EXPECT_EQ(R.count("total"), 200.0);
  EXPECT_EQ(R.count("odd"), 100.0);
  EXPECT_EQ(R.count("even"), 100.0);
}

TEST(StatsRegistry, FileRoundTrip) {
  StatsRegistry R;
  R.addCount("pipeline/ops", 1234);
  std::string Path = ::testing::TempDir() + "cpr_stats_test.json";
  std::string Error;
  ASSERT_TRUE(writeStatsJSONFile(R, Path, &Error)) << Error;

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Text(1 << 12, '\0');
  Text.resize(std::fread(Text.data(), 1, Text.size(), F));
  std::fclose(F);
  std::remove(Path.c_str());

  JSONParseResult P = parseJSON(Text);
  ASSERT_TRUE(static_cast<bool>(P)) << P.Error;
  const JSONValue *Counters = P.Value.find("counters");
  ASSERT_NE(Counters, nullptr);
  const JSONValue *Ops = Counters->find("pipeline/ops");
  ASSERT_NE(Ops, nullptr);
  EXPECT_EQ(Ops->getNumber(), 1234.0);

  std::string BadError;
  EXPECT_FALSE(writeStatsJSONFile(R, "/nonexistent-dir/x.json", &BadError));
  EXPECT_FALSE(BadError.empty());
}

TEST(PassTimer, ReportsOnceAndOnlyWhenRegistryGiven) {
  StatsRegistry R;
  {
    PassTimer T(&R, "stage");
    double Ms = T.stop();
    EXPECT_GE(Ms, 0.0);
    EXPECT_EQ(T.stop(), Ms); // idempotent; no double report
  }
  EXPECT_EQ(R.timesMs().size(), 1u);
  { PassTimer T(nullptr, "ignored"); } // null registry: no-op
  EXPECT_EQ(R.timesMs().size(), 1u);
}

TEST(JSON, WriterIsDeterministicAndParserStrict) {
  JSONValue O = JSONValue::object();
  O.set("int", JSONValue::number(42));
  O.set("frac", JSONValue::number(0.5));
  O.set("s", JSONValue::str("quote \" and \n newline"));
  JSONValue Arr = JSONValue::array();
  Arr.append(JSONValue::boolean(true));
  Arr.append(JSONValue::null());
  O.set("arr", Arr);

  std::string Compact = writeJSON(O, /*Pretty=*/false);
  EXPECT_EQ(Compact, writeJSON(O, false)); // pure function of the value
  JSONParseResult P = parseJSON(Compact);
  ASSERT_TRUE(static_cast<bool>(P)) << P.Error;
  EXPECT_EQ(P.Value.find("int")->getNumber(), 42.0);
  EXPECT_EQ(P.Value.find("frac")->getNumber(), 0.5);
  EXPECT_EQ(P.Value.find("s")->getString(), "quote \" and \n newline");
  ASSERT_TRUE(P.Value.find("arr")->isArray());
  EXPECT_EQ(P.Value.find("arr")->items().size(), 2u);
  // Pretty output parses back to the same document too.
  EXPECT_EQ(writeJSON(parseJSON(writeJSON(O, true)).Value, false), Compact);

  EXPECT_FALSE(static_cast<bool>(parseJSON("{\"a\": 1,}")));
  EXPECT_FALSE(static_cast<bool>(parseJSON("{\"a\": 1} trailing")));
  EXPECT_FALSE(static_cast<bool>(parseJSON("")));
}

//===- tests/support/FramingTest.cpp - LineReader edge cases --------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The byte-level framing contract (support/Framing.h): frames arrive
// from untrusted peers over descriptors that deliver bytes at arbitrary
// boundaries. The reader must reassemble torn frames, deliver a final
// unterminated line, and reject an over-long line *while reading* --
// holding at most O(cap) bytes no matter how much the peer sends.
//
//===----------------------------------------------------------------------===//

#include "support/Framing.h"

#include <gtest/gtest.h>

#include <csignal>
#include <fcntl.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cpr;

namespace {

// Writes to a peer-closed socket must surface as writeAll() == false,
// not kill the test process (the daemon installs the same guard).
struct IgnoreSigpipe {
  IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} IgnoreSigpipeInit;

/// A connected socketpair; W is the peer end the test writes into.
struct Pair {
  int R = -1, W = -1;
  Pair() {
    int FDs[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, FDs), 0);
    R = FDs[0];
    W = FDs[1];
  }
  ~Pair() {
    if (R >= 0)
      ::close(R);
    if (W >= 0)
      ::close(W);
  }
  void closeWrite() {
    ::close(W);
    W = -1;
  }
  void send(const std::string &S) {
    ASSERT_TRUE(writeAll(W, S));
  }
};

TEST(Framing, TornFrameAcrossArbitraryReadBoundaries) {
  // Deliver "alpha\nbeta\n" one byte at a time: every read() boundary a
  // stream socket could produce. Both frames must reassemble intact.
  const std::string Input = "alpha\nbeta\n";
  Pair P;
  std::thread Writer([&] {
    for (char C : Input)
      writeAll(P.W, std::string(1, C));
    P.closeWrite();
  });
  LineReader Reader(P.R);
  std::string Line;
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "alpha");
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "beta");
  EXPECT_FALSE(Reader.readLine(Line));
  EXPECT_TRUE(Reader.error().empty()) << Reader.error();
  Writer.join();
}

TEST(Framing, FinalUnterminatedLineIsDeliveredBeforeEof) {
  // `printf '...' | cprd --stdio` has no trailing newline; the last
  // partial line is still a frame.
  Pair P;
  P.send("one\ntrailing-no-newline");
  P.closeWrite();
  LineReader Reader(P.R);
  std::string Line;
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "one");
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "trailing-no-newline");
  EXPECT_FALSE(Reader.readLine(Line)); // clean EOF now
  EXPECT_TRUE(Reader.error().empty());
}

TEST(Framing, IncrementalNextReportsNeedMoreThenFrame) {
  Pair P;
  LineReader Reader(P.R);
  // Non-blocking read end: with nothing buffered and nothing readable,
  // next() must report NeedMore, not block.
  ASSERT_EQ(::fcntl(P.R, F_SETFL, O_NONBLOCK), 0);
  std::string Line;
  EXPECT_EQ(Reader.next(Line), LineReader::Result::NeedMore);
  P.send("half");
  EXPECT_EQ(Reader.next(Line), LineReader::Result::NeedMore); // no newline yet
  P.send("-frame\n");
  // One read() per call: first call ingests, possibly a second delivers.
  LineReader::Result R = Reader.next(Line);
  if (R == LineReader::Result::NeedMore)
    R = Reader.next(Line);
  EXPECT_EQ(R, LineReader::Result::Frame);
  EXPECT_EQ(Line, "half-frame");
  P.closeWrite();
  EXPECT_EQ(Reader.next(Line), LineReader::Result::Eof);
}

TEST(Framing, OversizedLineRejectedWithoutBufferingTheWholePayload) {
  // Cap at 64 bytes, then send a far larger newline-free payload. The
  // reader must flag the error as soon as the buffered tail crosses the
  // cap -- long before the peer finishes sending -- and must stop
  // consuming input (the unread remainder stays in the socket).
  constexpr size_t Cap = 64;
  const size_t PayloadSize = 1u << 20; // 1 MiB, 16384x the cap
  Pair P;
  std::thread Writer([&] {
    std::string Chunk(4096, 'x');
    size_t Sent = 0;
    // A full 1 MiB send could block once the reader stops draining;
    // best-effort, stop on failure.
    while (Sent < PayloadSize && writeAll(P.W, Chunk))
      Sent += Chunk.size();
  });
  LineReader Reader(P.R, Cap);
  std::string Line;
  EXPECT_FALSE(Reader.readLine(Line));
  EXPECT_NE(Reader.error().find("exceeds"), std::string::npos)
      << Reader.error();
  // O(cap) memory: the socket still holds unread bytes, proving the
  // reader did not slurp the stream looking for a newline.
  ::close(P.R);
  P.R = -1;
  Writer.join();
}

TEST(Framing, OversizedDetectionCountsTheBufferedTailOnly) {
  // Frames *before* the oversized one are unaffected; the cap applies to
  // the unconsumed tail, not to cumulative input.
  constexpr size_t Cap = 16;
  Pair P;
  P.send("a\nb\nc\n"); // 3 short frames, 6 bytes total
  P.send(std::string(Cap, 'z')); // then a line that can never fit
  P.closeWrite();
  LineReader Reader(P.R, Cap);
  std::string Line;
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "a");
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "b");
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "c");
  EXPECT_FALSE(Reader.readLine(Line));
  EXPECT_NE(Reader.error().find("exceeds"), std::string::npos);
}

TEST(Framing, EmptyLinesAreFrames) {
  Pair P;
  P.send("\n\nx\n");
  P.closeWrite();
  LineReader Reader(P.R);
  std::string Line;
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "");
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "");
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "x");
  EXPECT_FALSE(Reader.readLine(Line));
}

TEST(Framing, HasBufferedReflectsUnconsumedBytes) {
  Pair P;
  P.send("one\ntwo\n");
  P.closeWrite();
  LineReader Reader(P.R);
  std::string Line;
  EXPECT_FALSE(Reader.hasBuffered());
  ASSERT_TRUE(Reader.readLine(Line));
  // "two\n" is already buffered: the poll()-before-read server loop must
  // drain it without waiting on the descriptor.
  EXPECT_TRUE(Reader.hasBuffered());
  ASSERT_TRUE(Reader.readLine(Line));
  EXPECT_EQ(Line, "two");
  EXPECT_FALSE(Reader.hasBuffered());
}

TEST(Framing, WriteAllSurvivesLargePayloads) {
  // writeAll must retry short writes; a payload much larger than the
  // socket buffer forces them.
  Pair P;
  const std::string Payload(1u << 20, 'y');
  std::string Got;
  std::thread Drainer([&] {
    char Buf[65536];
    ssize_t N;
    while ((N = ::read(P.R, Buf, sizeof(Buf))) > 0)
      Got.append(Buf, static_cast<size_t>(N));
  });
  ASSERT_TRUE(writeAll(P.W, Payload));
  P.closeWrite();
  Drainer.join();
  EXPECT_EQ(Got.size(), Payload.size());
  EXPECT_EQ(Got, Payload);
}

} // namespace

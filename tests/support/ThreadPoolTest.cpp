//===- tests/support/ThreadPoolTest.cpp - Work-queue pool tests -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace cpr;

TEST(ThreadPool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::defaultThreads(), 1u);
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), ThreadPool::defaultThreads());
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futs;
  for (int I = 0; I < 32; ++I)
    Futs.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Futs[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPool, SingleWorkerRunsInSubmissionOrder) {
  // With one worker the FIFO queue implies strict submission order.
  ThreadPool Pool(1);
  std::vector<int> Order;
  std::vector<std::future<void>> Futs;
  for (int I = 0; I < 16; ++I)
    Futs.push_back(Pool.submit([&Order, I] { Order.push_back(I); }));
  for (std::future<void> &F : Futs)
    F.get();
  std::vector<int> Expected(16);
  std::iota(Expected.begin(), Expected.end(), 0);
  EXPECT_EQ(Order, Expected);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool Pool(2);
  std::future<int> Fut =
      Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(Fut.get(), std::runtime_error);
  // The worker survives the throwing task.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Ran] { ++Ran; });
  }
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPool, StopDrainsPendingTasksBeforeJoining) {
  // The daemon's SIGTERM path: every task queued before stop() must run
  // to completion -- stop() may not drop work. One worker plus a slow
  // head task guarantees a deep backlog when stop() is called.
  std::atomic<int> Ran{0};
  ThreadPool Pool(1);
  std::vector<std::future<int>> Futures;
  Futures.push_back(Pool.submit([&Ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return Ran.fetch_add(1);
  }));
  for (int I = 1; I < 32; ++I)
    Futures.push_back(Pool.submit([&Ran] { return Ran.fetch_add(1); }));

  EXPECT_FALSE(Pool.stopping());
  Pool.stop(); // blocks until the drain completes
  EXPECT_TRUE(Pool.stopping());
  EXPECT_EQ(Ran.load(), 32);
  for (std::future<int> &F : Futures)
    EXPECT_NO_THROW(F.get()); // every future was fulfilled, none dropped

  Pool.stop(); // idempotent
  EXPECT_EQ(Ran.load(), 32);
}

TEST(ThreadPool, ConcurrentStopCallsAllDrain) {
  std::atomic<int> Ran{0};
  ThreadPool Pool(2);
  for (int I = 0; I < 64; ++I)
    Pool.submit([&Ran] { ++Ran; });
  std::vector<std::thread> Stoppers;
  for (int I = 0; I < 4; ++I)
    Stoppers.emplace_back([&Pool] { Pool.stop(); });
  for (std::thread &S : Stoppers)
    S.join();
  EXPECT_EQ(Ran.load(), 64);
  EXPECT_TRUE(Pool.stopping());
}

TEST(ParallelFor, InlineWhenPoolIsNull) {
  // Null pool: runs on the caller in index order.
  std::vector<size_t> Order;
  parallelFor(nullptr, 8, [&Order](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ParallelFor, CoversEveryIndexOnAPool) {
  ThreadPool Pool(4);
  std::vector<int> Hits(100, 0);
  parallelFor(&Pool, Hits.size(), [&Hits](size_t I) { ++Hits[I]; });
  for (int H : Hits)
    EXPECT_EQ(H, 1);
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  ThreadPool Pool(2);
  parallelFor(&Pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  ThreadPool Pool(4);
  std::atomic<int> Completed{0};
  try {
    parallelFor(&Pool, 16, [&Completed](size_t I) {
      if (I == 3)
        throw std::invalid_argument("three");
      if (I == 11)
        throw std::runtime_error("eleven");
      ++Completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument &E) {
    EXPECT_STREQ(E.what(), "three"); // index 3 wins over index 11
  }
  // All non-throwing iterations still ran to completion.
  EXPECT_EQ(Completed.load(), 14);
}

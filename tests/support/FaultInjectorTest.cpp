//===- tests/support/FaultInjectorTest.cpp - Fault-site registry ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cpr;

namespace {

TEST(FaultInjectorTest, CatalogIsRegisteredUpFront) {
  std::vector<std::string> Sites = fault::sites();
  // The full catalog must be iterable without any arming having happened
  // (campaigns enumerate it).
  for (const char *Name :
       {"alloc", "cpr.restructure.plan", "cpr.restructure.compensation",
        "cpr.offtrace.move", "ir.verify", "interp.oracle",
        "pipeline.transform", "serve.cache.insert", "serve.dispatch.enqueue",
        "serve.frame.decode", "serve.socket.write"}) {
    EXPECT_TRUE(fault::isKnownSite(Name)) << Name;
    EXPECT_NE(std::find(Sites.begin(), Sites.end(), Name), Sites.end())
        << Name;
  }
  EXPECT_TRUE(std::is_sorted(Sites.begin(), Sites.end()));
  EXPECT_FALSE(fault::isKnownSite("no.such.site"));
}

TEST(FaultInjectorTest, DisarmedIsFree) {
  EXPECT_EQ(fault::armedSite(), "");
  EXPECT_FALSE(fault::shouldFail("alloc"));
  EXPECT_FALSE(fault::fired());
  EXPECT_EQ(fault::armedHits(), 0u);
}

TEST(FaultInjectorTest, NthHitSelection) {
  fault::arm("alloc", 3);
  EXPECT_EQ(fault::armedSite(), "alloc");
  EXPECT_FALSE(fault::shouldFail("alloc")); // hit 1
  EXPECT_FALSE(fault::shouldFail("alloc")); // hit 2
  EXPECT_FALSE(fault::fired());
  EXPECT_TRUE(fault::shouldFail("alloc")); // hit 3: fires
  EXPECT_TRUE(fault::fired());
  // Fires exactly once.
  EXPECT_FALSE(fault::shouldFail("alloc"));
  EXPECT_EQ(fault::armedHits(), 4u);
  fault::disarm();
  EXPECT_EQ(fault::armedSite(), "");
  EXPECT_FALSE(fault::fired());
}

TEST(FaultInjectorTest, OtherSitesDoNotCountOrFire) {
  fault::ScopedFault Armed("ir.verify", 1);
  EXPECT_FALSE(fault::shouldFail("alloc"));
  EXPECT_FALSE(fault::shouldFail("interp.oracle"));
  EXPECT_EQ(fault::armedHits(), 0u);
  EXPECT_TRUE(fault::shouldFail("ir.verify"));
}

TEST(FaultInjectorTest, ScopedFaultDisarmsOnExit) {
  {
    fault::ScopedFault Armed("pipeline.transform");
    EXPECT_EQ(fault::armedSite(), "pipeline.transform");
  }
  EXPECT_EQ(fault::armedSite(), "");
  EXPECT_FALSE(fault::shouldFail("pipeline.transform"));
}

TEST(FaultInjectorTest, RearmResetsHitCount) {
  fault::arm("alloc", 2);
  EXPECT_FALSE(fault::shouldFail("alloc"));
  fault::arm("alloc", 2); // re-arm: the earlier hit is forgotten
  EXPECT_FALSE(fault::shouldFail("alloc"));
  EXPECT_TRUE(fault::shouldFail("alloc"));
  fault::disarm();
}

TEST(FaultInjectorTest, PrivateSitesRegisterOnTheFly) {
  const char *Private = "test.private.site";
  EXPECT_TRUE(fault::arm(Private, 1));
  EXPECT_TRUE(fault::isKnownSite(Private));
  EXPECT_TRUE(fault::shouldFail(Private));
  fault::disarm();
}

TEST(FaultInjectorTest, ZeroNthHitArmsNothing) {
  EXPECT_FALSE(fault::arm("alloc", 0));
  EXPECT_EQ(fault::armedSite(), "");
  EXPECT_FALSE(fault::shouldFail("alloc"));
}

} // namespace

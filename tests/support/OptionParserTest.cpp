//===- tests/support/OptionParserTest.cpp - Option table tests ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/OptionParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// Builds argv from string literals for parse() calls.
struct Argv {
  explicit Argv(std::initializer_list<const char *> Args) {
    Strings.emplace_back("tool");
    for (const char *A : Args)
      Strings.emplace_back(A);
    for (std::string &S : Strings)
      Ptrs.push_back(S.data());
  }
  int argc() { return static_cast<int>(Ptrs.size()); }
  char **argv() { return Ptrs.data(); }
  std::vector<std::string> Strings;
  std::vector<char *> Ptrs;
};

} // namespace

TEST(OptionTable, ParsesAllArgumentShapes) {
  bool Flag = false;
  unsigned N = 0;
  double D = 0.0;
  std::string S;
  std::vector<std::string> Regs;
  OptionTable T;
  T.addFlag("--flag", "a flag", Flag);
  T.addUnsigned("--n", "<n>", "a count", N);
  T.addDouble("--d", "<f>", "a ratio", D);
  T.addString("--s", "<str>", "a string", S);
  T.add({"--reg", OptArg::Separate, "rN=V", "repeatable",
         [&Regs](const std::string &V) {
           Regs.push_back(V);
           return true;
         }});

  Argv A({"--flag", "--n=42", "--d=0.75", "--s=hello", "--reg", "r1=5",
          "--reg", "r2=6", "input.cpr"});
  std::string Error;
  std::vector<std::string> Positional;
  ASSERT_TRUE(T.parse(A.argc(), A.argv(), Error, &Positional)) << Error;
  EXPECT_TRUE(Flag);
  EXPECT_EQ(N, 42u);
  EXPECT_EQ(D, 0.75);
  EXPECT_EQ(S, "hello");
  EXPECT_EQ(Regs, (std::vector<std::string>{"r1=5", "r2=6"}));
  EXPECT_EQ(Positional, (std::vector<std::string>{"input.cpr"}));
}

TEST(OptionTable, FlagCanClearATarget) {
  bool Enabled = true;
  OptionTable T;
  T.addFlag("--no-thing", "disable", Enabled, /*Value=*/false);
  Argv A({"--no-thing"});
  std::string Error;
  ASSERT_TRUE(T.parse(A.argc(), A.argv(), Error, nullptr));
  EXPECT_FALSE(Enabled);
}

TEST(OptionTable, RejectsMalformedInput) {
  unsigned N = 0;
  std::vector<std::string> Seps;
  OptionTable T;
  T.addUnsigned("--n", "<n>", "a count", N);
  T.add({"--sep", OptArg::Separate, "<v>", "separate",
         [&Seps](const std::string &V) {
           Seps.push_back(V);
           return true;
         }});
  std::string Error;

  Argv Bad({"--n=notanumber"});
  EXPECT_FALSE(T.parse(Bad.argc(), Bad.argv(), Error, nullptr));
  EXPECT_NE(Error.find("--n"), std::string::npos);

  Argv Missing({"--n"});
  EXPECT_FALSE(T.parse(Missing.argc(), Missing.argv(), Error, nullptr));

  Argv NoArg({"--sep"});
  EXPECT_FALSE(T.parse(NoArg.argc(), NoArg.argv(), Error, nullptr));

  Argv Unknown({"--mystery"});
  EXPECT_FALSE(T.parse(Unknown.argc(), Unknown.argv(), Error, nullptr));
  EXPECT_NE(Error.find("--mystery"), std::string::npos);
}

TEST(OptionTable, CollectsUnknownOptionsWhenRequested) {
  bool Flag = false;
  OptionTable T;
  T.addFlag("--flag", "a flag", Flag);
  Argv A({"--benchmark_filter=foo", "--flag", "--benchmark_repetitions=3"});
  std::string Error;
  std::vector<std::string> Unknown;
  ASSERT_TRUE(T.parse(A.argc(), A.argv(), Error, nullptr, &Unknown));
  EXPECT_TRUE(Flag);
  EXPECT_EQ(Unknown, (std::vector<std::string>{"--benchmark_filter=foo",
                                               "--benchmark_repetitions=3"}));
}

TEST(OptionTable, HelpIsGeneratedFromTheTable) {
  bool Flag = false;
  unsigned N = 0;
  OptionTable T;
  T.addFlag("--flag", "turns the thing on", Flag);
  T.addUnsigned("--threads", "<n>", "worker threads", N);
  std::string Help = T.help("usage: tool [options]");
  EXPECT_NE(Help.find("usage: tool [options]"), std::string::npos);
  EXPECT_NE(Help.find("--flag"), std::string::npos);
  EXPECT_NE(Help.find("turns the thing on"), std::string::npos);
  EXPECT_NE(Help.find("--threads=<n>"), std::string::npos);
  EXPECT_NE(Help.find("worker threads"), std::string::npos);
}

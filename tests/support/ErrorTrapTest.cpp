//===- tests/support/ErrorTrapTest.cpp - Fatal-error trap semantics -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>

using namespace cpr;

namespace {

TEST(ErrorTrapTest, TrapConvertsFatalToException) {
  EXPECT_FALSE(ScopedFatalErrorTrap::active());
  ScopedFatalErrorTrap Trap;
  EXPECT_TRUE(ScopedFatalErrorTrap::active());
  try {
    reportFatalError("boom");
    FAIL() << "reportFatalError returned";
  } catch (const FatalError &E) {
    EXPECT_EQ(E.message(), "boom");
  }
}

TEST(ErrorTrapTest, TrapsNest) {
  ScopedFatalErrorTrap Outer;
  {
    ScopedFatalErrorTrap Inner;
    EXPECT_TRUE(ScopedFatalErrorTrap::active());
    EXPECT_THROW(reportFatalError("inner"), FatalError);
  }
  // The inner trap's destruction must not deactivate the outer one.
  EXPECT_TRUE(ScopedFatalErrorTrap::active());
  EXPECT_THROW(reportFatalError("outer"), FatalError);
}

TEST(ErrorTrapTest, TrapIsThreadLocal) {
  ScopedFatalErrorTrap Trap;
  // A trap on this thread does not leak into pool workers.
  ThreadPool Pool(2);
  std::future<bool> ActiveOnWorker =
      Pool.submit([] { return ScopedFatalErrorTrap::active(); });
  EXPECT_FALSE(ActiveOnWorker.get());
}

TEST(ErrorTrapTest, WorkerTrapContainsItsOwnFailure) {
  // Each worker installs its own trap; a fatal error inside one task is
  // contained there and classified, without perturbing other tasks.
  ThreadPool Pool(4);
  std::atomic<unsigned> Caught{0}, Clean{0};
  parallelFor(&Pool, 16, [&](size_t I) {
    ScopedFatalErrorTrap Trap;
    try {
      if (I % 4 == 0)
        reportFatalError("task " + std::to_string(I));
      ++Clean;
    } catch (const FatalError &) {
      ++Caught;
    }
  });
  EXPECT_EQ(Caught.load(), 4u);
  EXPECT_EQ(Clean.load(), 12u);
}

TEST(ErrorTrapTest, UncaughtWorkerFatalPropagatesThroughFuture) {
  // When the task does not catch, the FatalError travels through the
  // std::future like any exception -- the documented escape hatch.
  ThreadPool Pool(2);
  std::future<void> Fut = Pool.submit([] {
    ScopedFatalErrorTrap Trap;
    reportFatalError("escapes the task");
  });
  try {
    Fut.get();
    FAIL() << "future.get() did not throw";
  } catch (const FatalError &E) {
    EXPECT_EQ(E.message(), "escapes the task");
  }
}

TEST(ErrorTrapTest, ParallelForRethrowsLowestIndexFatal) {
  ThreadPool Pool(4);
  try {
    parallelFor(&Pool, 8, [&](size_t I) {
      ScopedFatalErrorTrap Trap;
      if (I >= 3)
        reportFatalError("index " + std::to_string(I));
    });
    FAIL() << "parallelFor did not rethrow";
  } catch (const FatalError &E) {
    EXPECT_EQ(E.message(), "index 3");
  }
}

TEST(ErrorTrapTest, UnreachableIsTrappedToo) {
  ScopedFatalErrorTrap Trap;
  EXPECT_THROW(CPR_UNREACHABLE("canary"), FatalError);
}

} // namespace

//===- tests/support/DiagnosticTest.cpp - Recoverable diagnostics ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(DiagnosticTest, Formatting) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = DiagCode::TransformFault;
  D.Message = "something broke";
  EXPECT_EQ(D.str(), "error: something broke");

  D.Site = "cpr.offtrace.move";
  EXPECT_EQ(D.str(), "error [cpr.offtrace.move]: something broke");

  D.Site.clear();
  D.Line = 7;
  D.Severity = DiagSeverity::Remark;
  EXPECT_EQ(D.str(), "remark [7]: something broke");

  D.Site = "input.cpr";
  EXPECT_EQ(D.str(), "remark [input.cpr:7]: something broke");
}

TEST(DiagnosticTest, SeverityAndCodeNames) {
  EXPECT_STREQ(diagSeverityName(DiagSeverity::Remark), "remark");
  EXPECT_STREQ(diagSeverityName(DiagSeverity::Warning), "warning");
  EXPECT_STREQ(diagSeverityName(DiagSeverity::Error), "error");
  EXPECT_STREQ(diagSeverityName(DiagSeverity::Fatal), "fatal");
  EXPECT_STREQ(diagCodeName(DiagCode::ParseError), "parse-error");
  EXPECT_STREQ(diagCodeName(DiagCode::BudgetExhausted), "budget-exhausted");
  EXPECT_STREQ(diagCodeName(DiagCode::RegionRolledBack),
               "region-rolled-back");
}

TEST(DiagnosticTest, StatusSuccessAndFailure) {
  Status Ok;
  EXPECT_TRUE(Ok.ok());
  EXPECT_TRUE(static_cast<bool>(Ok));

  Status Bad = Status::error(DiagCode::VerifyFailed, "bad IR", "ir.verify");
  EXPECT_FALSE(Bad.ok());
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.diagnostic().Code, DiagCode::VerifyFailed);
  EXPECT_EQ(Bad.diagnostic().Severity, DiagSeverity::Error);
  EXPECT_EQ(Bad.diagnostic().Message, "bad IR");
  EXPECT_EQ(Bad.diagnostic().Site, "ir.verify");

  Diagnostic Taken = Bad.takeDiagnostic();
  EXPECT_EQ(Taken.Message, "bad IR");
}

TEST(DiagnosticTest, ExpectedValueAndError) {
  Expected<int> V(42);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 42);
  EXPECT_EQ(V.takeValue(), 42);

  Expected<int> E(Status::error(DiagCode::RunFailed, "did not halt"));
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.diagnostic().Code, DiagCode::RunFailed);
  Status S = E.status();
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.diagnostic().Message, "did not halt");
}

TEST(DiagnosticTest, EngineCountsAndKeeps) {
  DiagnosticEngine Eng;
  EXPECT_TRUE(Eng.empty());
  Eng.report(DiagSeverity::Error, DiagCode::TransformFault, "e1");
  Eng.report(DiagSeverity::Remark, DiagCode::RegionRolledBack, "r1");
  Eng.report(DiagSeverity::Error, DiagCode::OracleMismatch, "e2", "site");
  EXPECT_EQ(Eng.errorCount(), 2u);
  EXPECT_EQ(Eng.count(DiagSeverity::Remark), 1u);
  EXPECT_EQ(Eng.totalCount(), 3u);

  std::vector<Diagnostic> Kept = Eng.diagnostics();
  ASSERT_EQ(Kept.size(), 3u);
  EXPECT_EQ(Kept[0].Message, "e1"); // oldest first
  EXPECT_EQ(Kept[2].Site, "site");
}

TEST(DiagnosticTest, EngineReportStatus) {
  DiagnosticEngine Eng;
  EXPECT_TRUE(Eng.report(Status()));
  EXPECT_EQ(Eng.totalCount(), 0u);
  EXPECT_FALSE(Eng.report(Status::error(DiagCode::IOError, "io")));
  EXPECT_EQ(Eng.errorCount(), 1u);
}

TEST(DiagnosticTest, EngineBoundsKeptDiagnostics) {
  DiagnosticEngine Eng;
  for (unsigned I = 0; I < DiagnosticEngine::MaxKept + 10; ++I)
    Eng.report(DiagSeverity::Warning, DiagCode::Internal,
               "w" + std::to_string(I));
  // Counters keep counting; the kept list is bounded, oldest dropped.
  EXPECT_EQ(Eng.count(DiagSeverity::Warning), DiagnosticEngine::MaxKept + 10);
  std::vector<Diagnostic> Kept = Eng.diagnostics();
  ASSERT_EQ(Kept.size(), DiagnosticEngine::MaxKept);
  EXPECT_EQ(Kept.front().Message, "w10");
}

TEST(DiagnosticTest, EngineMirrorsIntoStats) {
  StatsRegistry Stats;
  DiagnosticEngine Eng(&Stats, "f/");
  Eng.report(DiagSeverity::Error, DiagCode::TransformFault, "e");
  Eng.report(DiagSeverity::Error, DiagCode::TransformFault, "e");
  Eng.report(DiagSeverity::Remark, DiagCode::RegionRolledBack, "r");
  EXPECT_EQ(Stats.count("f/diag/error"), 2.0);
  EXPECT_EQ(Stats.count("f/diag/remark"), 1.0);
  EXPECT_EQ(Stats.count("f/diag/warning"), 0.0);
}

TEST(DiagnosticTest, EngineIsThreadSafe) {
  StatsRegistry Stats;
  DiagnosticEngine Eng(&Stats, "");
  ThreadPool Pool(4);
  parallelFor(&Pool, 64, [&](size_t I) {
    Eng.report(I % 2 ? DiagSeverity::Error : DiagSeverity::Remark,
               DiagCode::Internal, "m" + std::to_string(I));
  });
  EXPECT_EQ(Eng.totalCount(), 64u);
  EXPECT_EQ(Eng.errorCount(), 32u);
  EXPECT_EQ(Stats.count("diag/error"), 32.0);
}

TEST(DiagnosticTest, ExitCodesAreDistinct) {
  // Scripts depend on these exact values; changing one is an interface
  // break (docs/ROBUSTNESS.md).
  EXPECT_EQ(exit_codes::Success, 0);
  EXPECT_EQ(exit_codes::Failure, 1);
  EXPECT_EQ(exit_codes::UsageError, 2);
  EXPECT_EQ(exit_codes::ParseError, 3);
  EXPECT_EQ(exit_codes::VerifyError, 4);
}

} // namespace

//===- tests/support/JSONTest.cpp - Strict JSON parser tests ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The parser sits on the cprd trust boundary, so the hardening rules are
// contractual: duplicate object keys and unterminated strings are
// rejected with a recoverable DiagCode::ParseError (last-key-wins would
// silently discard attacker-controlled data; an abort would kill the
// daemon), and every failure carries the byte offset.
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include "gtest/gtest.h"

using namespace cpr;

namespace {

void expectParseError(const std::string &Text) {
  JSONParseResult R = parseJSON(Text);
  ASSERT_FALSE(static_cast<bool>(R)) << Text;
  EXPECT_EQ(R.Code, DiagCode::ParseError) << Text;
  EXPECT_FALSE(R.Error.empty()) << Text;
}

TEST(JSON, RoundTripsDocuments) {
  JSONParseResult R = parseJSON(
      "{\"a\":1,\"b\":\"two\",\"c\":[true,false,null],\"d\":{\"e\":2.5}}");
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  EXPECT_DOUBLE_EQ(R.Value.find("a")->getNumber(), 1.0);
  EXPECT_EQ(R.Value.find("b")->getString(), "two");
  EXPECT_EQ(R.Value.find("c")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(R.Value.find("d")->find("e")->getNumber(), 2.5);

  JSONParseResult Again = parseJSON(writeJSON(R.Value));
  ASSERT_TRUE(static_cast<bool>(Again));
  EXPECT_EQ(writeJSON(Again.Value), writeJSON(R.Value));
}

TEST(JSON, RejectsDuplicateKeys) {
  expectParseError("{\"k\":1,\"k\":2}");
  expectParseError("{\"a\":{\"x\":1,\"x\":2}}"); // nested objects too
}

TEST(JSON, RejectsUnterminatedStrings) {
  expectParseError("{\"k\":\"open");
  expectParseError("\"never closed");
  expectParseError("{\"k");
}

TEST(JSON, RejectsTrailingGarbage) {
  expectParseError("{\"k\":1} trailing");
  expectParseError("{} {}");
}

TEST(JSON, FailureIsARecoverableDiagnostic) {
  JSONParseResult R = parseJSON("{\"k\":1,\"k\":2}");
  ASSERT_FALSE(static_cast<bool>(R));
  Diagnostic D = R.diagnostic("cprd.frame");
  EXPECT_EQ(D.Severity, DiagSeverity::Error);
  EXPECT_EQ(D.Code, DiagCode::ParseError);
  EXPECT_EQ(D.Site, "cprd.frame");
  EXPECT_FALSE(D.Message.empty());
  EXPECT_FALSE(R.status("cprd.frame").ok());
}

TEST(JSON, OffsetPointsIntoTheDocument) {
  JSONParseResult R = parseJSON("{\"aa\":1,\"aa\":2}");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_GT(R.Offset, 0u);
  EXPECT_LE(R.Offset, std::string("{\"aa\":1,\"aa\":2}").size());
}

} // namespace

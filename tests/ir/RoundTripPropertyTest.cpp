//===- tests/ir/RoundTripPropertyTest.cpp - Random round trips ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// Property: for random generated programs, print -> parse -> print is a
// fixed point, the parsed program verifies, and it behaves identically to
// the original in the interpreter.
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"
#include "pipeline/CompilerPipeline.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "../cpr/RandomProgram.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripPropertyTest, PrintParsePrintIsFixedPoint) {
  KernelProgram P = cpr_test::makeRandomProgram(GetParam());
  std::string Once = printFunction(*P.Func);
  ParseResult R = parseFunction(Once);
  ASSERT_TRUE(R) << "seed " << GetParam() << ": " << R.Error << "\n"
                 << Once;
  EXPECT_TRUE(verifyFunction(*R.Func).empty());
  EXPECT_EQ(printFunction(*R.Func), Once);
}

TEST_P(RoundTripPropertyTest, ParsedProgramBehavesIdentically) {
  KernelProgram P = cpr_test::makeRandomProgram(GetParam());
  std::string Text = printFunction(*P.Func);
  ParseResult R = parseFunction(Text);
  ASSERT_TRUE(R);
  EquivResult E =
      checkEquivalence(*P.Func, *R.Func, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << "seed " << GetParam() << ": " << E.Detail;
}

TEST_P(RoundTripPropertyTest, TransformedProgramsAlsoRoundTrip) {
  // The ICBM output uses the full vocabulary (wired actions, frp markers,
  // compensation blocks): it must survive the text format too.
  KernelProgram P = cpr_test::makeRandomProgram(GetParam());
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  std::unique_ptr<Function> T =
      applyControlCPR(*P.Func, Prof, CPROptions());
  std::string Once = printFunction(*T);
  ParseResult R = parseFunction(Once);
  ASSERT_TRUE(R) << "seed " << GetParam() << ": " << R.Error;
  EXPECT_EQ(printFunction(*R.Func), Once);
  EquivResult E = checkEquivalence(*T, *R.Func, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << "seed " << GetParam() << ": " << E.Detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Range<uint64_t>(100, 130));

} // namespace

//===- tests/ir/IRApiTest.cpp - Core IR API tests -------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(RegTest, ClassesAndNames) {
  EXPECT_EQ(Reg::gpr(21).str(), "r21");
  EXPECT_EQ(Reg::fpr(3).str(), "f3");
  EXPECT_EQ(Reg::pred(61).str(), "p61");
  EXPECT_EQ(Reg::btr(41).str(), "b41");
  EXPECT_EQ(Reg::truePred().str(), "T");
  EXPECT_TRUE(Reg::truePred().isTruePred());
  EXPECT_FALSE(Reg::pred(1).isTruePred());
  EXPECT_NE(Reg::gpr(1), Reg::fpr(1));
  EXPECT_EQ(Reg::gpr(1), Reg(RegClass::GPR, 1));
}

TEST(OperandTest, Kinds) {
  Operand R = Operand::reg(Reg::gpr(5));
  Operand I = Operand::imm(-7);
  Operand L = Operand::label(3);
  EXPECT_TRUE(R.isReg());
  EXPECT_TRUE(I.isImm());
  EXPECT_TRUE(L.isLabel());
  EXPECT_EQ(I.getImm(), -7);
  EXPECT_EQ(L.getLabel(), 3u);
  EXPECT_EQ(R, Operand::reg(Reg::gpr(5)));
  EXPECT_NE(R, Operand::reg(Reg::gpr(6)));
  EXPECT_NE(I, Operand::imm(7));
}

TEST(OperationTest, ReadsAndDefines) {
  Function F("f");
  Operation Op = F.makeOp(Opcode::Add);
  Op.setGuard(Reg::pred(2));
  Op.addDef(Reg::gpr(1));
  Op.addSrc(Operand::reg(Reg::gpr(3)));
  Op.addSrc(Operand::imm(4));
  EXPECT_TRUE(Op.definesReg(Reg::gpr(1)));
  EXPECT_FALSE(Op.definesReg(Reg::gpr(3)));
  EXPECT_TRUE(Op.readsReg(Reg::gpr(3)));
  EXPECT_TRUE(Op.readsReg(Reg::pred(2))); // the guard counts as a read
  EXPECT_FALSE(Op.readsReg(Reg::gpr(1)));
}

TEST(FunctionTest, RegisterAllocationAvoidsCollisions) {
  Function F("f");
  Reg A = F.newReg(RegClass::GPR);
  Reg B = F.newReg(RegClass::GPR);
  Reg P = F.newReg(RegClass::PR);
  EXPECT_NE(A, B);
  EXPECT_NE(P.getId(), 0u) << "p0 is reserved for the true predicate";
  F.reserveRegId(Reg::gpr(100));
  EXPECT_GT(F.newReg(RegClass::GPR).getId(), 100u);
}

TEST(FunctionTest, BlocksAndLayout) {
  Function F("f");
  Block &A = F.addBlock("A");
  Block &B = F.addBlock("B");
  Block &Mid = F.insertBlock(1, "Mid");
  EXPECT_EQ(F.numBlocks(), 3u);
  EXPECT_EQ(&F.block(0), &A);
  EXPECT_EQ(&F.block(1), &Mid);
  EXPECT_EQ(&F.block(2), &B);
  EXPECT_EQ(F.layoutIndex(B.getId()), 2);
  EXPECT_EQ(F.blockByName("Mid"), &Mid);
  EXPECT_EQ(F.blockById(A.getId()), &A);
  EXPECT_EQ(F.blockByName("nope"), nullptr);
}

TEST(FunctionTest, CloneIsDeepAndIdPreserving) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r5
block @A:
  r5 = mov(1)
  p1:un = cmpp.eq(r5, 1)
  b1 = pbr(@B)
  branch(p1, b1)
  halt
block @B:
  halt
}
)");
  std::unique_ptr<Function> C = F->clone();
  EXPECT_EQ(printFunction(*F), printFunction(*C));
  // Ids preserved.
  EXPECT_EQ(F->block(0).ops()[0].getId(), C->block(0).ops()[0].getId());
  // Mutating the clone leaves the original untouched.
  C->block(0).ops()[0].srcs()[0] = Operand::imm(9);
  EXPECT_NE(printFunction(*F), printFunction(*C));
  // Fresh allocations in the clone do not collide with parsed registers.
  EXPECT_GT(C->newReg(RegClass::GPR).getId(), 5u);
}

TEST(FunctionTest, FindOpAndTotals) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = mov(1)
  halt
block @B:
  r2 = mov(2)
  halt
}
)");
  EXPECT_EQ(F->totalOps(), 4u);
  OpId Second = F->block(1).ops()[0].getId();
  auto [BI, OI] = F->findOp(Second);
  EXPECT_EQ(BI, 1);
  EXPECT_EQ(OI, 0);
  auto [NBI, NOI] = F->findOp(99999);
  EXPECT_EQ(NBI, -1);
  EXPECT_EQ(NOI, -1);
}

TEST(CFGTest, ResolvesBranchTargetsAndExits) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  b1 = pbr(@C)
  p1:un = cmpp.eq(r1, 0)
  branch(p1, b1)
  halt
block @B:
  halt
block @C:
  halt
}
)");
  const Block &A = F->block(0);
  EXPECT_EQ(resolveBranchTarget(A, 2), F->blockByName("C")->getId());

  std::vector<BlockExit> Exits = blockExits(*F, 0);
  // Branch exit + halt exit; the unguarded halt stops fall-through.
  ASSERT_EQ(Exits.size(), 2u);
  EXPECT_EQ(Exits[0].OpIdx, 2);
  EXPECT_EQ(Exits[0].Target, F->blockByName("C")->getId());
  EXPECT_EQ(Exits[1].Target, InvalidBlockId);

  std::vector<BlockId> Succs = blockSuccessors(*F, 0);
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0], F->blockByName("C")->getId());
}

TEST(CFGTest, FallThroughExit) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = mov(1)
block @B:
  halt
}
)");
  std::vector<BlockExit> Exits = blockExits(*F, 0);
  ASSERT_EQ(Exits.size(), 1u);
  EXPECT_TRUE(Exits[0].isFallThrough());
  EXPECT_EQ(Exits[0].Target, F->block(1).getId());
}

TEST(CFGTest, GuardedHaltDoesNotStopFallThrough) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  halt if p1
block @B:
  halt
}
)");
  std::vector<BlockExit> Exits = blockExits(*F, 0);
  ASSERT_EQ(Exits.size(), 2u);
  EXPECT_EQ(Exits[0].Target, InvalidBlockId); // the guarded halt
  EXPECT_TRUE(Exits[1].isFallThrough());
}

} // namespace

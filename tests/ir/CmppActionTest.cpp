//===- tests/ir/CmppActionTest.cpp - Table 1 semantics --------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// Exhaustively checks cmpp destination-action semantics against Table 1 of
// the paper, plus the algebraic properties (wired-write commutativity) the
// scheduler and ICBM rely on.
//
//===----------------------------------------------------------------------===//

#include "ir/CmppAction.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

// Table 1 of the paper. Rows: (guard, cmp). Columns: un uc on oc an ac.
// Entry: -1 = untouched, 0/1 = value written.
struct Table1Row {
  bool Guard;
  bool Cmp;
  int Expected[6]; // UN, UC, ON, OC, AN, AC
};

constexpr Table1Row Table1[] = {
    //            un  uc  on  oc  an  ac
    {false, false, {0, 0, -1, -1, -1, -1}},
    {false, true, {0, 0, -1, -1, -1, -1}},
    {true, false, {0, 1, -1, 1, 0, -1}},
    {true, true, {1, 0, 1, -1, -1, 0}},
};

constexpr CmppAction AllActions[6] = {CmppAction::UN, CmppAction::UC,
                                      CmppAction::ON, CmppAction::OC,
                                      CmppAction::AN, CmppAction::AC};

TEST(CmppActionTest, MatchesPaperTable1Exactly) {
  for (const Table1Row &Row : Table1) {
    for (int Col = 0; Col < 6; ++Col) {
      std::optional<bool> R =
          evalCmppAction(AllActions[Col], Row.Guard, Row.Cmp);
      SCOPED_TRACE(std::string("action=") + cmppActionName(AllActions[Col]) +
                   " guard=" + std::to_string(Row.Guard) +
                   " cmp=" + std::to_string(Row.Cmp));
      if (Row.Expected[Col] < 0) {
        EXPECT_FALSE(R.has_value()) << "destination should be untouched";
      } else {
        ASSERT_TRUE(R.has_value()) << "destination should be written";
        EXPECT_EQ(*R, Row.Expected[Col] != 0);
      }
    }
  }
}

TEST(CmppActionTest, UnconditionalTargetsAlwaysWrite) {
  for (bool G : {false, true})
    for (bool C : {false, true}) {
      EXPECT_TRUE(evalCmppAction(CmppAction::UN, G, C).has_value());
      EXPECT_TRUE(evalCmppAction(CmppAction::UC, G, C).has_value());
    }
}

TEST(CmppActionTest, WiredOrWritesOnlyTrue) {
  for (CmppAction A : {CmppAction::ON, CmppAction::OC})
    for (bool G : {false, true})
      for (bool C : {false, true}) {
        std::optional<bool> R = evalCmppAction(A, G, C);
        if (R) {
          EXPECT_TRUE(*R) << "wired-or may only deposit true";
        }
      }
}

TEST(CmppActionTest, WiredAndWritesOnlyFalse) {
  for (CmppAction A : {CmppAction::AN, CmppAction::AC})
    for (bool G : {false, true})
      for (bool C : {false, true}) {
        std::optional<bool> R = evalCmppAction(A, G, C);
        if (R) {
          EXPECT_FALSE(*R) << "wired-and may only deposit false";
        }
      }
}

/// Simulates a sequence of wired writes applied to an initial value.
bool applySequence(bool Init, const std::vector<std::pair<bool, bool>> &Writes,
                   CmppAction Act) {
  bool V = Init;
  for (auto [G, C] : Writes) {
    std::optional<bool> W = evalCmppAction(Act, G, C);
    if (W)
      V = *W;
  }
  return V;
}

TEST(CmppActionTest, WiredWritesCommute) {
  // Any permutation of wired writes to one register yields the same final
  // value -- the property that lets the scheduler treat them as unordered.
  for (CmppAction Act : {CmppAction::ON, CmppAction::OC, CmppAction::AN,
                         CmppAction::AC}) {
    for (int Mask = 0; Mask < 16; ++Mask) {
      std::vector<std::pair<bool, bool>> Writes = {
          {(Mask & 1) != 0, (Mask & 2) != 0},
          {(Mask & 4) != 0, (Mask & 8) != 0},
      };
      for (bool Init : {false, true}) {
        bool Fwd = applySequence(Init, Writes, Act);
        std::swap(Writes[0], Writes[1]);
        bool Rev = applySequence(Init, Writes, Act);
        std::swap(Writes[0], Writes[1]);
        EXPECT_EQ(Fwd, Rev)
            << "action " << cmppActionName(Act) << " mask " << Mask;
      }
    }
  }
}

TEST(CmppActionTest, DisjunctionAccumulation) {
  // Computing c1 | c2 | c3 by wired-or into a zero-initialized register,
  // as the off-trace FRP evaluation does.
  for (int Mask = 0; Mask < 8; ++Mask) {
    bool C1 = Mask & 1, C2 = Mask & 2, C3 = Mask & 4;
    bool V = false; // initialized to 0
    for (bool C : {C1, C2, C3}) {
      std::optional<bool> W = evalCmppAction(CmppAction::ON, true, C);
      if (W)
        V = *W;
    }
    EXPECT_EQ(V, C1 || C2 || C3);
  }
}

TEST(CmppActionTest, ConjunctionAccumulation) {
  // Computing !c1 & !c2 by wired-and (AC) into a register initialized to
  // the root predicate, as the on-trace FRP evaluation does.
  for (int Mask = 0; Mask < 8; ++Mask) {
    bool Root = Mask & 1, C1 = Mask & 2, C2 = Mask & 4;
    bool V = Root;
    for (bool C : {C1, C2}) {
      std::optional<bool> W = evalCmppAction(CmppAction::AC, true, C);
      if (W)
        V = *W;
    }
    EXPECT_EQ(V, Root && !C1 && !C2);
  }
}

TEST(CmppActionTest, NameRoundTrip) {
  for (CmppAction A : AllActions) {
    auto P = parseCmppAction(cmppActionName(A));
    ASSERT_TRUE(P.has_value());
    EXPECT_EQ(*P, A);
  }
  EXPECT_FALSE(parseCmppAction("xx").has_value());
  EXPECT_FALSE(parseCmppAction("none").has_value());
}

} // namespace

//===- tests/ir/VerifierTest.cpp - Verifier rejection tests ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// Parses (which must succeed) and expects a verifier complaint containing
/// \p Fragment.
void expectInvalid(const std::string &Src, const std::string &Fragment) {
  ParseResult R = parseFunction(Src);
  ASSERT_TRUE(R) << "parse failed: " << R.Error;
  std::vector<std::string> Errors = verifyFunction(*R.Func);
  ASSERT_FALSE(Errors.empty()) << "expected a verification failure";
  bool Found = false;
  for (const std::string &E : Errors)
    if (E.find(Fragment) != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "no error mentions '" << Fragment << "'; first is: "
                     << Errors.front();
}

TEST(VerifierTest, AcceptsWellFormedFunction) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @good {
block @A:
  r1 = mov(5)
  p1:un, p2:uc = cmpp.lt(r1, 10)
  b1 = pbr(@B)
  branch(p1, b1)
  halt
block @B:
  halt
}
)");
  EXPECT_TRUE(verifyFunction(*F).empty());
}

TEST(VerifierTest, BranchWithoutPbr) {
  expectInvalid(R"(
func @bad {
block @A:
  p1:un = cmpp.lt(r1, 10)
  branch(p1, b1)
  halt
}
)",
                "no preparing pbr");
}

TEST(VerifierTest, CmppWritingTruePredicate) {
  expectInvalid(R"(
func @bad {
block @A:
  p0:un = cmpp.lt(r1, 10)
  halt
}
)",
                "hardwired true");
}

TEST(VerifierTest, CmppDestinationWithoutAction) {
  expectInvalid(R"(
func @bad {
block @A:
  p1 = cmpp.lt(r1, 10)
  halt
}
)",
                "action specifier");
}

TEST(VerifierTest, ActionOnNonCmpp) {
  expectInvalid(R"(
func @bad {
block @A:
  r1:un = add(r2, r3)
  halt
}
)",
                "carries an action");
}

TEST(VerifierTest, MovToPredicateWithBadImmediate) {
  expectInvalid(R"(
func @bad {
block @A:
  p1 = mov(7)
  halt
}
)",
                "mov to predicate");
}

TEST(VerifierTest, ArithWithWrongClass) {
  expectInvalid(R"(
func @bad {
block @A:
  r1 = add(f2, 1)
  halt
}
)",
                "wrong kind");
}

TEST(VerifierTest, StoreShape) {
  expectInvalid(R"(
func @bad {
block @A:
  store(r1)
  halt
}
)",
                "store needs");
}

TEST(VerifierTest, GuardMustBePredicate) {
  // The parser rejects non-PR guards itself; build the broken op by hand.
  Function F("bad");
  Block &A = F.addBlock("A");
  Operation Op = F.makeOp(Opcode::Nop);
  // Bypass setGuard's assertion by constructing through the parser path is
  // impossible; instead check the adjacent invariant: alias class on a
  // non-memory operation.
  Op.setAliasClass(3);
  A.ops().push_back(std::move(Op));
  std::vector<std::string> Errors = verifyFunction(F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("alias class"), std::string::npos);
}

TEST(VerifierTest, DuplicateOpIds) {
  Function F("bad");
  Block &A = F.addBlock("A");
  Operation Op1 = F.makeOp(Opcode::Nop);
  Operation Op2(Op1.getId(), Opcode::Nop); // reuse the id
  A.ops().push_back(std::move(Op1));
  A.ops().push_back(std::move(Op2));
  std::vector<std::string> Errors = verifyFunction(F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("duplicate operation id"), std::string::npos);
}

TEST(VerifierTest, EmptyFunction) {
  Function F("empty");
  std::vector<std::string> Errors = verifyFunction(F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("no blocks"), std::string::npos);
}

TEST(VerifierTest, ObservableMustBeGpr) {
  Function F("bad");
  Block &A = F.addBlock("A");
  A.ops().push_back(F.makeOp(Opcode::Halt));
  F.observableRegs().push_back(Reg::pred(3));
  std::vector<std::string> Errors = verifyFunction(F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("observable"), std::string::npos);
}

} // namespace

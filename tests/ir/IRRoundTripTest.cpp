//===- tests/ir/IRRoundTripTest.cpp - Printer/parser round trips ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(IRRoundTripTest, BuilderPrintsPaperLikeListing) {
  Function F("strcpy_fragment");
  Block &Loop = F.addBlock("Loop");
  Block &Exit = F.addBlock("Exit");
  IRBuilder B(F, Loop);

  Reg R1 = F.newReg(RegClass::GPR);
  Reg R2 = F.newReg(RegClass::GPR);
  Reg R21 = B.emitArith(Opcode::Add, Operand::reg(R2), Operand::imm(0));
  B.emitStore(R21, Operand::reg(R1), /*AliasClass=*/1);
  Reg R31 = B.emitLoad(R1, /*AliasClass=*/2);
  auto [P51, P61] = B.emitCmpp2(CompareCond::EQ, Operand::reg(R31),
                                Operand::imm(0), CmppAction::UN,
                                CmppAction::UC);
  B.emitBranchTo(Exit, P51);
  B.emitStore(R21, Operand::reg(R31), /*AliasClass=*/1, P61);
  B.emitHalt();
  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "builder test");
  std::string Text = printFunction(F);
  EXPECT_NE(Text.find("cmpp.eq"), std::string::npos);
  EXPECT_NE(Text.find(":un"), std::string::npos);
  EXPECT_NE(Text.find("pbr(@Exit)"), std::string::npos);
  EXPECT_NE(Text.find("store.m1"), std::string::npos);
  EXPECT_NE(Text.find("if " + P61.str()), std::string::npos);
}

TEST(IRRoundTripTest, ParsePrintFixpoint) {
  const char *Src = R"(
func @demo {
  observable r9
block @Loop:
  r21 = add(r2, 0)
  store.m1(r21, r34)
  r11 = add(r1, 1)
  r31 = load.m2(r11)
  b41 = pbr(@Exit)
  p51:un, p61:uc = cmpp.eq(r31, 0)
  branch(p51, b41)
  r22 = add(r2, 1)
  store.m1(r22, r31) if p61
  r9 = max(r22, r31)
  halt
block @Exit: compensation
  p7 = mov(0)
  p7 = mov(p61) if p51
  f2 = fadd(f1, f1)
  r9 = min(r22, 7) if p7
  halt
}
)";
  std::unique_ptr<Function> F = parseFunctionOrDie(Src);
  EXPECT_TRUE(verifyFunction(*F).empty());

  std::string Once = printFunction(*F);
  std::unique_ptr<Function> F2 = parseFunctionOrDie(Once);
  std::string Twice = printFunction(*F2);
  EXPECT_EQ(Once, Twice);

  // Structure checks.
  EXPECT_EQ(F->numBlocks(), 2u);
  EXPECT_TRUE(F->block(1).isCompensation());
  EXPECT_EQ(F->observableRegs().size(), 1u);
  EXPECT_EQ(F->block(0).size(), 11u);
}

TEST(IRRoundTripTest, ParserResolvesForwardLabels) {
  const char *Src = R"(
func @fwd {
block @A:
  b1 = pbr(@C)
  p1:un = cmpp.lt(r1, 5)
  branch(p1, b1)
  halt
block @B:
  halt
block @C:
  halt
}
)";
  std::unique_ptr<Function> F = parseFunctionOrDie(Src);
  EXPECT_TRUE(verifyFunction(*F).empty());
  const Operation &Pbr = F->block(0).ops()[0];
  EXPECT_EQ(Pbr.pbrTarget(), F->blockByName("C")->getId());
}

TEST(IRRoundTripTest, ParserReservesRegisterIds) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @ids {
block @A:
  r17 = add(r3, 4)
  halt
}
)");
  // A freshly allocated register must not collide with parsed ones.
  Reg Fresh = F->newReg(RegClass::GPR);
  EXPECT_GT(Fresh.getId(), 17u);
}

TEST(IRRoundTripTest, ParserReportsErrors) {
  struct Case {
    const char *Src;
    const char *ErrorFragment;
  };
  const Case Cases[] = {
      {"func @x {\nblock @A:\n  r1 = bogus(r2, r3)\n  halt\n}",
       "unknown opcode"},
      {"func @x {\nblock @A:\n  r1 = add(r2, @A)\n  halt\n}", ""},
      {"func @x {\nblock @A:\n  b1 = pbr(@Nowhere)\n  halt\n}",
       "unknown block"},
      {"func @x {\nblock @A:\n  halt\nblock @A:\n  halt\n}",
       "duplicate block"},
      {"block @A:\n halt", "expected 'func'"},
  };
  for (const Case &C : Cases) {
    ParseResult R = parseFunction(C.Src);
    if (std::string(C.ErrorFragment).empty()) {
      // Shape errors caught by the verifier instead.
      if (R) {
        EXPECT_FALSE(verifyFunction(*R.Func).empty()) << C.Src;
      }
      continue;
    }
    ASSERT_FALSE(R) << C.Src;
    EXPECT_NE(R.Error.find(C.ErrorFragment), std::string::npos)
        << "error was: " << R.Error;
  }
}

TEST(IRRoundTripTest, CommentsAndTrueGuardsAccepted) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @c {
block @A:            ; entry
  r1 = add(r2, 1) if T   ; explicit true guard
  r1 = add(r1, 1) if p0  ; p0 == T
  halt
}
)");
  EXPECT_TRUE(F->block(0).ops()[0].getGuard().isTruePred());
  EXPECT_TRUE(F->block(0).ops()[1].getGuard().isTruePred());
}

} // namespace

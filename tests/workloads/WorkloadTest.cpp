//===- tests/workloads/WorkloadTest.cpp - Workload correctness ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
// The kernels are real programs: this suite checks they compute the right
// answers against independent host-side reference computations, and that
// the synthetic application generator realizes the branch biases it is
// asked for.
//
//===----------------------------------------------------------------------===//

#include "workloads/BenchmarkSuite.h"
#include "workloads/SyntheticProgram.h"

#include "interp/Profiler.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(WorkloadTest, StrcpyCopiesTheString) {
  KernelProgram P = buildStrcpyKernel(4, 100, 5);
  Memory Mem = P.InitMem;
  RunResult R = interpret(*P.Func, Mem, P.InitRegs);
  ASSERT_TRUE(R.halted());
  // Every character of the source (addresses 1000000..) must appear at
  // the destination (3000000..).
  for (int64_t I = 0; I < 100; ++I)
    EXPECT_EQ(Mem.load(3'000'000 + I), P.InitMem.load(1'000'000 + I))
        << "at " << I;
}

TEST(WorkloadTest, StrcpyEmptyString) {
  KernelProgram P = buildStrcpyKernel(4, 0, 5);
  Memory Mem = P.InitMem;
  RunResult R = interpret(*P.Func, Mem, P.InitRegs);
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(Mem.load(3'000'000), 0);
}

TEST(WorkloadTest, CmpFindsMismatch) {
  // Mismatch exists (prefix < length): result 1.
  {
    KernelProgram P = buildCmpKernel(8, 256, 100, 6);
    Memory Mem = P.InitMem;
    RunResult R = interpret(*P.Func, Mem, P.InitRegs);
    ASSERT_TRUE(R.halted());
    EXPECT_EQ(R.Observed[0], 1);
  }
  // Identical buffers: result 0.
  {
    KernelProgram P = buildCmpKernel(8, 256, 256, 6);
    Memory Mem = P.InitMem;
    RunResult R = interpret(*P.Func, Mem, P.InitRegs);
    ASSERT_TRUE(R.halted());
    EXPECT_EQ(R.Observed[0], 0);
  }
}

TEST(WorkloadTest, GrepCountsHits) {
  KernelProgram P = buildGrepKernel(8, 2048, 0.03, 7);
  // Reference: count 42s in the source region.
  int64_t Expected = 0;
  for (int64_t I = 0; I < 2048; ++I)
    if (P.InitMem.load(1'000'000 + I) == 42)
      ++Expected;
  Memory Mem = P.InitMem;
  RunResult R = interpret(*P.Func, Mem, P.InitRegs);
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.Observed[0], Expected);
}

TEST(WorkloadTest, WcCountsCharacters) {
  KernelProgram P = buildWcKernel(4, 4096, 8);
  Memory Mem = P.InitMem;
  RunResult R = interpret(*P.Func, Mem, P.InitRegs);
  ASSERT_TRUE(R.halted());
  // Chars: every scanned position counts (the kernel's newline handling
  // skips the rest of a chunk, so compare against its own semantics: the
  // char counter equals the number of load positions actually visited;
  // at minimum it is positive and bounded by the length).
  EXPECT_GT(R.Observed[0], 0);
  EXPECT_LE(R.Observed[0], 4096);
  EXPECT_GE(R.Observed[1], 0); // lines
  EXPECT_GE(R.Observed[2], 0); // words
}

TEST(WorkloadTest, YaccParsesWithoutErrors) {
  KernelProgram P = buildYaccKernel(4, 1024, 9);
  Memory Mem = P.InitMem;
  RunResult R = interpret(*P.Func, Mem, P.InitRegs);
  ASSERT_TRUE(R.halted());
  // The generated transition table is total: no error recoveries.
  EXPECT_EQ(R.Observed[1], 0);
  // The value stack was pushed.
  EXPECT_GT(Mem.numWrittenCells(), P.InitMem.numWrittenCells());
}

TEST(WorkloadTest, LexCountsTokensPlausibly) {
  KernelProgram P = buildLexKernel(4, 8192, 10);
  Memory Mem = P.InitMem;
  RunResult R = interpret(*P.Func, Mem, P.InitRegs);
  ASSERT_TRUE(R.halted());
  // ~5% of characters start tokens; the scanner skips a chunk per token,
  // so expect a strictly positive but sub-10% token count.
  EXPECT_GT(R.Observed[0], 8192 / 100);
  EXPECT_LT(R.Observed[0], 8192 / 10);
  EXPECT_GT(R.Observed[0], R.Observed[1]); // more tokens than newlines
}

TEST(WorkloadTest, SyntheticProgramRealizesBias) {
  SyntheticParams SP;
  SP.Superblocks = 2;
  SP.RungsPerSuperblock = 4;
  SP.FallThroughBias = 0.95;
  SP.UnbiasedFrac = 0.0;
  SP.Trips = 2000;
  SP.Seed = 77;
  KernelProgram P = buildSyntheticProgram("biascheck", SP);
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);

  // Measure the realized fall-through ratio of the rung branches: all
  // branches except the loop-control and stub branches target the stubs.
  double WorstLow = 1.0, WorstHigh = 0.0;
  size_t Rungs = 0;
  for (size_t BI = 0; BI < P.Func->numBlocks(); ++BI) {
    const Block &B = P.Func->block(BI);
    if (B.getName().rfind("SB", 0) != 0)
      continue;
    for (const Operation &Op : B.ops()) {
      if (!Op.isBranch())
        continue;
      uint64_t Reached = Prof.branchReached(Op.getId());
      if (Reached < 100)
        continue;
      double Fall = 1.0 - Prof.takenRatio(Op.getId());
      WorstLow = std::min(WorstLow, Fall);
      WorstHigh = std::max(WorstHigh, Fall);
      ++Rungs;
    }
  }
  EXPECT_EQ(Rungs, 8u);
  EXPECT_GT(WorstLow, 0.88) << "bias realized too low";
  EXPECT_LE(WorstHigh, 1.0);
}

TEST(WorkloadTest, SyntheticUnbiasedFraction) {
  SyntheticParams SP;
  SP.Superblocks = 2;
  SP.RungsPerSuperblock = 6;
  SP.FallThroughBias = 0.98;
  SP.UnbiasedFrac = 1.0; // every rung unbiased
  SP.Trips = 2000;
  SP.Seed = 78;
  KernelProgram P = buildSyntheticProgram("unbiased", SP);
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  // The first rung branch of the first superblock sees every trip; its
  // fall-through ratio must hover near 0.5.
  const Block &SB0 = *P.Func->blockByName("SB0");
  for (const Operation &Op : SB0.ops()) {
    if (!Op.isBranch())
      continue;
    double Fall = 1.0 - Prof.takenRatio(Op.getId());
    EXPECT_GT(Fall, 0.35);
    EXPECT_LT(Fall, 0.65);
    break; // first rung only (later rungs see filtered traffic)
  }
}

TEST(WorkloadTest, EveryBenchmarkBuildsVerifiesAndRuns) {
  for (const BenchmarkSpec &Spec : paperBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    KernelProgram P = Spec.Build();
    EXPECT_TRUE(verifyFunction(*P.Func).empty());
    Memory Mem = P.InitMem;
    RunResult R = interpret(*P.Func, Mem, P.InitRegs);
    EXPECT_TRUE(R.halted()) << R.ErrorMsg;
    EXPECT_GT(R.Stats.OpsDispatched, 1000u) << "workload too trivial";
  }
}

TEST(WorkloadTest, BenchmarksAreDeterministic) {
  for (const char *Name : {"126.gcc", "strcpy", "wc"}) {
    std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
    KernelProgram A = findBenchmark(Suite, Name).Build();
    KernelProgram B = findBenchmark(Suite, Name).Build();
    Memory MemA = A.InitMem, MemB = B.InitMem;
    RunResult RA = interpret(*A.Func, MemA, A.InitRegs);
    RunResult RB = interpret(*B.Func, MemB, B.InitRegs);
    EXPECT_EQ(RA.Observed, RB.Observed) << Name;
    EXPECT_EQ(RA.Stats.OpsDispatched, RB.Stats.OpsDispatched) << Name;
  }
}

} // namespace

//===- tests/lint/LintFaultTest.cpp - Fault sites vs the static checks ----===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Closes the loop between the fault-injection registry and cpr-lint:
// every registered fault site is armed over a fail-safe CPR run, and the
// result is linted. Sites whose failure is diagnosed and rolled back must
// leave a lint-clean function; the one site that corrupts the IR while
// staying verifier-clean (the compensation-skip miscompile) must be
// caught *statically* by the checks.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "lint/Witness.h"

#include "cpr/ControlCPR.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "support/Error.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cpr;

namespace {

/// Single-region kernel whose heavily biased exits collapse into a
/// fall-through-variation CPR block with a compensation block (the same
/// fixture the transaction tests drive).
std::unique_ptr<Function> cprKernel() {
  return parseFunctionOrDie(R"(
func @g {
block @A:
  r21 = load.m1(r1)
  p1:un, p2:uc = cmpp.eq(r21, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r22 = load.m1(r2)
  p3:un, p4:uc = cmpp.lt(r22, 5) if p2
  b2 = pbr(@X)
  branch(p3, b2)
  store.m2(r5, r22) if p4
  halt
block @X:
  halt
}
)");
}

ProfileData biasedProfile(const Function &F) {
  ProfileData Prof;
  for (const Operation &Op : F.block(0).ops())
    if (Op.isBranch()) {
      Prof.addBranchReached(Op.getId(), 100);
      Prof.addBranchTaken(Op.getId(), 2);
    }
  return Prof;
}

std::string joined(const LintResult &R) {
  std::ostringstream OS;
  for (const LintFinding &F : R.Findings)
    OS << F.str() << "\n";
  return OS.str();
}

/// Every registered fault site, armed once over a fail-safe transform of
/// the kernel. The contract per site:
///  - a diagnosed failure rolls the region back, so the function lints
///    clean (it is the baseline again);
///  - a site that never fires leaves an ordinary (clean) treatment;
///  - the verifier-clean corruption site is the one case the verifier
///    and the rollback machinery both miss -- the static checks must
///    catch it.
TEST(LintFault, EverySiteIsRolledBackOrCaughtStatically) {
  const std::string CorruptingSite = "cpr.restructure.compensation";
  std::vector<std::string> Sites = fault::sites();
  ASSERT_GE(Sites.size(), 7u);
  bool SawCorruptingSite = false;
  LintDriver Linter = LintDriver::withBuiltinPasses();
  for (const std::string &Site : Sites) {
    std::unique_ptr<Function> F = cprKernel();
    std::string Before = printFunction(*F);
    ProfileData Prof = biasedProfile(*F);

    fault::ScopedFault Armed(Site, 1);
    CPRContext Ctx;
    Ctx.FailSafe = true;
    DiagnosticEngine Diags;
    Ctx.Diags = &Diags;
    ScopedFatalErrorTrap Trap;
    try {
      runControlCPR(*F, Prof, CPROptions(), Ctx);
    } catch (const FatalError &E) {
      ADD_FAILURE() << Site << ": fail-safe run crashed: " << E.message();
      continue;
    }
    bool Fired = fault::fired();

    EXPECT_TRUE(verifyFunction(*F).empty())
        << Site << ": fail-safe run left structurally invalid IR";
    LintResult R = Linter.run(*F);
    if (Site == CorruptingSite) {
      SawCorruptingSite = true;
      ASSERT_TRUE(Fired) << "kernel stopped forming a compensation block";
      // The defect is invisible to the verifier and to rollback
      // accounting -- the transaction committed believing it succeeded.
      EXPECT_GE(R.errorCount(), 1u)
          << "verifier-clean corruption escaped the static checks";
      bool HasCompFinding = false;
      for (const LintFinding &Finding : R.Findings)
        if (Finding.Code == DiagCode::LintCompensation) {
          HasCompFinding = true;
          // v2: the static claim comes with replay evidence.
          ASSERT_NE(Finding.Witness, nullptr);
          if (Finding.Witness->Solved) {
            WitnessConfirmation WC = confirmWitness(*F, *Finding.Witness);
            EXPECT_TRUE(WC.Confirmed) << WC.Detail;
          }
        }
      EXPECT_TRUE(HasCompFinding) << joined(R);
    } else {
      EXPECT_EQ(R.errorCount(), 0u) << Site << ":\n" << joined(R);
      if (Fired) {
        // Diagnosed failure: the region rolled back to the byte-exact
        // baseline and the failure was reported.
        EXPECT_EQ(printFunction(*F), Before) << Site;
        EXPECT_GE(Diags.errorCount(), 1u) << Site;
      }
    }
  }
  EXPECT_TRUE(SawCorruptingSite);
}

} // namespace

//===- tests/lint/LintRollbackTest.cpp - Lint-triggered rollback ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The integration contract of docs/LINT.md: a post-transform lint finding
// on a fail-safe region behaves exactly like any other region failure --
// the RegionTransaction rolls the region back byte-exactly -- and the
// pipeline's Lint stage wires that hook up, reports the findings, and in
// strict mode turns a surviving violation into a fatal error.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "cpr/ControlCPR.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pipeline/PipelineRun.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "support/TestHooks.h"
#include "workloads/SyntheticProgram.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

std::unique_ptr<Function> cprKernel() {
  return parseFunctionOrDie(R"(
func @g {
block @A:
  r21 = load.m1(r1)
  p1:un, p2:uc = cmpp.eq(r21, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r22 = load.m1(r2)
  p3:un, p4:uc = cmpp.lt(r22, 5) if p2
  b2 = pbr(@X)
  branch(p3, b2)
  store.m2(r5, r22) if p4
  halt
block @X:
  halt
}
)");
}

ProfileData biasedProfile(const Function &F) {
  ProfileData Prof;
  for (const Operation &Op : F.block(0).ops())
    if (Op.isBranch()) {
      Prof.addBranchReached(Op.getId(), 100);
      Prof.addBranchTaken(Op.getId(), 2);
    }
  return Prof;
}

KernelProgram syntheticProgram(uint64_t Seed) {
  SyntheticParams SP;
  SP.Superblocks = 3;
  SP.RungsPerSuperblock = 4;
  SP.FallThroughBias = 0.99;
  SP.Trips = 150;
  SP.Seed = Seed;
  return buildSyntheticProgram("lint-rollback", SP);
}

/// Without the hook the planted compensation-skip defect commits: the
/// transaction believes it succeeded, the verifier agrees, and only the
/// static checks see the lost off-trace closure.
TEST(LintRollback, WithoutHookDefectCommitsAndLintFlagsIt) {
  std::unique_ptr<Function> F = cprKernel();
  ProfileData Prof = biasedProfile(*F);
  test_hooks::ScopedSkipCompensation Skip(true);
  CPRContext Ctx;
  Ctx.FailSafe = true;
  CPRResult R = runControlCPR(*F, Prof, CPROptions(), Ctx);
  ASSERT_GE(R.CPRBlocksTransformed, 1u);
  EXPECT_EQ(R.BlocksRolledBack, 0u) << "verifier-clean defect";
  EXPECT_TRUE(verifyFunction(*F).empty());

  LintResult L = LintDriver::withBuiltinPasses().run(*F);
  ASSERT_GE(L.errorCount(), 1u);
  bool HasCompFinding = false;
  for (const LintFinding &Finding : L.Findings)
    if (Finding.Code == DiagCode::LintCompensation)
      HasCompFinding = true;
  EXPECT_TRUE(HasCompFinding);
}

/// With the RegionLint hook the same defect becomes a per-region
/// rollback, byte-exact on this single-region kernel (the TransactionTest
/// contract, driven by a static finding instead of the interpreter).
TEST(LintRollback, RegionLintHookRollsBackByteExactly) {
  std::unique_ptr<Function> F = cprKernel();
  std::string Before = printFunction(*F);
  ProfileData Prof = biasedProfile(*F);
  test_hooks::ScopedSkipCompensation Skip(true);

  LintDriver Linter = LintDriver::withBuiltinPasses();
  CPRContext Ctx;
  Ctx.FailSafe = true;
  DiagnosticEngine Diags;
  Ctx.Diags = &Diags;
  Ctx.RegionLint = [&Linter](const Function &Candidate) -> Status {
    return lintStatus(Linter.run(Candidate));
  };
  CPRResult R = runControlCPR(*F, Prof, CPROptions(), Ctx);
  EXPECT_GE(R.BlocksRolledBack, 1u);
  EXPECT_GE(R.RegionsRolledBack, 1u);
  EXPECT_EQ(R.CPRBlocksTransformed, 0u);
  EXPECT_EQ(printFunction(*F), Before);
  EXPECT_GE(Diags.errorCount(), 1u);
  EXPECT_TRUE(LintDriver::withBuiltinPasses().run(*F).clean());
}

/// The pipeline's Lint stage in a fail-safe session: the planted defect
/// is caught region by region as the transactions try to commit, the
/// session never has to fall back wholesale, and the shipped function is
/// lint-clean and observationally equivalent to the baseline.
TEST(LintRollback, PipelineLintStageRollsBackPlantedDefect) {
  KernelProgram P = syntheticProgram(404);
  std::unique_ptr<Function> Base = P.Func->clone();
  Memory Mem = P.InitMem;
  std::vector<RegBinding> Regs = P.InitRegs;

  test_hooks::ScopedSkipCompensation Skip(true);
  PipelineOptions Opts;
  Opts.Lint = true;
  Opts.FailSafe = true;
  DiagnosticEngine Diags;
  Opts.Diags = &Diags;
  StatsRegistry Stats;
  PipelineRun Session(std::move(P), Opts, &Stats);
  const Function &Treated = Session.treated();

  EXPECT_FALSE(Session.fellBack())
      << "regions roll back one by one; no wholesale fallback needed";
  EXPECT_GE(Session.cprResult().RegionsRolledBack, 1u);
  EXPECT_GE(Diags.errorCount(), 1u);
  EXPECT_TRUE(LintDriver::withBuiltinPasses().run(Treated).clean());
  EXPECT_EQ(Stats.count("lint/treated_findings"), 0.0);

  EquivResult E = checkEquivalence(*Base, Treated, Mem, Regs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

/// Strict mode has no transaction to roll back: a post-transform lint
/// finding on a clean baseline is a fatal stage failure.
TEST(LintRollback, StrictModeLintFindingIsFatal) {
  KernelProgram P = syntheticProgram(404);
  test_hooks::ScopedSkipCompensation Skip(true);
  PipelineOptions Opts;
  Opts.Lint = true;
  Opts.FailSafe = false;
  PipelineRun Session(std::move(P), Opts);
  ScopedFatalErrorTrap Trap;
  EXPECT_THROW(Session.treated(), FatalError);
}

} // namespace

//===- tests/lint/WitnessTest.cpp - Witness solve/replay bar --------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The cpr-lint v2 witness contract (docs/LINT.md): on the golden fixture
// corpus every finding's witness solves to concrete inputs and replays to
// confirmation -- including findings anchored past a straight-line entry
// prefix -- and the planted compensation-skip miscompile produces a
// confirmed trap witness through the real pipeline. Unsolvable witnesses
// must say why instead of guessing.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "lint/Witness.h"

#include "fuzz/Generator.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "pipeline/PipelineRun.h"
#include "support/JSON.h"
#include "support/TestHooks.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace cpr;

namespace {

LintResult lintFile(const std::string &Name, std::unique_ptr<Function> &F) {
  std::string Path = std::string(CPR_LINT_FIXTURE_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();

  ParseResult PR = parseFunction(Buf.str());
  EXPECT_NE(PR.Func, nullptr) << Name << ": " << PR.Error;
  LintOptions Opts;
  EXPECT_TRUE(parseInjectedSchedules(Buf.str(), Opts.Schedules).ok());
  F = std::move(PR.Func);
  return LintDriver::withBuiltinPasses(Opts).run(*F);
}

/// The corpus-wide bar: every finding of every fixture carries a solved,
/// replay-confirmed witness. No fixture is exempt.
TEST(WitnessTest, EveryFixtureFindingConfirms) {
  const char *Fixtures[] = {
      "clean_cpr.ir",          "bad_frp.ir",
      "use_before_def.ir",     "unsafe_speculation.ir",
      "missing_compensation.ir", "oversubscribed_slot.ir",
      "warn_unrecognized_frp.ir", "dead_under_predicate.ir",
      "uninit_read.ir",        "redundant_compensation.ir",
      "oversubscribed_fetch.ir"};
  unsigned Findings = 0, Confirmed = 0;
  for (const char *Name : Fixtures) {
    SCOPED_TRACE(Name);
    std::unique_ptr<Function> F;
    LintResult R = lintFile(Name, F);
    ASSERT_NE(F, nullptr);
    for (const LintFinding &Fd : R.Findings) {
      ++Findings;
      ASSERT_NE(Fd.Witness, nullptr) << Fd.str();
      ASSERT_TRUE(Fd.Witness->Solved)
          << Fd.str() << ": " << Fd.Witness->UnsolvedWhy;
      WitnessConfirmation WC = confirmWitness(*F, *Fd.Witness);
      EXPECT_TRUE(WC.Confirmed) << Fd.str() << ": " << WC.Detail;
      Confirmed += WC.Confirmed;
    }
  }
  EXPECT_EQ(Findings, 10u) << "fixture corpus drifted";
  EXPECT_EQ(Confirmed, Findings) << "confirmation bar is 100%";
}

/// The planted compensation-skip miscompile, driven through the real
/// pipeline: the treated function's lint findings include at least one
/// error with a solved witness, and every solved witness confirms --
/// static detection backed by concrete replay evidence.
TEST(WitnessTest, PlantedCompensationSkipYieldsConfirmedWitness) {
  test_hooks::ScopedSkipCompensation Inject(true);
  LintDriver Linter = LintDriver::withBuiltinPasses();
  unsigned SolvedConfirmed = 0, SolvedTotal = 0, Errors = 0;
  GeneratorConfig Cfg;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    KernelProgram P = generateProgram(Seed, Cfg);
    PipelineOptions Opts;
    Opts.CheckEquivalence = false;
    Opts.FailSafe = false;
    PipelineRun Session(std::move(P), Opts);
    const Function &Treated = Session.treated();
    if (!verifyFunction(Treated).empty())
      continue; // the verifier caught this one before lint could
    LintResult R = Linter.run(Treated);
    for (const LintFinding &Fd : R.Findings) {
      if (Fd.Severity != DiagSeverity::Error)
        continue;
      ++Errors;
      ASSERT_NE(Fd.Witness, nullptr) << Fd.str();
      if (!Fd.Witness->Solved)
        continue;
      ++SolvedTotal;
      WitnessConfirmation WC = confirmWitness(Treated, *Fd.Witness);
      EXPECT_TRUE(WC.Confirmed) << Fd.str() << ": " << WC.Detail;
      SolvedConfirmed += WC.Confirmed;
    }
  }
  EXPECT_GE(Errors, 1u) << "the planted defect escaped static detection";
  EXPECT_GE(SolvedConfirmed, 1u)
      << "no planted-defect finding produced a replayable witness";
  EXPECT_EQ(SolvedConfirmed, SolvedTotal);
}

/// A region behind a branching prefix cannot be replayed from the entry
/// deterministically; the witness must be unsolved with the reason, not
/// silently wrong.
TEST(WitnessTest, BranchyPrefixIsHonestlyUnsolved) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.lt(r1, 5)
  b1 = pbr(@C)
  branch(p1, b1)
block @B:
  p2 = mov(0)
  b2 = pbr(@C)
  branch(p2, b2)
  halt
block @C:
  halt
}
)");
  LintResult R = LintDriver::withBuiltinPasses().run(*F);
  const LintFinding *Dead = nullptr;
  for (const LintFinding &Fd : R.Findings)
    if (Fd.Check == "dead-under-predicate" && Fd.Block == "B")
      Dead = &Fd;
  ASSERT_NE(Dead, nullptr);
  ASSERT_NE(Dead->Witness, nullptr);
  EXPECT_FALSE(Dead->Witness->Solved);
  EXPECT_NE(Dead->Witness->UnsolvedWhy.find("straight-line"),
            std::string::npos)
      << Dead->Witness->UnsolvedWhy;
  WitnessConfirmation WC = confirmWitness(*F, *Dead->Witness);
  EXPECT_FALSE(WC.Ran);
  EXPECT_FALSE(WC.Confirmed);
}

/// The v2 JSON witness object round-trips the replay evidence.
TEST(WitnessTest, JSONCarriesAssignmentAndInputs) {
  std::unique_ptr<Function> F;
  LintResult R = lintFile("use_before_def.ir", F);
  ASSERT_EQ(R.Findings.size(), 1u);
  ASSERT_NE(R.Findings[0].Witness, nullptr);
  JSONValue V = witnessToJSON(*R.Findings[0].Witness);
  EXPECT_TRUE(V.find("solved")->getBool());
  EXPECT_EQ(V.find("expect")->getString(), "use-without-def");
  ASSERT_NE(V.find("assignment"), nullptr);
  ASSERT_NE(V.find("init_regs"), nullptr);
  ASSERT_NE(V.find("path"), nullptr);
  // The writer round-trips through the strict parser.
  JSONParseResult PR = parseJSON(writeJSON(V));
  EXPECT_TRUE(static_cast<bool>(PR)) << PR.Error;
}

} // namespace

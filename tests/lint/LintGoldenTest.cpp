//===- tests/lint/LintGoldenTest.cpp - Fixture-driven check goldens -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Each hand-written fixture under tests/lint/fixtures/ plants exactly one
// violation of one invariant; the matching check must report exactly that
// finding -- stable DiagCode, check name, block, and operation location --
// and every other check must stay silent. The clean fixture is the
// negative control.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "lint/Witness.h"

#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "support/JSON.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace cpr;

namespace {

struct Fixture {
  std::string Text;
  std::unique_ptr<Function> Func;
  LintResult Result;
};

Fixture lintFixture(const std::string &Name) {
  Fixture Fx;
  std::string Path = std::string(CPR_LINT_FIXTURE_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  Fx.Text = Buf.str();

  ParseResult PR = parseFunction(Fx.Text);
  EXPECT_NE(PR.Func, nullptr) << Name << ": " << PR.Error;
  if (!PR.Func)
    return Fx;
  // Every fixture is structurally valid IR: the violations live strictly
  // at the semantic level the lint checks (not the verifier) own.
  EXPECT_TRUE(verifyFunction(*PR.Func).empty()) << Name;

  LintOptions Opts;
  Status S = parseInjectedSchedules(Fx.Text, Opts.Schedules);
  EXPECT_TRUE(S.ok()) << S.diagnostic().str();
  Fx.Func = std::move(PR.Func);
  Fx.Result = LintDriver::withBuiltinPasses(Opts).run(*Fx.Func);
  return Fx;
}

/// Asserts the fixture produced exactly one finding with the given
/// signature and that the anchor op is a real operation of the block.
void expectSingleFinding(const Fixture &Fx, DiagCode Code,
                         const std::string &Check,
                         const std::string &BlockName, int OpIndex,
                         DiagSeverity Sev = DiagSeverity::Error) {
  ASSERT_EQ(Fx.Result.Findings.size(), 1u);
  const LintFinding &F = Fx.Result.Findings[0];
  EXPECT_EQ(F.Code, Code);
  EXPECT_EQ(F.Check, Check);
  EXPECT_EQ(F.Block, BlockName);
  EXPECT_EQ(F.OpIndex, OpIndex);
  EXPECT_EQ(F.Severity, Sev);
  ASSERT_NE(Fx.Func, nullptr);
  const Block *B = nullptr;
  for (size_t L = 0; L < Fx.Func->numBlocks(); ++L)
    if (Fx.Func->block(L).getName() == BlockName)
      B = &Fx.Func->block(L);
  ASSERT_NE(B, nullptr) << "finding names unknown block " << BlockName;
  ASSERT_GE(OpIndex, 0);
  ASSERT_LT(static_cast<size_t>(OpIndex), B->size());
  EXPECT_EQ(F.Op, B->ops()[OpIndex].getId())
      << "op id and op index disagree";
}

TEST(LintGolden, CleanControlHasNoFindings) {
  Fixture Fx = lintFixture("clean_cpr.ir");
  EXPECT_TRUE(Fx.Result.clean())
      << Fx.Result.Findings[0].str();
  EXPECT_EQ(Fx.Result.ChecksRun.size(), 9u);
}

TEST(LintGolden, BadFRPIsExactlyOneFRPConsistencyError) {
  Fixture Fx = lintFixture("bad_frp.ir");
  // Anchored at the bypass branch of the on-trace block.
  expectSingleFinding(Fx, DiagCode::LintFRP, "frp-consistency", "Body", 7);
  EXPECT_NE(Fx.Result.Findings[0].Message.find("bypass predicate"),
            std::string::npos);
}

TEST(LintGolden, UseBeforeDefUnderDisjointPredicate) {
  Fixture Fx = lintFixture("use_before_def.ir");
  // Anchored at the read: cmpp (0), guarded mov (1), offending add (2).
  expectSingleFinding(Fx, DiagCode::LintUseBeforeDef, "use-before-def", "A",
                      2);
  EXPECT_NE(Fx.Result.Findings[0].Message.find("r3"), std::string::npos);
}

TEST(LintGolden, UnsafeSpeculativeClobber) {
  Fixture Fx = lintFixture("unsafe_speculation.ir");
  // Anchored at the unguarded mov inside the bypass window.
  expectSingleFinding(Fx, DiagCode::LintSpeculation, "speculation-safety",
                      "Body", 6);
  EXPECT_NE(Fx.Result.Findings[0].Message.find("r7"), std::string::npos);
}

TEST(LintGolden, MissingCompensationExit) {
  Fixture Fx = lintFixture("missing_compensation.ir");
  // Anchored at the compensation block's trailing trap -- the op an
  // off-trace execution with the lost exit actually reaches.
  expectSingleFinding(Fx, DiagCode::LintCompensation,
                      "compensation-completeness", "Body_cmp", 4);
}

TEST(LintGolden, OversubscribedIssueSlot) {
  Fixture Fx = lintFixture("oversubscribed_slot.ir");
  // Anchored at the third load of the pinned cycle 0 (two memory units).
  expectSingleFinding(Fx, DiagCode::LintSchedule, "schedule-legality", "A",
                      2);
  EXPECT_NE(Fx.Result.Findings[0].Message.find("memory"), std::string::npos);
}

TEST(LintGolden, UnrecognizableFRPIsAWarning) {
  Fixture Fx = lintFixture("warn_unrecognized_frp.ir");
  expectSingleFinding(Fx, DiagCode::LintFRP, "frp-consistency", "A", 2,
                      DiagSeverity::Warning);
  EXPECT_EQ(Fx.Result.errorCount(), 0u);
  EXPECT_TRUE(lintStatus(Fx.Result).ok());
  EXPECT_FALSE(lintStatus(Fx.Result, /*Werror=*/true).ok());
}

/// Replays the fixture's single finding through the interpreter and
/// asserts the witness confirms.
void expectConfirmedWitness(const Fixture &Fx) {
  ASSERT_EQ(Fx.Result.Findings.size(), 1u);
  const LintFinding &F = Fx.Result.Findings[0];
  ASSERT_NE(F.Witness, nullptr);
  ASSERT_TRUE(F.Witness->Solved) << F.Witness->UnsolvedWhy;
  WitnessConfirmation WC = confirmWitness(*Fx.Func, *F.Witness);
  EXPECT_TRUE(WC.Confirmed) << WC.Detail;
}

TEST(LintGolden, DeadBranchUnderUnsatisfiablePredicate) {
  Fixture Fx = lintFixture("dead_under_predicate.ir");
  // Anchored at the branch: p1 init (0), pbr (1), dead branch (2).
  expectSingleFinding(Fx, DiagCode::LintDeadUnderPred,
                      "dead-under-predicate", "A", 2,
                      DiagSeverity::Warning);
  expectConfirmedWitness(Fx);
}

TEST(LintGolden, UninitializedWholeRegionRead) {
  Fixture Fx = lintFixture("uninit_read.ir");
  // Anchored at the read in the entry block; r3's only definition sits
  // in a block that cannot reach it.
  expectSingleFinding(Fx, DiagCode::LintUninitRead, "uninit-read", "A", 0);
  EXPECT_NE(Fx.Result.Findings[0].Message.find("r3"), std::string::npos);
  expectConfirmedWitness(Fx);
}

TEST(LintGolden, RedundantCompensationRecompute) {
  Fixture Fx = lintFixture("redundant_compensation.ir");
  // Anchored at the compensation block's recomputing add.
  expectSingleFinding(Fx, DiagCode::LintRedundantComp,
                      "redundant-compensation", "Body_cmp", 0,
                      DiagSeverity::Warning);
  EXPECT_NE(Fx.Result.Findings[0].Message.find("r20"), std::string::npos);
  expectConfirmedWitness(Fx);
}

TEST(LintGolden, OversubscribedFetchWidth) {
  Fixture Fx = lintFixture("oversubscribed_fetch.ir");
  // Legal for the units and issue width, but the directive narrows the
  // fetch front end to two ops per cycle and cycle 0 issues three.
  expectSingleFinding(Fx, DiagCode::LintResourceOversub,
                      "resource-oversubscription", "A", 2);
  expectConfirmedWitness(Fx);
}

/// With the prefix-chain input solver, findings anchored past a
/// straight-line entry block still get replayable witnesses.
TEST(LintGolden, WitnessesConfirmBehindStraightLinePrefix) {
  for (const char *Name :
       {"bad_frp.ir", "unsafe_speculation.ir", "missing_compensation.ir"}) {
    Fixture Fx = lintFixture(Name);
    SCOPED_TRACE(Name);
    expectConfirmedWitness(Fx);
  }
}

/// The JSON report carries the same finding signature the text report
/// does (the --stats-json contract of docs/LINT.md).
TEST(LintGolden, JSONReportMatchesTextFindings) {
  Fixture Fx = lintFixture("bad_frp.ir");
  ASSERT_EQ(Fx.Result.Findings.size(), 1u);
  JSONValue V = lintResultToJSON("bad_frp", Fx.Result);
  const JSONValue *Findings = V.find("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_EQ(Findings->items().size(), 1u);
  const JSONValue &F = Findings->items()[0];
  EXPECT_EQ(F.find("code")->getString(), "lint-frp");
  EXPECT_EQ(F.find("check")->getString(), "frp-consistency");
  EXPECT_EQ(F.find("block")->getString(), "Body");
  EXPECT_EQ(F.find("op_index")->getNumber(), 7.0);
  EXPECT_EQ(F.find("severity")->getString(), "error");
  EXPECT_EQ(V.find("counts")->find("error")->getNumber(), 1.0);
  // v2: every finding carries a witness object (solved or not).
  const JSONValue *W = F.find("witness");
  ASSERT_NE(W, nullptr);
  EXPECT_NE(W->find("solved"), nullptr);
}

} // namespace

//===- tests/lint/LintOracleTest.cpp - Static-oracle fuzz campaign --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// cpr-fuzz's --static-oracle mode judges cases with the cpr-lint checks
// instead of the interpreter: a clean campaign passes, the planted
// compensation-skip miscompile is flagged as lint-reject on every case it
// corrupts -- without a single execution -- and the outcome is
// deterministic at any thread count.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cpr;

namespace {

std::string failures(const FuzzCampaignResult &R) {
  std::ostringstream OS;
  for (const FuzzFailure &F : R.Failures)
    OS << "case " << F.CaseIndex << " [" << F.VariantName
       << "]: " << F.Detail << "\n";
  return OS.str();
}

TEST(LintStaticOracle, CleanCampaignPasses) {
  FuzzCampaignOptions Opts;
  Opts.Seed = 7;
  Opts.Runs = 10;
  FuzzCampaignResult R = runStaticLintCampaign(Opts);
  EXPECT_EQ(R.Cases, 10u);
  EXPECT_TRUE(R.clean()) << failures(R);
  EXPECT_EQ(R.LintRejects, 0u);
}

TEST(LintStaticOracle, PlantedDefectIsFlaggedWithoutExecution) {
  FuzzCampaignOptions Opts;
  Opts.Seed = 7;
  Opts.Runs = 10;
  Opts.InjectDefect = true;
  FuzzCampaignResult R = runStaticLintCampaign(Opts);
  EXPECT_GE(R.LintRejects, 1u) << "static oracle missed the miscompile";
  for (const FuzzFailure &F : R.Failures) {
    EXPECT_EQ(F.Outcome, FuzzOutcome::LintReject);
    EXPECT_NE(F.Detail.find("lint-"), std::string::npos) << F.Detail;
    EXPECT_FALSE(F.ReducedText.empty())
        << "failures keep their reproducer text";
  }
}

TEST(LintStaticOracle, DeterministicAtAnyThreadCount) {
  FuzzCampaignOptions Opts;
  Opts.Seed = 11;
  Opts.Runs = 8;
  Opts.InjectDefect = true;
  Opts.Threads = 1;
  FuzzCampaignResult A = runStaticLintCampaign(Opts);
  Opts.Threads = 3;
  FuzzCampaignResult B = runStaticLintCampaign(Opts);
  EXPECT_EQ(A.summary(), B.summary());
  EXPECT_EQ(failures(A), failures(B));
}

} // namespace

//===- tests/lint/LintCorpusTest.cpp - Clean-corpus regression ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The whole paper suite, before and after the CPR treatment, must come
// back lint-clean: the transform establishes the invariants the checks
// prove, and the checks are conservative enough not to cry wolf on any
// seed workload (the acceptance bar of docs/LINT.md).
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "cpr/ControlCPR.h"
#include "interp/Profiler.h"
#include "workloads/BenchmarkSuite.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cpr;

namespace {

std::string joined(const LintResult &R) {
  std::ostringstream OS;
  for (const LintFinding &F : R.Findings)
    OS << F.str() << "\n";
  return OS.str();
}

TEST(LintCorpus, EverySeedWorkloadIsCleanPreAndPostCPR) {
  LintDriver Driver = LintDriver::withBuiltinPasses();
  for (const BenchmarkSpec &Spec : paperBenchmarkSuite()) {
    KernelProgram P = Spec.Build();
    // The kernel's arguments are InitRegs bindings; declare them so
    // uninit-read knows the environment initializes them.
    LintResult Pre = Driver.run(*P.Func, nullptr, &P.InitRegs);
    EXPECT_TRUE(Pre.clean()) << Spec.Name << " (baseline):\n" << joined(Pre);

    Memory Mem = P.InitMem;
    ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
    std::unique_ptr<Function> Treated = P.Func->clone();
    runControlCPR(*Treated, Prof, CPROptions());
    LintResult Post = Driver.run(*Treated, nullptr, &P.InitRegs);
    EXPECT_TRUE(Post.clean())
        << Spec.Name << " (post-cpr):\n" << joined(Post);
  }
}

} // namespace

//===- tests/lint/LintPassesTest.cpp - Lint framework units ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Framework-level behavior of src/lint/: driver construction and check
// selection, finding rendering (text, Diagnostic, cpr-lint-v2 JSON),
// exit-status policy (lintStatus / --werror), and the sidecar schedule
// directive parser. The checks themselves are exercised against the
// fixture corpus in LintGoldenTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "support/JSON.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

const char *const CheckNames[] = {
    "frp-consistency",       "use-before-def",
    "speculation-safety",    "compensation-completeness",
    "schedule-legality",     "dead-under-predicate",
    "redundant-compensation", "uninit-read",
    "resource-oversubscription"};
constexpr size_t NumChecks = sizeof(CheckNames) / sizeof(CheckNames[0]);

TEST(LintDriverTest, BuiltinPassesInCanonicalOrder) {
  LintDriver D = LintDriver::withBuiltinPasses();
  ASSERT_EQ(D.passes().size(), NumChecks);
  for (size_t I = 0; I < NumChecks; ++I) {
    EXPECT_STREQ(D.passes()[I]->name(), CheckNames[I]);
    EXPECT_NE(std::string(D.passes()[I]->description()), "");
  }
}

TEST(LintDriverTest, OnlyChecksFilterRestrictsChecksRun) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = add(r2, 1)
  halt
}
)");
  LintOptions Opts;
  Opts.OnlyChecks = {"use-before-def", "schedule-legality"};
  LintDriver D = LintDriver::withBuiltinPasses(Opts);
  LintResult R = D.run(*F);
  ASSERT_EQ(R.ChecksRun.size(), 2u);
  EXPECT_EQ(R.ChecksRun[0], "use-before-def");
  EXPECT_EQ(R.ChecksRun[1], "schedule-legality");
  EXPECT_TRUE(R.clean());
}

TEST(LintDriverTest, AllChecksRunByDefault) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  halt
}
)");
  LintResult R = LintDriver::withBuiltinPasses().run(*F);
  ASSERT_EQ(R.ChecksRun.size(), NumChecks);
  for (size_t I = 0; I < NumChecks; ++I)
    EXPECT_EQ(R.ChecksRun[I], CheckNames[I]);
}

// strcpy's cursor pattern: r1 is an environment input that the function
// also bumps later, so it has a definition in the function but none that
// reaches the entry read. Without the declared-inputs exemption this is
// exactly what uninit-read flags.
TEST(LintDriverTest, DeclaredInputsExemptUninitRead) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r2 = add(r1, 1)
  r1 = add(r1, 4)
  halt
}
)");
  LintOptions Opts;
  Opts.OnlyChecks = {"uninit-read"};
  LintDriver D = LintDriver::withBuiltinPasses(Opts);

  // Both reads of r1 (the use and the bump's own operand) are flagged.
  LintResult Undeclared = D.run(*F);
  ASSERT_EQ(Undeclared.errorCount(), 2u);
  for (const LintFinding &Fd : Undeclared.Findings)
    EXPECT_EQ(Fd.Check, "uninit-read");

  std::vector<RegBinding> Inputs = {{Reg::gpr(1), 7}};
  EXPECT_TRUE(D.run(*F, nullptr, &Inputs).clean());
}

LintFinding sampleFinding(DiagSeverity Sev) {
  LintFinding F;
  F.Severity = Sev;
  F.Code = DiagCode::LintFRP;
  F.Check = "frp-consistency";
  F.Block = "Loop";
  F.Op = 12;
  F.OpIndex = 3;
  F.Message = "sample message";
  return F;
}

TEST(LintFindingTest, TextRendering) {
  EXPECT_EQ(sampleFinding(DiagSeverity::Error).str(),
            "error [lint-frp] @Loop op %12: sample message");
  LintFinding BlockLevel = sampleFinding(DiagSeverity::Warning);
  BlockLevel.Op = InvalidOpId;
  BlockLevel.OpIndex = -1;
  EXPECT_EQ(BlockLevel.str(), "warning [lint-frp] @Loop: sample message");
}

TEST(LintFindingTest, ToDiagnosticCarriesCodeAndSite) {
  Diagnostic D = sampleFinding(DiagSeverity::Error).toDiagnostic();
  EXPECT_EQ(D.Code, DiagCode::LintFRP);
  EXPECT_EQ(D.Severity, DiagSeverity::Error);
  EXPECT_EQ(D.Site, "lint.frp-consistency");
  EXPECT_NE(D.Message.find("sample message"), std::string::npos);
}

TEST(LintResultTest, SeverityCountsAndStatus) {
  LintResult R;
  R.Findings.push_back(sampleFinding(DiagSeverity::Warning));
  EXPECT_EQ(R.errorCount(), 0u);
  EXPECT_EQ(R.countAtLeast(DiagSeverity::Warning), 1u);
  EXPECT_TRUE(lintStatus(R).ok());
  Status W = lintStatus(R, /*Werror=*/true);
  ASSERT_FALSE(W.ok());
  EXPECT_EQ(W.diagnostic().Code, DiagCode::LintFRP);

  R.Findings.push_back(sampleFinding(DiagSeverity::Error));
  EXPECT_EQ(R.errorCount(), 1u);
  EXPECT_FALSE(lintStatus(R).ok());
}

TEST(LintResultTest, ReportFindingsIntoEngine) {
  LintResult R;
  R.Findings.push_back(sampleFinding(DiagSeverity::Warning));
  R.Findings.push_back(sampleFinding(DiagSeverity::Error));
  DiagnosticEngine Diags;
  reportLintFindings(R, Diags);
  EXPECT_EQ(Diags.count(DiagSeverity::Warning), 1u);
  EXPECT_EQ(Diags.errorCount(), 1u);
}

TEST(LintJSONTest, ResultEntryShape) {
  LintResult R;
  R.ChecksRun = {"frp-consistency"};
  R.Findings.push_back(sampleFinding(DiagSeverity::Error));
  JSONValue V = lintResultToJSON("kernel", R);
  ASSERT_TRUE(V.isObject());
  ASSERT_NE(V.find("function"), nullptr);
  EXPECT_EQ(V.find("function")->getString(), "kernel");
  ASSERT_NE(V.find("checks"), nullptr);
  ASSERT_EQ(V.find("checks")->items().size(), 1u);
  const JSONValue *Findings = V.find("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_EQ(Findings->items().size(), 1u);
  const JSONValue &F = Findings->items()[0];
  EXPECT_EQ(F.find("code")->getString(), "lint-frp");
  EXPECT_EQ(F.find("severity")->getString(), "error");
  EXPECT_EQ(F.find("block")->getString(), "Loop");
  EXPECT_EQ(F.find("op")->getNumber(), 12.0);
  EXPECT_EQ(F.find("op_index")->getNumber(), 3.0);
  const JSONValue *Counts = V.find("counts");
  ASSERT_NE(Counts, nullptr);
  EXPECT_EQ(Counts->find("error")->getNumber(), 1.0);
  // The writer round-trips through the strict parser.
  JSONParseResult PR = parseJSON(writeJSON(V));
  EXPECT_TRUE(static_cast<bool>(PR)) << PR.Error;
}

TEST(LintScheduleDirectiveTest, ParsesWellFormedDirectives) {
  std::vector<InjectedSchedule> Out;
  Status S = parseInjectedSchedules(
      "; header comment\n"
      "; lint-schedule(medium) @A: 0 0 1 4\n"
      "func @f {\n"
      "; lint-schedule(wide) @Loop: 2 3\n",
      Out);
  ASSERT_TRUE(S.ok());
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].MachineName, "medium");
  EXPECT_EQ(Out[0].BlockName, "A");
  EXPECT_EQ(Out[0].Cycles, (std::vector<int>{0, 0, 1, 4}));
  EXPECT_EQ(Out[1].MachineName, "wide");
  EXPECT_EQ(Out[1].BlockName, "Loop");
}

TEST(LintScheduleDirectiveTest, RejectsMalformedDirectives) {
  std::vector<InjectedSchedule> Out;
  EXPECT_FALSE(
      parseInjectedSchedules("; lint-schedule(medium @A: 0\n", Out).ok());
  EXPECT_FALSE(
      parseInjectedSchedules("; lint-schedule(medium) @A: 0 x 1\n", Out)
          .ok());
}

TEST(LintScheduleDirectiveTest, PinnedScheduleValidatesAgainstModel) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r3 = load.m1(r1)
  r4 = add(r3, 1)
  halt
}
)");
  // Legal pinned schedule: the add waits for the load's latency.
  LintOptions Good;
  Good.Schedules.push_back({"A", "medium", {0, 4, 8}});
  EXPECT_TRUE(LintDriver::withBuiltinPasses(Good).run(*F).clean());

  // Ignoring the load->add flow dependence is a schedule-legality error.
  LintOptions Bad;
  Bad.Schedules.push_back({"A", "medium", {0, 0, 8}});
  LintResult R = LintDriver::withBuiltinPasses(Bad).run(*F);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].Code, DiagCode::LintSchedule);

  // Naming an unknown machine or pinning the wrong op count is itself a
  // finding rather than a silent skip.
  LintOptions Unknown;
  Unknown.Schedules.push_back({"A", "no-such-machine", {0, 1, 2}});
  EXPECT_EQ(LintDriver::withBuiltinPasses(Unknown).run(*F).errorCount(), 1u);
  LintOptions Short;
  Short.Schedules.push_back({"A", "medium", {0, 1}});
  EXPECT_EQ(LintDriver::withBuiltinPasses(Short).run(*F).errorCount(), 1u);
}

} // namespace

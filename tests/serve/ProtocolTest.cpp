//===- tests/serve/ProtocolTest.cpp - cprd-v1 frame codec tests ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Requests cross a trust boundary: decodeRequest must reject malformed
// JSON, duplicate keys, unknown fields and wrong types with a recoverable
// ParseError diagnostic at site "cprd.frame" -- never a fatal error.
// Response decoding is lenient (unknown fields ignored) so older clients
// keep working against newer daemons.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "gtest/gtest.h"

using namespace cpr;
using namespace cpr::serve;

namespace {

void expectFrameError(const std::string &Line) {
  Expected<CompileRequest> R = decodeRequest(Line);
  ASSERT_FALSE(R.ok()) << Line;
  EXPECT_EQ(R.diagnostic().Code, DiagCode::ParseError) << Line;
  EXPECT_EQ(R.diagnostic().Site, "cprd.frame") << Line;
}

TEST(Protocol, RequestRoundTrip) {
  CompileRequest Req;
  Req.Id = "r42";
  Req.IR = "; cpr-fuzz-program-v1\n; reg r1=7\nfunc @f { ... }\n";
  Req.CPR.ExitWeightThreshold = 0.25;
  Req.CPR.PredictTakenThreshold = 0.75;
  Req.CPR.MaxBranchesPerBlock = 5;
  Req.CPR.EnablePredicateSpeculation = false;
  Req.UnrollFactor = 4;
  Req.Lint = true;
  Req.RegionEquivalence = true;
  Req.InterpMaxSteps = 123456;
  Req.TransformBudget.MaxSteps = 99;

  Expected<CompileRequest> Back = decodeRequest(encodeRequest(Req));
  ASSERT_TRUE(Back.ok()) << Back.diagnostic().str();
  EXPECT_EQ(Back->Kind, RequestKind::Compile);
  EXPECT_EQ(Back->Id, "r42");
  EXPECT_EQ(Back->IR, Req.IR);
  EXPECT_DOUBLE_EQ(Back->CPR.ExitWeightThreshold, 0.25);
  EXPECT_DOUBLE_EQ(Back->CPR.PredictTakenThreshold, 0.75);
  EXPECT_EQ(Back->CPR.MaxBranchesPerBlock, 5u);
  EXPECT_FALSE(Back->CPR.EnablePredicateSpeculation);
  EXPECT_EQ(Back->UnrollFactor, 4u);
  EXPECT_TRUE(Back->Lint);
  EXPECT_TRUE(Back->RegionEquivalence);
  EXPECT_EQ(Back->InterpMaxSteps, 123456u);
  EXPECT_EQ(Back->TransformBudget.MaxSteps, 99u);
}

TEST(Protocol, PingAndStatsRoundTrip) {
  for (const char *Cmd : {"ping", "stats"}) {
    CompileRequest Req;
    Req.Kind = Cmd[0] == 'p' ? RequestKind::Ping : RequestKind::Stats;
    Req.Id = Cmd;
    Expected<CompileRequest> Back = decodeRequest(encodeRequest(Req));
    ASSERT_TRUE(Back.ok());
    EXPECT_EQ(Back->Kind, Req.Kind);
    EXPECT_EQ(Back->Id, Cmd);
  }
}

TEST(Protocol, RejectsMalformedJSON) {
  expectFrameError("{not json");
  expectFrameError("");
  expectFrameError("[1,2,3]"); // frames are objects
}

TEST(Protocol, RejectsUnterminatedString) {
  expectFrameError("{\"proto\":\"cprd-v1\",\"id\":\"r1\",\"ir\":\"func");
}

TEST(Protocol, RejectsDuplicateKeys) {
  expectFrameError(
      "{\"proto\":\"cprd-v1\",\"id\":\"a\",\"id\":\"b\",\"ir\":\"x\"}");
}

TEST(Protocol, RejectsWrongOrMissingProto) {
  expectFrameError("{\"id\":\"r1\",\"ir\":\"func @f {}\"}");
  expectFrameError(
      "{\"proto\":\"cprd-v2\",\"id\":\"r1\",\"ir\":\"func @f {}\"}");
}

TEST(Protocol, RejectsUnknownFieldsAndOptions) {
  expectFrameError("{\"proto\":\"cprd-v1\",\"id\":\"r1\",\"ir\":\"x\","
                   "\"surprise\":1}");
  expectFrameError("{\"proto\":\"cprd-v1\",\"id\":\"r1\",\"ir\":\"x\","
                   "\"options\":{\"no_such_option\":1}}");
}

TEST(Protocol, RejectsWrongTypes) {
  expectFrameError("{\"proto\":\"cprd-v1\",\"id\":7,\"ir\":\"x\"}");
  expectFrameError("{\"proto\":\"cprd-v1\",\"id\":\"r1\",\"ir\":3}");
  expectFrameError("{\"proto\":\"cprd-v1\",\"id\":\"r1\",\"ir\":\"x\","
                   "\"options\":{\"unroll\":\"four\"}}");
}

TEST(Protocol, MissingIRRejectedForCompileOnly) {
  expectFrameError("{\"proto\":\"cprd-v1\",\"id\":\"r1\"}");
  Expected<CompileRequest> Ping =
      decodeRequest("{\"proto\":\"cprd-v1\",\"cmd\":\"ping\","
                    "\"id\":\"p\"}");
  EXPECT_TRUE(Ping.ok());
}

TEST(Protocol, UnknownCmdListsRegisteredCommands) {
  // Mirrors the unknown --predictor= contract: the rejection names every
  // registered command so a stale client learns the vocabulary from the
  // error itself.
  Expected<CompileRequest> R = decodeRequest(
      "{\"proto\":\"cprd-v1\",\"cmd\":\"compiel\",\"id\":\"r1\"}");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diagnostic().Code, DiagCode::ParseError);
  EXPECT_NE(R.diagnostic().Message.find("registered commands: " +
                                        requestCommandList()),
            std::string::npos)
      << R.diagnostic().Message;
  // The registry is the single source of truth; every known command must
  // appear in the advertised list.
  for (const char *Cmd : {"compile", "ping", "stats"})
    EXPECT_NE(requestCommandList().find(Cmd), std::string::npos) << Cmd;
}

TEST(Protocol, DeadlineMsRoundTrip) {
  CompileRequest Req;
  Req.Id = "d1";
  Req.IR = "func @f { ... }\n";
  Req.DeadlineMs = 1500.0;
  Expected<CompileRequest> Back = decodeRequest(encodeRequest(Req));
  ASSERT_TRUE(Back.ok()) << Back.diagnostic().str();
  EXPECT_DOUBLE_EQ(Back->DeadlineMs, 1500.0);
}

TEST(Protocol, ZeroDeadlineStaysOffTheWire) {
  // deadline_ms is only emitted when set, so pre-deadline fixtures (and
  // requests from older clients) encode byte-identically.
  CompileRequest Req;
  Req.Id = "d0";
  Req.IR = "func @f { ... }\n";
  EXPECT_EQ(encodeRequest(Req).find("deadline_ms"), std::string::npos);
  Req.DeadlineMs = 250.0;
  EXPECT_NE(encodeRequest(Req).find("\"deadline_ms\":250"),
            std::string::npos)
      << encodeRequest(Req);
}

TEST(Protocol, RejectsWrongDeadlineType) {
  expectFrameError("{\"proto\":\"cprd-v1\",\"id\":\"r1\",\"ir\":\"x\","
                   "\"options\":{\"deadline_ms\":\"soon\"}}");
}

TEST(Protocol, ResponseRoundTrip) {
  CompileResponse Res;
  Res.Id = "r42";
  Res.Status = "ok";
  Res.IR = "func @f { ... }\n";
  Res.FellBack = true;
  Res.CPR.RegionsProcessed = 3;
  Res.CPR.CPRBlocksTransformed = 2;
  Res.CacheHits = 5;
  Res.CacheMisses = 1;
  WireDiagnostic D;
  D.Severity = "warning";
  D.Code = "budget-exhausted";
  D.Message = "m";
  D.Site = "s";
  Res.Diagnostics.push_back(D);

  Expected<CompileResponse> Back = decodeResponse(encodeResponse(Res));
  ASSERT_TRUE(Back.ok()) << Back.diagnostic().str();
  EXPECT_EQ(Back->Id, "r42");
  EXPECT_EQ(Back->Status, "ok");
  EXPECT_EQ(Back->IR, Res.IR);
  EXPECT_TRUE(Back->FellBack);
  EXPECT_EQ(Back->CPR.RegionsProcessed, 3u);
  EXPECT_EQ(Back->CPR.CPRBlocksTransformed, 2u);
  EXPECT_EQ(Back->CacheHits, 5u);
  EXPECT_EQ(Back->CacheMisses, 1u);
  ASSERT_EQ(Back->Diagnostics.size(), 1u);
  EXPECT_EQ(Back->Diagnostics[0].Code, "budget-exhausted");
}

TEST(Protocol, ResponseDecodeIsLenientAboutUnknownFields) {
  Expected<CompileResponse> Res = decodeResponse(
      "{\"proto\":\"cprd-v1\",\"id\":\"r1\",\"status\":\"ok\","
      "\"ir\":\"f\",\"from_the_future\":{\"x\":1}}");
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(Res->Id, "r1");
  EXPECT_TRUE(Res->ok());
}

TEST(Protocol, WallTimeStaysOffTheWire) {
  // A response frame is a pure function of the request: encoding must
  // not leak wall-clock state, or cached and cold compiles would differ.
  CompileResponse A, B;
  A.Id = B.Id = "r";
  A.Status = B.Status = "ok";
  A.WallMs = 1.0;
  B.WallMs = 999.0;
  EXPECT_EQ(encodeResponse(A), encodeResponse(B));
}

TEST(Protocol, ErrorResponseCarriesDiagnostic) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = DiagCode::ParseError;
  D.Message = "bad frame";
  D.Site = "cprd.frame";
  CompileResponse Res = errorResponse("r9", D);
  EXPECT_EQ(Res.Id, "r9");
  EXPECT_EQ(Res.Status, "error");
  ASSERT_EQ(Res.Diagnostics.size(), 1u);
  EXPECT_EQ(Res.Diagnostics[0].Code, "parse-error");
  EXPECT_EQ(Res.Diagnostics[0].Severity, "error");
}

} // namespace

//===- tests/serve/CompileServiceTest.cpp - service-level tests ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The service's two load-bearing guarantees:
//
//  1. Byte-identity: a request answered from the region cache produces
//     the same response frame as a cold compile of the same request --
//     modulo the "cache" telemetry section, which is how a hit is
//     observed at all (docs/SERVICE.md). Verified over the built-in
//     kernels and the committed fuzz regression corpus.
//
//  2. Failure isolation: malformed programs, verifier rejects and
//     oversized payloads produce error responses with diagnostics and
//     leave the service fully usable.
//
//===----------------------------------------------------------------------===//

#include "serve/CompileService.h"

#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "workloads/Kernels.h"

#include "gtest/gtest.h"

#include <thread>

using namespace cpr;
using namespace cpr::serve;

namespace {

CompileRequest requestFor(std::string IR, std::string Id = "r") {
  CompileRequest Req;
  Req.Id = std::move(Id);
  Req.IR = std::move(IR);
  return Req;
}

/// The response frame with the cache telemetry normalized away -- the
/// identity the service guarantees between cold and cached compiles.
std::string canonicalFrame(CompileResponse Res, const std::string &Id) {
  Res.Id = Id;
  Res.CacheHits = 0;
  Res.CacheMisses = 0;
  return encodeResponse(Res);
}

void expectColdVsCachedIdentical(const std::string &IR,
                                 const std::string &Label) {
  CompileService Service;
  CompileResponse Cold = Service.compile(requestFor(IR, "cold"));
  CompileResponse Warm = Service.compile(requestFor(IR, "warm"));

  EXPECT_EQ(canonicalFrame(Cold, "x"), canonicalFrame(Warm, "x"))
      << Label << ": cached response differs from cold compile";
  // Whatever the cold run committed, the warm run must replay: a warm
  // miss is only legal for regions the cold run could not commit
  // (rollback / budget activity), and then both runs miss alike.
  EXPECT_EQ(Warm.CacheHits + Warm.CacheMisses,
            Cold.CacheHits + Cold.CacheMisses)
      << Label;
  EXPECT_GE(Warm.CacheHits, Cold.CacheHits) << Label;
}

TEST(CompileService, PingAndStats) {
  CompileService Service;
  CompileRequest Ping;
  Ping.Kind = RequestKind::Ping;
  Ping.Id = "p";
  EXPECT_EQ(Service.compile(Ping).Status, "pong");

  CompileRequest Stats;
  Stats.Kind = RequestKind::Stats;
  Stats.Id = "s";
  CompileResponse Res = Service.compile(Stats);
  EXPECT_EQ(Res.Status, "stats");
  bool SawHits = false;
  for (const auto &KV : Res.Extra)
    if (KV.first == "cache_hits")
      SawHits = true;
  EXPECT_TRUE(SawHits);
}

TEST(CompileService, KernelCompilesAndCaches) {
  CompileService Service;
  std::string IR = serializeFuzzProgram(buildStrcpyKernel(4, 512, 1));

  CompileResponse Cold = Service.compile(requestFor(IR, "c"));
  ASSERT_TRUE(Cold.ok()) << Cold.Status;
  EXPECT_GT(Cold.CPR.RegionsProcessed, 0u);
  EXPECT_GT(Cold.CacheMisses, 0u);
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_FALSE(Cold.IR.empty());

  CompileResponse Warm = Service.compile(requestFor(IR, "w"));
  ASSERT_TRUE(Warm.ok());
  EXPECT_EQ(Warm.CacheMisses, 0u); // every region replayed
  EXPECT_EQ(Warm.CacheHits, Cold.CacheMisses);
  EXPECT_EQ(canonicalFrame(Cold, "x"), canonicalFrame(Warm, "x"));
}

TEST(CompileService, ColdVsCachedOverBuiltinKernels) {
  expectColdVsCachedIdentical(
      serializeFuzzProgram(buildStrcpyKernel(4, 512, 1)), "strcpy");
  expectColdVsCachedIdentical(
      serializeFuzzProgram(buildCmpKernel(4, 512, 480, 2)), "cmp");
  expectColdVsCachedIdentical(
      serializeFuzzProgram(buildGrepKernel(4, 512, 0.02, 3)), "grep");
  expectColdVsCachedIdentical(
      serializeFuzzProgram(buildWcKernel(4, 512, 4)), "wc");
}

TEST(CompileService, ColdVsCachedOverGeneratedPrograms) {
  GeneratorConfig GC;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed)
    expectColdVsCachedIdentical(
        serializeFuzzProgram(generateProgram(Seed, GC)),
        "seed " + std::to_string(Seed));
}

TEST(CompileService, ColdVsCachedOverRegressionCorpus) {
  std::vector<std::string> Files =
      listCorpusFiles(CPR_SERVE_REGRESSION_DIR);
  ASSERT_FALSE(Files.empty());
  for (const std::string &Path : Files) {
    FuzzParseResult FP = loadFuzzProgramFile(Path);
    ASSERT_TRUE(FP) << Path << ": " << FP.Error;
    expectColdVsCachedIdentical(serializeFuzzProgram(FP.Program), Path);
  }
}

TEST(CompileService, ParseErrorIsIsolated) {
  CompileService Service;
  CompileResponse Res = Service.compile(requestFor("func @broken {", "b"));
  EXPECT_EQ(Res.Status, "error");
  ASSERT_FALSE(Res.Diagnostics.empty());
  EXPECT_EQ(Res.Diagnostics[0].Code, "parse-error");

  // The service survives and still compiles.
  std::string IR = serializeFuzzProgram(buildWcKernel(4, 256, 4));
  EXPECT_TRUE(Service.compile(requestFor(IR, "ok")).ok());
}

TEST(CompileService, VerifierRejectIsIsolated) {
  CompileService Service;
  // Parses, but moves a GPR into a float register: a class mismatch the
  // verifier rejects (same shape as tests/fixtures/verify_error.ir).
  CompileResponse Res = Service.compile(
      requestFor("func @bad {\nblock @A:\n  f1 = mov(r1)\n  halt\n}\n",
                 "v"));
  EXPECT_EQ(Res.Status, "error");
  ASSERT_FALSE(Res.Diagnostics.empty());
  EXPECT_EQ(Res.Diagnostics[0].Code, "verify-failed");
}

TEST(CompileService, PayloadCapRefusesAdmission) {
  ServiceOptions SO;
  SO.MaxIRBytes = 16;
  CompileService Service(SO);
  CompileResponse Res = Service.compile(
      requestFor(serializeFuzzProgram(buildWcKernel(4, 256, 4)), "big"));
  EXPECT_EQ(Res.Status, "error");
  ASSERT_FALSE(Res.Diagnostics.empty());
  EXPECT_EQ(Res.Diagnostics[0].Code, "budget-exhausted");
  EXPECT_EQ(Res.Diagnostics[0].Site, "cprd.admission");
}

TEST(CompileService, FingerprintSeparatesOptionsAndBudgets) {
  CompileRequest A = requestFor("func @f {}", "a");
  CompileRequest B = A;
  B.CPR.ExitWeightThreshold = A.CPR.ExitWeightThreshold + 0.125;

  Budget Resolved;
  Resolved.MaxSteps = 100;
  EXPECT_NE(requestFingerprint(A, 1000, Resolved),
            requestFingerprint(B, 1000, Resolved));
  EXPECT_NE(requestFingerprint(A, 1000, Resolved),
            requestFingerprint(A, 2000, Resolved));
  Budget Other;
  Other.MaxSteps = 101;
  EXPECT_NE(requestFingerprint(A, 1000, Resolved),
            requestFingerprint(A, 1000, Other));
  EXPECT_EQ(requestFingerprint(A, 1000, Resolved),
            requestFingerprint(A, 1000, Resolved));
}

/// Concurrent identical requests: coalescing makes the cache-wide
/// hit/miss totals a deterministic function of the workload, and every
/// response is byte-identical to every other.
void runConcurrentIdenticalRequests(unsigned Threads) {
  CompileService Service;
  std::string IR = serializeFuzzProgram(buildGrepKernel(4, 512, 0.02, 3));

  std::vector<CompileResponse> Responses(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Responses[T] =
          Service.compile(requestFor(IR, "t" + std::to_string(T)));
    });
  for (std::thread &W : Workers)
    W.join();

  uint64_t PerRequest = Responses[0].CacheHits + Responses[0].CacheMisses;
  ASSERT_GT(PerRequest, 0u);
  uint64_t TotalMisses = 0;
  for (unsigned T = 0; T < Threads; ++T) {
    ASSERT_TRUE(Responses[T].ok());
    EXPECT_EQ(Responses[T].CacheHits + Responses[T].CacheMisses,
              PerRequest);
    TotalMisses += Responses[T].CacheMisses;
    EXPECT_EQ(canonicalFrame(Responses[0], "x"),
              canonicalFrame(Responses[T], "x"))
        << "thread " << T;
  }
  // Each region key was claimed (missed) exactly once across all
  // threads; everyone else coalesced into hits.
  EXPECT_EQ(TotalMisses, PerRequest) << "threads=" << Threads;
  RegionCacheStats S = Service.cacheStats();
  EXPECT_EQ(S.Misses, PerRequest);
  EXPECT_EQ(S.Hits, (Threads - 1) * PerRequest);
}

TEST(CompileService, ConcurrentRequestsAt2Threads) {
  runConcurrentIdenticalRequests(2);
}
TEST(CompileService, ConcurrentRequestsAt4Threads) {
  runConcurrentIdenticalRequests(4);
}
TEST(CompileService, ConcurrentRequestsAt8Threads) {
  runConcurrentIdenticalRequests(8);
}

TEST(CompileService, InterpStepCapIsClamped) {
  ServiceOptions SO;
  SO.MaxInterpSteps = 50; // absurdly low ceiling
  CompileService Service(SO);
  // The kernel needs far more steps to profile; admission clamps the
  // request's cap to 50 and the profile run fails recoverably.
  CompileRequest Req =
      requestFor(serializeFuzzProgram(buildWcKernel(4, 256, 4)), "clamp");
  Req.InterpMaxSteps = 1000000000;
  CompileResponse Res = Service.compile(Req);
  EXPECT_EQ(Res.Status, "error");
  EXPECT_FALSE(Res.Diagnostics.empty());
}

} // namespace

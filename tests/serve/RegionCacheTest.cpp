//===- tests/serve/RegionCacheTest.cpp - RegionCache unit tests ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The cache's contract (serve/RegionCache.h): LRU residency under a byte
// budget, and hit/miss counters that are a deterministic function of the
// request sequence at ANY thread count -- the in-flight coalescing rule
// (first lookup claims, concurrent lookups wait, abandon hands the claim
// to one waiter) is what the concurrency tests pin.
//
//===----------------------------------------------------------------------===//

#include "serve/RegionCache.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace cpr;
using namespace cpr::serve;

namespace {

/// An entry tagged through a counter (so a returned copy identifies which
/// commit produced it) and padded to a controllable footprint.
RegionMemoEntry makeEntry(unsigned Tag, size_t PadBytes = 0) {
  RegionMemoEntry E;
  E.Delta.RegionsProcessed = Tag;
  if (PadBytes > 0) {
    RegionMemoAppendedBlock AB;
    AB.Name.assign(PadBytes, 'x');
    E.AppendedBlocks.push_back(std::move(AB));
  }
  return E;
}

TEST(RegionCache, MissClaimCommitHit) {
  RegionCache Cache(/*MaxBytes=*/0);
  EXPECT_FALSE(Cache.lookup(42).has_value()); // miss, claim taken
  Cache.commit(42, makeEntry(7));
  std::optional<RegionMemoEntry> E = Cache.lookup(42);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Delta.RegionsProcessed, 7u);

  RegionCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
}

TEST(RegionCache, AbandonedKeyMissesAgain) {
  RegionCache Cache(0);
  EXPECT_FALSE(Cache.lookup(1).has_value());
  Cache.abandon(1); // the compile was unclean; nothing recorded
  EXPECT_FALSE(Cache.lookup(1).has_value());
  Cache.abandon(1);

  RegionCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 2u); // one miss per attempt, never a false hit
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Entries, 0u);
}

TEST(RegionCache, EvictsLeastRecentlyUsedUnderBudget) {
  // Budget sized for about two padded entries.
  const size_t Pad = 4096;
  RegionCache Cache(2 * (sizeof(RegionMemoEntry) +
                         sizeof(RegionMemoAppendedBlock) + Pad) +
                    64);
  for (uint64_t K = 0; K < 2; ++K) {
    EXPECT_FALSE(Cache.lookup(K).has_value());
    Cache.commit(K, makeEntry(static_cast<unsigned>(K), Pad));
  }
  EXPECT_EQ(Cache.stats().Entries, 2u);

  // Touch key 0 so key 1 is the LRU tail, then insert key 2.
  EXPECT_TRUE(Cache.lookup(0).has_value());
  EXPECT_FALSE(Cache.lookup(2).has_value());
  Cache.commit(2, makeEntry(2, Pad));

  RegionCacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_LE(S.Bytes, S.MaxBytes);
  EXPECT_TRUE(Cache.lookup(0).has_value());  // recently touched: resident
  EXPECT_TRUE(Cache.lookup(2).has_value());  // just inserted: resident
  EXPECT_FALSE(Cache.lookup(1).has_value()); // LRU tail: evicted
  Cache.abandon(1);                          // release the re-claim
}

TEST(RegionCache, OversizeEntryNeverResident) {
  RegionCache Cache(/*MaxBytes=*/64); // smaller than any entry
  EXPECT_FALSE(Cache.lookup(5).has_value());
  Cache.commit(5, makeEntry(1, 4096));

  RegionCacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.Bytes, 0u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_FALSE(Cache.lookup(5).has_value());
  Cache.abandon(5);
}

TEST(RegionCache, ClearDropsEntriesKeepsCounters) {
  RegionCache Cache(0);
  EXPECT_FALSE(Cache.lookup(9).has_value());
  Cache.commit(9, makeEntry(9));
  EXPECT_TRUE(Cache.lookup(9).has_value());
  Cache.clear();

  RegionCacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.Bytes, 0u);
  EXPECT_EQ(S.Hits, 1u); // counters survive the clear
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_FALSE(Cache.lookup(9).has_value());
  Cache.abandon(9);
}

/// The determinism claim: Keys distinct keys looked up by every one of
/// Threads workers concurrently produce exactly Keys misses (one per
/// key, the claimant's) and Threads*Keys - Keys hits (everyone else),
/// regardless of scheduling.
void runDeterministicCounters(unsigned Threads, uint64_t Keys) {
  RegionCache Cache(0);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&Cache, Keys] {
      for (uint64_t K = 0; K < Keys; ++K)
        if (!Cache.lookup(K).has_value())
          Cache.commit(K, makeEntry(static_cast<unsigned>(K)));
    });
  for (std::thread &W : Workers)
    W.join();

  RegionCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, Keys) << "threads=" << Threads;
  EXPECT_EQ(S.Hits, Threads * Keys - Keys) << "threads=" << Threads;
  EXPECT_EQ(S.Entries, Keys);
}

TEST(RegionCache, DeterministicCountersAt1Thread) {
  runDeterministicCounters(1, 16);
}
TEST(RegionCache, DeterministicCountersAt2Threads) {
  runDeterministicCounters(2, 16);
}
TEST(RegionCache, DeterministicCountersAt4Threads) {
  runDeterministicCounters(4, 16);
}
TEST(RegionCache, DeterministicCountersAt8Threads) {
  runDeterministicCounters(8, 16);
}

/// Abandon under contention: the claim passes to exactly one waiter, so
/// an always-unclean key still counts one miss per lookup and the entry
/// count stays zero.
TEST(RegionCache, AbandonUnderContentionTransfersClaim) {
  const unsigned Threads = 8;
  RegionCache Cache(0);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&Cache] {
      if (!Cache.lookup(77).has_value())
        Cache.abandon(77);
    });
  for (std::thread &W : Workers)
    W.join();

  RegionCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, Threads); // every lookup became a (transferred) claim
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Entries, 0u);
}

} // namespace

//===- tests/serve/ChaosTest.cpp - Adversarial clients vs cprd ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The resilience contract (docs/SERVICE.md "Resilience"), checked against
// a live in-process daemon on a Unix socket with deliberately hostile
// clients: torn frames, half-closed sockets, disconnects mid-compile,
// pipelined floods, oversized frames, slowloris stalls, and every
// serve-layer fault site armed in turn. Invariants:
//
//   - the daemon never crashes (every scenario ends with a live ping);
//   - every accepted request gets exactly one response;
//   - misbehavior is billed to the connection that misbehaved, never to
//     the daemon or to other clients.
//
// The larger seeded campaign (>= 500 requests, byte-identity against a
// cold single-threaded service) lives in `cpr-bench-serve --chaos`.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "support/FaultInjector.h"
#include "support/Framing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cpr;
using namespace cpr::serve;

namespace {

// The daemon ignores SIGPIPE (tools/cprd.cpp); the test process hosting
// an in-process daemon must too, or a vanished peer kills the suite.
struct IgnoreSigpipe {
  IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} IgnoreSigpipeInit;

/// An in-process daemon on a fresh temp socket. start() blocks until the
/// socket is accepting; the destructor stops and joins.
class DaemonFixture {
public:
  explicit DaemonFixture(ServerOptions SO) {
    static std::atomic<unsigned> Counter{0};
    Path = "/tmp/cpr_chaos_" + std::to_string(::getpid()) + "_" +
           std::to_string(Counter.fetch_add(1)) + ".sock";
    SO.SocketPath = Path;
    Daemon = std::make_unique<Server>(std::move(SO));
    Runner = std::thread([this] { Daemon->runSocket(); });
    for (int I = 0; I < 100 && ::access(Path.c_str(), F_OK) != 0; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(::access(Path.c_str(), F_OK), 0) << "daemon never bound";
  }
  ~DaemonFixture() {
    Daemon->requestStop();
    Runner.join();
  }

  const std::string &path() const { return Path; }
  Server &daemon() { return *Daemon; }

  /// The liveness probe every scenario ends with: a fresh connection's
  /// ping must come back "pong".
  void expectAlive() {
    Expected<Client> C = Client::connect(Path);
    ASSERT_TRUE(C.ok()) << C.diagnostic().str();
    CompileRequest Ping;
    Ping.Kind = RequestKind::Ping;
    Ping.Id = "alive";
    Expected<CompileResponse> R = C->roundTrip(Ping);
    ASSERT_TRUE(R.ok()) << R.diagnostic().str();
    EXPECT_EQ(R->Status, "pong");
  }

private:
  std::string Path;
  std::unique_ptr<Server> Daemon;
  std::thread Runner;
};

/// A byte-level client for sending deliberately broken input.
class RawClient {
public:
  explicit RawClient(const std::string &Path) {
    FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      ::close(FD);
      FD = -1;
    }
    Reader = std::make_unique<LineReader>(FD);
  }
  ~RawClient() {
    if (FD >= 0)
      ::close(FD);
  }

  bool connected() const { return FD >= 0; }
  bool send(const std::string &Bytes) { return writeAll(FD, Bytes); }
  bool sendFrame(const CompileRequest &Req) {
    return send(encodeRequest(Req) + "\n");
  }
  bool readFrame(std::string &Line) { return Reader->readLine(Line); }
  void halfClose() { ::shutdown(FD, SHUT_WR); }
  void hardClose() {
    ::close(FD);
    FD = -1;
  }

private:
  int FD = -1;
  std::unique_ptr<LineReader> Reader;
};

std::string testProgram(uint64_t Seed) {
  GeneratorConfig GC;
  return serializeFuzzProgram(generateProgram(Seed, GC));
}

CompileRequest compileRequest(std::string Id, uint64_t Seed) {
  CompileRequest Req;
  Req.Id = std::move(Id);
  Req.IR = testProgram(Seed);
  return Req;
}

bool hasDiagCode(const CompileResponse &Res, const std::string &Code) {
  for (const WireDiagnostic &W : Res.Diagnostics)
    if (W.Code == Code)
      return true;
  return false;
}

double extraValue(const CompileResponse &Res, const std::string &Key,
                  double Missing = -1.0) {
  for (const auto &KV : Res.Extra)
    if (KV.first == Key)
      return KV.second;
  return Missing;
}

TEST(Chaos, TornFramesReassembleAcrossArbitraryWriteBoundaries) {
  DaemonFixture D(ServerOptions{});
  RawClient C(D.path());
  ASSERT_TRUE(C.connected());
  // One byte per write(): every tear a stream socket can produce.
  CompileRequest Ping;
  Ping.Kind = RequestKind::Ping;
  Ping.Id = "torn";
  const std::string Frame = encodeRequest(Ping) + "\n";
  for (char B : Frame)
    ASSERT_TRUE(C.send(std::string(1, B)));
  std::string Line;
  ASSERT_TRUE(C.readFrame(Line));
  Expected<CompileResponse> Res = decodeResponse(Line);
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(Res->Id, "torn");
  EXPECT_EQ(Res->Status, "pong");
  D.expectAlive();
}

TEST(Chaos, UnknownCmdAnswersWithTheCommandRegistry) {
  DaemonFixture D(ServerOptions{});
  RawClient C(D.path());
  ASSERT_TRUE(C.connected());
  ASSERT_TRUE(C.send("{\"proto\":\"cprd-v1\",\"cmd\":\"flush\","
                     "\"id\":\"x\"}\n"));
  std::string Line;
  ASSERT_TRUE(C.readFrame(Line));
  Expected<CompileResponse> Res = decodeResponse(Line);
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(Res->Status, "error");
  ASSERT_FALSE(Res->Diagnostics.empty());
  EXPECT_NE(Res->Diagnostics[0].Message.find("registered commands: " +
                                             requestCommandList()),
            std::string::npos)
      << Res->Diagnostics[0].Message;
  D.expectAlive();
}

TEST(Chaos, OversizedFrameRejectedWithoutBufferingIt) {
  ServerOptions SO;
  SO.MaxFrameBytes = 512;
  DaemonFixture D(SO);
  RawClient C(D.path());
  ASSERT_TRUE(C.connected());
  // 16x the cap, no newline: the daemon must reject while reading.
  C.send(std::string(8192, 'x'));
  std::string Line;
  ASSERT_TRUE(C.readFrame(Line));
  Expected<CompileResponse> Res = decodeResponse(Line);
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(Res->Status, "error");
  ASSERT_FALSE(Res->Diagnostics.empty());
  EXPECT_NE(Res->Diagnostics[0].Message.find("frame rejected"),
            std::string::npos);
  // The stream is no longer frame-aligned: the connection ends here.
  EXPECT_FALSE(C.readFrame(Line));
  D.expectAlive();
}

TEST(Chaos, HalfClosedConnectionStillReceivesEveryResponse) {
  DaemonFixture D(ServerOptions{});
  RawClient C(D.path());
  ASSERT_TRUE(C.connected());
  // Pipeline three requests, then shut down the write side before any
  // response arrives. EOF means "no more requests", never "discard my
  // responses".
  ASSERT_TRUE(C.sendFrame(compileRequest("h1", 101)));
  ASSERT_TRUE(C.sendFrame(compileRequest("h2", 102)));
  CompileRequest Ping;
  Ping.Kind = RequestKind::Ping;
  Ping.Id = "h3";
  ASSERT_TRUE(C.sendFrame(Ping));
  C.halfClose();
  std::set<std::string> Ids;
  std::string Line;
  while (C.readFrame(Line)) {
    Expected<CompileResponse> Res = decodeResponse(Line);
    ASSERT_TRUE(Res.ok());
    EXPECT_TRUE(Ids.insert(Res->Id).second) << "duplicate " << Res->Id;
  }
  EXPECT_EQ(Ids, (std::set<std::string>{"h1", "h2", "h3"}));
  D.expectAlive();
}

TEST(Chaos, DisconnectMidCompileIsCountedAndCancelled) {
  DaemonFixture D(ServerOptions{});
  uint64_t Before = D.daemon().stats().Dropped;
  {
    RawClient C(D.path());
    ASSERT_TRUE(C.connected());
    ASSERT_TRUE(C.sendFrame(compileRequest("gone", 103)));
    C.hardClose(); // vanish while the compile runs
  }
  // The response write fails against the closed peer; the daemon must
  // bill the drop to the connection (never crash, never hang).
  uint64_t After = Before;
  for (int I = 0; I < 250 && After == Before; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    After = D.daemon().stats().Dropped;
  }
  EXPECT_GT(After, Before);
  D.expectAlive();
}

TEST(Chaos, PipelinedFloodIsShedWithRetryHints) {
  ServerOptions SO;
  SO.Threads = 1;
  SO.MaxPipeline = 1;
  DaemonFixture D(SO);
  RawClient C(D.path());
  ASSERT_TRUE(C.connected());
  const unsigned N = 8;
  for (unsigned I = 0; I < N; ++I)
    ASSERT_TRUE(C.sendFrame(compileRequest("f" + std::to_string(I), 104)));
  C.halfClose();
  std::set<std::string> Ids;
  unsigned Busy = 0;
  std::string Line;
  while (C.readFrame(Line)) {
    Expected<CompileResponse> Res = decodeResponse(Line);
    ASSERT_TRUE(Res.ok());
    EXPECT_TRUE(Ids.insert(Res->Id).second) << "duplicate " << Res->Id;
    if (Res->Status == "busy") {
      ++Busy;
      // Every refusal carries a positive deterministic backoff hint.
      EXPECT_GT(extraValue(*Res, "retry_after_ms"), 0.0);
    } else {
      EXPECT_EQ(Res->Status, "ok");
    }
  }
  // Exactly one response per request, accepted or refused.
  EXPECT_EQ(Ids.size(), N);
  // The reader outruns a single worker: the pipeline cap must trip.
  EXPECT_GE(Busy, 1u);
  EXPECT_GE(D.daemon().stats().Shed, Busy);
  D.expectAlive();
}

TEST(Chaos, ExpiredDeadlineDegradesFailSafe) {
  DaemonFixture D(ServerOptions{});
  Expected<Client> C = Client::connect(D.path());
  ASSERT_TRUE(C.ok());
  CompileRequest Req = compileRequest("dl", 105);
  Req.DeadlineMs = 0.01; // expired by the first stage boundary
  Expected<CompileResponse> Res = C->roundTrip(Req);
  ASSERT_TRUE(Res.ok()) << Res.diagnostic().str();
  // Deadline expiry degrades exactly like budget exhaustion: fail-safe
  // fallback to the untransformed input, never a hang or hard error.
  EXPECT_EQ(Res->Status, "ok");
  EXPECT_TRUE(Res->FellBack);
  EXPECT_TRUE(hasDiagCode(*Res, "deadline-exceeded"))
      << encodeResponse(*Res);
  // A sane deadline on the same program compiles fully.
  CompileRequest Ok = compileRequest("dl2", 105);
  Ok.DeadlineMs = 60000.0;
  Expected<CompileResponse> Res2 = C->roundTrip(Ok);
  ASSERT_TRUE(Res2.ok());
  EXPECT_EQ(Res2->Status, "ok");
  EXPECT_FALSE(Res2->FellBack) << encodeResponse(*Res2);
  D.expectAlive();
}

TEST(Chaos, SlowlorisTripsTheIdleTimeout) {
  ServerOptions SO;
  SO.IdleTimeoutMs = 150.0;
  DaemonFixture D(SO);
  uint64_t Before = D.daemon().stats().Dropped;
  RawClient C(D.path());
  ASSERT_TRUE(C.connected());
  C.send("{\"proto\":"); // half a frame, then silence
  std::string Line;
  ASSERT_TRUE(C.readFrame(Line)); // best-effort notice before the drop
  Expected<CompileResponse> Res = decodeResponse(Line);
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(Res->Status, "error");
  ASSERT_FALSE(Res->Diagnostics.empty());
  EXPECT_NE(Res->Diagnostics[0].Message.find("idle timeout"),
            std::string::npos);
  EXPECT_FALSE(C.readFrame(Line)); // then the connection ends
  EXPECT_GT(D.daemon().stats().Dropped, Before);
  D.expectAlive();
}

TEST(Chaos, EveryServeFaultSiteLeavesTheDaemonServing) {
  DaemonFixture D(ServerOptions{});

  { // A faulted decode is a per-frame parse error, not connection-fatal.
    fault::ScopedFault Armed("serve.frame.decode", 1);
    RawClient C(D.path());
    ASSERT_TRUE(C.connected());
    ASSERT_TRUE(C.sendFrame(compileRequest("fd", 106)));
    std::string Line;
    ASSERT_TRUE(C.readFrame(Line));
    Expected<CompileResponse> Res = decodeResponse(Line);
    ASSERT_TRUE(Res.ok());
    EXPECT_EQ(Res->Status, "error");
    EXPECT_TRUE(hasDiagCode(*Res, "parse-error"));
  }
  { // A faulted enqueue sheds a request the queue had room for.
    fault::ScopedFault Armed("serve.dispatch.enqueue", 1);
    RawClient C(D.path());
    ASSERT_TRUE(C.connected());
    ASSERT_TRUE(C.sendFrame(compileRequest("de", 106)));
    std::string Line;
    ASSERT_TRUE(C.readFrame(Line));
    Expected<CompileResponse> Res = decodeResponse(Line);
    ASSERT_TRUE(Res.ok());
    EXPECT_EQ(Res->Status, "busy");
  }
  { // A faulted cache insert drops the entry; the compile still answers.
    fault::ScopedFault Armed("serve.cache.insert", 1);
    RawClient C(D.path());
    ASSERT_TRUE(C.connected());
    ASSERT_TRUE(C.sendFrame(compileRequest("ci", 106)));
    std::string Line;
    ASSERT_TRUE(C.readFrame(Line));
    Expected<CompileResponse> Res = decodeResponse(Line);
    ASSERT_TRUE(Res.ok());
    EXPECT_EQ(Res->Status, "ok");
  }
  uint64_t Before = D.daemon().stats().Dropped;
  { // A faulted socket write behaves like a vanished peer: the frame is
    // dropped and the connection torn down -- never a crash.
    fault::ScopedFault Armed("serve.socket.write", 1);
    RawClient C(D.path());
    ASSERT_TRUE(C.connected());
    CompileRequest Ping;
    Ping.Kind = RequestKind::Ping;
    Ping.Id = "sw";
    ASSERT_TRUE(C.sendFrame(Ping));
    std::string Line;
    EXPECT_FALSE(C.readFrame(Line)); // response lost, connection closed
  }
  EXPECT_GT(D.daemon().stats().Dropped, Before);
  D.expectAlive();
}

TEST(Chaos, RetryingClientRidesOutBusyAndRecovers) {
  ServerOptions SO;
  SO.Threads = 1;
  SO.MaxQueue = 1;
  DaemonFixture D(SO);
  // Occupy the whole queue with pipelined compiles from one connection.
  RawClient Hog(D.path());
  ASSERT_TRUE(Hog.connected());
  for (unsigned I = 0; I < 4; ++I)
    ASSERT_TRUE(Hog.sendFrame(compileRequest("hog" + std::to_string(I),
                                             107 + I)));
  // A bare roundTrip would likely see "busy"; callWithRetry backs off
  // (honoring retry_after_ms) until the hog's work drains.
  CompileRequest Ping;
  Ping.Kind = RequestKind::Ping;
  Ping.Id = "patient";
  RetryPolicy Policy;
  Policy.MaxRetries = 50;
  Policy.InitialBackoffMs = 2.0;
  Policy.MaxBackoffMs = 50.0;
  Policy.DeadlineMs = 30000.0;
  Expected<CompileResponse> Res =
      Client::callWithRetry(D.path(), Ping, Policy);
  ASSERT_TRUE(Res.ok()) << Res.diagnostic().str();
  EXPECT_EQ(Res->Status, "pong");
  Hog.halfClose();
  std::string Line;
  while (Hog.readFrame(Line))
    ; // drain the hog's responses
  D.expectAlive();
}

TEST(Chaos, RetryingClientGivesUpCleanlyWhenNoDaemonExists) {
  RetryPolicy Policy;
  Policy.MaxRetries = 2;
  Policy.InitialBackoffMs = 1.0;
  CompileRequest Ping;
  Ping.Kind = RequestKind::Ping;
  Ping.Id = "void";
  Expected<CompileResponse> Res = Client::callWithRetry(
      "/tmp/cpr_chaos_no_such_daemon.sock", Ping, Policy);
  ASSERT_FALSE(Res.ok());
  EXPECT_EQ(Res.diagnostic().Code, DiagCode::IOError);
}

TEST(Chaos, StatsExposesTheResilienceCounters) {
  ServerOptions SO;
  SO.MaxQueue = 32;
  DaemonFixture D(SO);
  Expected<Client> C = Client::connect(D.path());
  ASSERT_TRUE(C.ok());
  Expected<CompileResponse> R1 = C->roundTrip(compileRequest("s1", 110));
  ASSERT_TRUE(R1.ok());
  EXPECT_EQ(R1->Status, "ok");
  CompileRequest Stats;
  Stats.Kind = RequestKind::Stats;
  Stats.Id = "st";
  Expected<CompileResponse> Res = C->roundTrip(Stats);
  ASSERT_TRUE(Res.ok());
  for (const char *Key : {"queue_depth", "in_flight", "accepted", "shed",
                          "connections_dropped", "max_queue"})
    EXPECT_GE(extraValue(*Res, Key), 0.0) << Key << " missing";
  EXPECT_EQ(extraValue(*Res, "max_queue"), 32.0);
  EXPECT_GE(extraValue(*Res, "accepted"), 2.0); // s1 + this stats request
  EXPECT_GE(extraValue(*Res, "responses/ok"), 1.0);
  D.expectAlive();
}

TEST(Chaos, MiniCampaignEveryAcceptedRequestGetsExactlyOneResponse) {
  ServerOptions SO;
  SO.Threads = 2;
  DaemonFixture D(SO);
  // Four adversarial clients, each mixing good compiles (repeating two
  // unique programs), pings, malformed frames, and torn writes. Per
  // client: N frames in (pipelined), N responses out, ids unique, and
  // repeats of the same program answer with identical transformed IR.
  const unsigned Clients = 4, PerClient = 15;
  std::vector<std::string> Programs = {testProgram(111), testProgram(112)};
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Clients; ++T)
    Threads.emplace_back([&, T] {
      RawClient C(D.path());
      if (!C.connected()) {
        ++Failures;
        return;
      }
      std::set<std::string> Want;
      for (unsigned I = 0; I < PerClient; ++I) {
        std::string Id = "c" + std::to_string(T) + "r" + std::to_string(I);
        std::string Frame;
        switch (I % 5) {
        case 0:
        case 1: { // a good compile of program (I%2)
          CompileRequest Req;
          Req.Id = Id;
          Req.IR = Programs[I % 2];
          Frame = encodeRequest(Req) + "\n";
          break;
        }
        case 2: { // ping
          CompileRequest Req;
          Req.Kind = RequestKind::Ping;
          Req.Id = Id;
          Frame = encodeRequest(Req) + "\n";
          break;
        }
        case 3: // malformed: still owed exactly one (id-less) response
          Frame = "{broken json " + Id + "\n";
          break;
        case 4: { // torn write of a good frame
          CompileRequest Req;
          Req.Id = Id;
          Req.IR = Programs[0];
          Frame = encodeRequest(Req) + "\n";
          size_t Cut = Frame.size() / 2;
          if (!C.send(Frame.substr(0, Cut)) ||
              !C.send(Frame.substr(Cut))) {
            ++Failures;
            return;
          }
          Want.insert(Id);
          continue;
        }
        }
        if (I % 5 != 3)
          Want.insert(Id);
        if (!C.send(Frame)) {
          ++Failures;
          return;
        }
      }
      C.halfClose();
      std::set<std::string> Got;
      unsigned Responses = 0;
      std::string Line;
      std::vector<std::string> IRByProgram[2];
      while (C.readFrame(Line)) {
        Expected<CompileResponse> Res = decodeResponse(Line);
        if (!Res.ok()) {
          ++Failures;
          return;
        }
        ++Responses;
        if (!Res->Id.empty() && !Got.insert(Res->Id).second) {
          ++Failures; // duplicate response for one id
          return;
        }
        if (Res->Status == "ok" && !Res->IR.empty()) {
          size_t R = 0;
          if (sscanf(Res->Id.c_str(), "c%*ur%zu", &R) == 1)
            IRByProgram[(R % 5 == 4) ? 0 : R % 2].push_back(Res->IR);
        }
      }
      if (Responses != PerClient || Got != Want)
        ++Failures;
      // Repeats of a program must transform identically (the cache is
      // invisible on the wire).
      for (const auto &IRs : IRByProgram)
        for (const std::string &IR : IRs)
          if (IR != IRs.front())
            ++Failures;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GE(D.daemon().stats().Accepted, Clients * (PerClient - 3u));
  D.expectAlive();
}

} // namespace

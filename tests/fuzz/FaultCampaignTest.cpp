//===- tests/fuzz/FaultCampaignTest.cpp - Fault-injection campaigns -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The recovery contract, end to end (docs/ROBUSTNESS.md): every
// registered fault site, armed over generated programs and run through a
// fail-safe pipeline session, must yield rollback or fallback -- never a
// crash, a miscompile, or invalid IR.
//
//===----------------------------------------------------------------------===//

#include "fuzz/FaultCampaign.h"

#include "support/FaultInjector.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cpr;

namespace {

std::string joined(const std::vector<std::string> &Lines) {
  std::ostringstream OS;
  for (const std::string &L : Lines)
    OS << L << "\n";
  return OS.str();
}

TEST(FaultCampaign, EverySiteRecoversCleanly) {
  FaultCampaignOptions Opts;
  Opts.Seed = 7;
  Opts.CasesPerSite = 2;
  Opts.NthHits = 2;
  StatsRegistry Stats;
  Opts.Stats = &Stats;

  FaultCampaignResult R = runFaultCampaign(Opts);
  EXPECT_TRUE(R.clean()) << joined(R.Failures);
  // All sites x cases x hit counts were actually exercised...
  EXPECT_EQ(R.Injections,
            fault::sites().size() * Opts.CasesPerSite * Opts.NthHits);
  // ...and the workload is rich enough that some faults really fire.
  EXPECT_GT(R.Fired, 0u);
  EXPECT_EQ(R.Crashes, 0u);
  EXPECT_EQ(R.Mismatches, 0u);
  EXPECT_EQ(R.VerifyFails, 0u);

  // Counters mirror the result, and the registry is left disarmed.
  EXPECT_EQ(Stats.count("fault/injections"), R.Injections);
  EXPECT_EQ(Stats.count("fault/fired"), R.Fired);
  EXPECT_EQ(Stats.count("fault/crashes"), 0.0);
  EXPECT_EQ(Stats.count("fault/mismatches"), 0.0);
  EXPECT_EQ(fault::armedSite(), "");
}

TEST(FaultCampaign, DeterministicForAFixedSeed) {
  FaultCampaignOptions Opts;
  Opts.Seed = 21;
  Opts.CasesPerSite = 1;
  Opts.NthHits = 1;
  FaultCampaignResult A = runFaultCampaign(Opts);
  FaultCampaignResult B = runFaultCampaign(Opts);
  EXPECT_EQ(A.summary(), B.summary());
  EXPECT_EQ(joined(A.Failures), joined(B.Failures));
}

TEST(FaultCampaign, SiteSubsetOnlyArmsThoseSites) {
  FaultCampaignOptions Opts;
  Opts.Seed = 7;
  Opts.CasesPerSite = 2;
  Opts.NthHits = 1;
  Opts.Sites = {"pipeline.transform"};
  FaultCampaignResult R = runFaultCampaign(Opts);
  EXPECT_TRUE(R.clean()) << joined(R.Failures);
  EXPECT_EQ(R.Injections, 2u);
  // The stage-level site is unconditional in fail-safe sessions, so
  // every injection fires and every fired run recovers.
  EXPECT_EQ(R.Fired, 2u);
  EXPECT_EQ(R.Recovered, 2u);
}

} // namespace

//===- tests/fuzz/DifferentialTest.cpp - Differential oracle & campaigns --===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// End-to-end checks of the differential subsystem: a clean pipeline
// yields all-pass campaigns, campaigns classify identically at any
// thread count, and the planted compensation-skip miscompile (the
// oracle's self-test) is caught.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "support/Statistics.h"
#include "support/TestHooks.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cpr;

namespace {

/// A small grid keeps these tests fast; determinism and classification
/// do not depend on grid size.
FuzzCampaignOptions smallCampaign(uint64_t Seed, unsigned Runs) {
  FuzzCampaignOptions Opts;
  Opts.Seed = Seed;
  Opts.Runs = Runs;
  Opts.Variants = {{"default", CPROptions(), 1}};
  Opts.Machines = {MachineDesc::medium()};
  return Opts;
}

std::string failureSignature(const FuzzCampaignResult &R) {
  std::ostringstream Out;
  Out << R.summary() << "\n";
  for (const FuzzFailure &F : R.Failures)
    Out << F.CaseIndex << " " << fuzzOutcomeName(F.Outcome) << " "
        << divergenceName(F.Divergence) << " " << F.VariantName << " "
        << F.MachineName << " " << F.Detail << "\n";
  return Out.str();
}

TEST(DifferentialTest, CleanPipelinePassesEveryCell) {
  DifferentialRunner Runner; // full default grid
  GeneratorConfig Cfg;
  for (uint64_t Seed : {2ull, 9ull}) {
    KernelProgram P = generateProgram(Seed, Cfg);
    CaseResult Case = Runner.runCase(P);
    EXPECT_EQ(Case.Worst, FuzzOutcome::Pass) << "seed " << Seed;
    EXPECT_EQ(Case.Cells.size(), Runner.numCells());
  }
}

TEST(DifferentialTest, CleanCampaignIsClean) {
  FuzzCampaignOptions Opts = smallCampaign(11, 8);
  FuzzCampaignResult R = runFuzzCampaign(Opts);
  EXPECT_TRUE(R.clean()) << failureSignature(R);
  EXPECT_EQ(R.Passes, 8u);
  EXPECT_EQ(R.summary(),
            "cases=8 pass=8 mismatch=0 verifier-reject=0 crash=0");
}

TEST(DifferentialTest, CampaignIsThreadCountIndependent) {
  FuzzCampaignOptions Opts = smallCampaign(1, 10);
  Opts.InjectDefect = true; // guarantees some failures to compare
  Opts.Threads = 1;
  FuzzCampaignResult Serial = runFuzzCampaign(Opts);
  Opts.Threads = 3;
  FuzzCampaignResult Parallel = runFuzzCampaign(Opts);
  EXPECT_FALSE(Serial.clean());
  EXPECT_EQ(failureSignature(Serial), failureSignature(Parallel));
}

TEST(DifferentialTest, InjectedDefectIsCaughtAsMismatch) {
  FuzzCampaignOptions Opts = smallCampaign(1, 10);
  Opts.InjectDefect = true;
  FuzzCampaignResult R = runFuzzCampaign(Opts);
  EXPECT_GT(R.Mismatches, 0u) << R.summary();
  for (const FuzzFailure &F : R.Failures) {
    EXPECT_EQ(F.Outcome, FuzzOutcome::Mismatch);
    EXPECT_FALSE(F.Detail.empty());
    // Without reduction the failure still carries a replayable program.
    EXPECT_NE(F.ReducedText.find("func @"), std::string::npos);
  }
}

TEST(DifferentialTest, InjectionHookRestoresItself) {
  ASSERT_FALSE(test_hooks::SkipCompensationInsertion);
  FuzzCampaignOptions Opts = smallCampaign(1, 2);
  Opts.InjectDefect = true;
  (void)runFuzzCampaign(Opts);
  EXPECT_FALSE(test_hooks::SkipCompensationInsertion);
}

TEST(DifferentialTest, StatsCountersTallyTheCampaign) {
  StatsRegistry Stats;
  FuzzCampaignOptions Opts = smallCampaign(1, 6);
  Opts.InjectDefect = true;
  Opts.Stats = &Stats;
  FuzzCampaignResult R = runFuzzCampaign(Opts);
  EXPECT_EQ(Stats.count("fuzz/cases"), 6.0);
  EXPECT_EQ(Stats.count("fuzz/pass"), static_cast<double>(R.Passes));
  EXPECT_EQ(Stats.count("fuzz/mismatch"),
            static_cast<double>(R.Mismatches));
}

TEST(DifferentialTest, MismatchOutranksCrashInSeverity) {
  EXPECT_GT(fuzzOutcomeSeverity(FuzzOutcome::Mismatch),
            fuzzOutcomeSeverity(FuzzOutcome::Crash));
  EXPECT_GT(fuzzOutcomeSeverity(FuzzOutcome::Crash),
            fuzzOutcomeSeverity(FuzzOutcome::VerifierReject));
  EXPECT_GT(fuzzOutcomeSeverity(FuzzOutcome::VerifierReject),
            fuzzOutcomeSeverity(FuzzOutcome::Pass));
}

} // namespace

//===- tests/fuzz/RoundTripTest.cpp - Textual IR as corpus format ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The corpus and every minimized reproducer are stored as textual IR, so
// print -> parse -> print must be a fixpoint over the whole generated
// program space -- any gap silently corrupts saved findings. The corpus
// wrapper (directives + IR) must round-trip the full executable case.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "fuzz/Generator.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(FuzzRoundTripTest, PrintParsePrintIsAFixpointOverGeneratedPrograms) {
  GeneratorConfig Cfg;
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    KernelProgram P = generateProgram(Seed, Cfg);
    std::string First = printFunction(*P.Func);
    ParseResult PR = parseFunction(First);
    ASSERT_TRUE(PR) << "seed " << Seed << " line " << PR.Line << ": "
                    << PR.Error << "\n"
                    << First;
    EXPECT_TRUE(verifyFunction(*PR.Func).empty()) << "seed " << Seed;
    EXPECT_EQ(printFunction(*PR.Func), First) << "seed " << Seed;
  }
}

TEST(FuzzRoundTripTest, PrintParsePrintIsAFixpointOverMutants) {
  GeneratorConfig Cfg;
  ProgramMutator Mut(Cfg);
  KernelProgram Base = generateProgram(3, Cfg);
  RNG Rng(99);
  for (int I = 0; I < 15; ++I) {
    KernelProgram M = Mut.mutate(Base, Rng);
    std::string First = printFunction(*M.Func);
    ParseResult PR = parseFunction(First);
    ASSERT_TRUE(PR) << PR.Error << "\n" << First;
    EXPECT_EQ(printFunction(*PR.Func), First);
  }
}

TEST(FuzzRoundTripTest, CorpusFormatRoundTripsTheExecutableCase) {
  GeneratorConfig Cfg;
  for (uint64_t Seed : {0ull, 4ull, 11ull, 23ull}) {
    KernelProgram P = generateProgram(Seed, Cfg);
    std::string Text = serializeFuzzProgram(P);
    // Magic first line, then a valid cprc input.
    EXPECT_EQ(Text.rfind(FuzzProgramMagic, 0), 0u);

    FuzzParseResult FR = parseFuzzProgram(Text);
    ASSERT_TRUE(FR) << FR.Error;
    EXPECT_EQ(printFunction(*FR.Program.Func), printFunction(*P.Func));
    EXPECT_EQ(FR.Program.InitMem.cells(), P.InitMem.cells());
    ASSERT_EQ(FR.Program.InitRegs.size(), P.InitRegs.size());
    for (size_t I = 0; I < P.InitRegs.size(); ++I) {
      EXPECT_EQ(FR.Program.InitRegs[I].R, P.InitRegs[I].R);
      EXPECT_EQ(FR.Program.InitRegs[I].Value, P.InitRegs[I].Value);
    }

    // Serialization is deterministic: a second pass is byte-identical.
    EXPECT_EQ(serializeFuzzProgram(FR.Program), Text);
  }
}

TEST(FuzzRoundTripTest, PlainIRWithoutDirectivesParses) {
  FuzzParseResult FR = parseFuzzProgram(R"(
func @f {
block @A:
  halt
}
)");
  ASSERT_TRUE(FR) << FR.Error;
  EXPECT_TRUE(FR.Program.InitRegs.empty());
  EXPECT_TRUE(FR.Program.InitMem.cells().empty());
}

TEST(FuzzRoundTripTest, MalformedProgramReportsAnError) {
  FuzzParseResult FR = parseFuzzProgram("func @broken {\n");
  EXPECT_FALSE(FR);
  EXPECT_FALSE(FR.Error.empty());
}

TEST(FuzzRoundTripTest, FileRoundTrip) {
  GeneratorConfig Cfg;
  KernelProgram P = generateProgram(8, Cfg);
  std::string Path = ::testing::TempDir() + "cpr_fuzz_roundtrip.ir";
  std::string Error;
  ASSERT_TRUE(writeFuzzProgramFile(P, Path, &Error)) << Error;
  FuzzParseResult FR = loadFuzzProgramFile(Path);
  ASSERT_TRUE(FR) << FR.Error;
  EXPECT_EQ(printFunction(*FR.Program.Func), printFunction(*P.Func));
  EXPECT_EQ(FR.Program.InitMem.cells(), P.InitMem.cells());
}

} // namespace

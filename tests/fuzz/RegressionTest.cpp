//===- tests/fuzz/RegressionTest.cpp - Reproducer replay harness ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Replays every minimized reproducer in tests/fuzz/regressions/ through
// the full differential grid. A reproducer that once exposed a (since
// fixed or injected) defect must now pass every cell; files named
// "inject-*" came from the planted compensation-skip defect and are
// additionally re-verified to still trip it under the hook, so the
// harness itself cannot rot.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "fuzz/Differential.h"
#include "ir/Verifier.h"
#include "support/TestHooks.h"

#include <gtest/gtest.h>

#ifndef CPR_FUZZ_REGRESSION_DIR
#error "build must define CPR_FUZZ_REGRESSION_DIR"
#endif

using namespace cpr;

namespace {

std::vector<std::string> regressionFiles() {
  return listCorpusFiles(CPR_FUZZ_REGRESSION_DIR);
}

bool isInjectReproducer(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  return Base.rfind("inject-", 0) == 0;
}

TEST(FuzzRegressionTest, DirectoryIsNotEmpty) {
  EXPECT_FALSE(regressionFiles().empty())
      << "no reproducers under " << CPR_FUZZ_REGRESSION_DIR;
}

TEST(FuzzRegressionTest, EveryReproducerPassesTheProductionPipeline) {
  DifferentialRunner Runner; // full default grid
  for (const std::string &Path : regressionFiles()) {
    FuzzParseResult FR = loadFuzzProgramFile(Path);
    ASSERT_TRUE(FR) << Path << ": " << FR.Error;
    ASSERT_TRUE(verifyFunction(*FR.Program.Func).empty()) << Path;
    CaseResult Case = Runner.runCase(FR.Program);
    const CellResult &Worst =
        Case.Cells[Case.WorstVariant * Runner.machines().size() +
                   Case.WorstMachine];
    EXPECT_EQ(Case.Worst, FuzzOutcome::Pass)
        << Path << ": " << Worst.Detail;
  }
}

TEST(FuzzRegressionTest, InjectReproducersStillTripThePlantedDefect) {
  test_hooks::ScopedSkipCompensation Inject(true);
  DifferentialRunner Runner;
  bool SawOne = false;
  for (const std::string &Path : regressionFiles()) {
    if (!isInjectReproducer(Path))
      continue;
    SawOne = true;
    FuzzParseResult FR = loadFuzzProgramFile(Path);
    ASSERT_TRUE(FR) << Path << ": " << FR.Error;
    CaseResult Case = Runner.runCase(FR.Program);
    EXPECT_EQ(Case.Worst, FuzzOutcome::Mismatch)
        << Path << " no longer reproduces under the hook";
  }
  EXPECT_TRUE(SawOne) << "no inject-* reproducers found";
}

} // namespace

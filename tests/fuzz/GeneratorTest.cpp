//===- tests/fuzz/GeneratorTest.cpp - Random program generator ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The differential oracle relies on three generator properties: every
// generated program verifies, halts quickly, and is a pure function of
// its seed. The mutator must preserve the first two.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

constexpr uint64_t kHaltBudget = 5'000'000;

RunResult boundedRun(const KernelProgram &P) {
  Memory Mem = P.InitMem;
  InterpOptions IO;
  IO.MaxSteps = kHaltBudget;
  return interpret(*P.Func, Mem, P.InitRegs, IO);
}

TEST(GeneratorTest, ManySeedsVerifyAndHalt) {
  GeneratorConfig Cfg;
  for (uint64_t Seed = 0; Seed < 60; ++Seed) {
    KernelProgram P = generateProgram(Seed, Cfg);
    ASSERT_TRUE(verifyFunction(*P.Func).empty()) << "seed " << Seed;
    RunResult R = boundedRun(P);
    ASSERT_TRUE(R.halted())
        << "seed " << Seed << ": " << R.ErrorMsg << " after " << R.Steps
        << " steps";
  }
}

TEST(GeneratorTest, SameSeedSameProgram) {
  GeneratorConfig Cfg;
  for (uint64_t Seed : {1ull, 17ull, 999ull}) {
    KernelProgram A = generateProgram(Seed, Cfg);
    KernelProgram B = generateProgram(Seed, Cfg);
    EXPECT_EQ(printFunction(*A.Func), printFunction(*B.Func));
    EXPECT_EQ(A.InitRegs.size(), B.InitRegs.size());
    EXPECT_EQ(A.InitMem.cells(), B.InitMem.cells());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig Cfg;
  KernelProgram A = generateProgram(1, Cfg);
  KernelProgram B = generateProgram(2, Cfg);
  EXPECT_NE(printFunction(*A.Func), printFunction(*B.Func));
}

TEST(GeneratorTest, KnobsShapeThePrograms) {
  // Straight-line-only config: no loops means every program runs in a
  // number of steps bounded by its static operation count.
  GeneratorConfig Flat;
  Flat.MaxLoopDepth = 0;
  Flat.SyntheticFrac = 0.0;
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    KernelProgram P = generateProgram(Seed, Flat);
    RunResult R = boundedRun(P);
    ASSERT_TRUE(R.halted());
    EXPECT_LE(R.Steps, P.Func->totalOps() + 1) << "seed " << Seed;
  }
}

TEST(GeneratorTest, BlockCapBoundsProgramSize) {
  GeneratorConfig Small;
  Small.MaxBlocks = 12;
  Small.SyntheticFrac = 0.0;
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    KernelProgram P = generateProgram(Seed, Small);
    // Soft cap: structures already begun still complete (loop tails,
    // stub bodies, exit), so allow headroom -- but a runaway region
    // expansion would blow far past this.
    EXPECT_LE(P.Func->numBlocks(), 2 * 12 + 4) << "seed " << Seed;
  }
}

TEST(GeneratorTest, MutantsVerifyHaltAndAreDeterministic) {
  GeneratorConfig Cfg;
  ProgramMutator Mut(Cfg);
  KernelProgram Base = generateProgram(42, Cfg);
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    RNG RngA(Seed), RngB(Seed);
    KernelProgram MA = Mut.mutate(Base, RngA);
    KernelProgram MB = Mut.mutate(Base, RngB);
    ASSERT_TRUE(verifyFunction(*MA.Func).empty()) << "seed " << Seed;
    ASSERT_TRUE(boundedRun(MA).halted()) << "seed " << Seed;
    // Same RNG stream, same mutant.
    EXPECT_EQ(printFunction(*MA.Func), printFunction(*MB.Func));
    EXPECT_EQ(MA.InitMem.cells(), MB.InitMem.cells());
  }
}

TEST(GeneratorTest, MutationLeavesTheOriginalIntact) {
  GeneratorConfig Cfg;
  ProgramMutator Mut(Cfg);
  KernelProgram Base = generateProgram(7, Cfg);
  std::string Before = printFunction(*Base.Func);
  RNG Rng(3);
  (void)Mut.mutate(Base, Rng);
  EXPECT_EQ(printFunction(*Base.Func), Before);
}

TEST(GeneratorTest, SyntheticFamilyIsReachable) {
  GeneratorConfig Cfg;
  Cfg.SyntheticFrac = 1.0;
  KernelProgram P = generateProgram(5, Cfg);
  EXPECT_EQ(P.Func->getName().rfind("fuzz_syn_", 0), 0u)
      << P.Func->getName();
  ASSERT_TRUE(verifyFunction(*P.Func).empty());
  ASSERT_TRUE(boundedRun(P).halted());
}

} // namespace

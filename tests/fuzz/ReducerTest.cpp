//===- tests/fuzz/ReducerTest.cpp - Delta-debugging reduction -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The acceptance bar of the subsystem: the planted compensation-skip
// miscompile must be reduced to a tiny reproducer (<= 20 operations)
// that reparses from its serialized form and still fails the oracle.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "ir/Verifier.h"
#include "support/TestHooks.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// Finds the first generated program that trips the planted defect on
/// the default x medium cell. The hook must already be set.
KernelProgram findFailingProgram(const DifferentialRunner &Runner,
                                 size_t &SeedOut) {
  GeneratorConfig Cfg;
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    KernelProgram P = generateProgram(Seed, Cfg);
    if (Runner.runCell(P, 0, 0).Outcome == FuzzOutcome::Mismatch) {
      SeedOut = Seed;
      return P;
    }
  }
  ADD_FAILURE() << "no seed trips the planted defect";
  return generateProgram(0, Cfg);
}

TEST(ReducerTest, PlantedDefectReducesToTinyReproducer) {
  test_hooks::ScopedSkipCompensation Inject(true);
  DifferentialRunner Runner({{"default", CPROptions(), 1}},
                            {MachineDesc::medium()});
  size_t Seed = 0;
  KernelProgram P = findFailingProgram(Runner, Seed);

  ReduceResult R = reduceCase(P, Runner, 0, 0);
  EXPECT_EQ(R.Outcome, FuzzOutcome::Mismatch);
  EXPECT_LE(R.ReducedOps, 20u)
      << "seed " << Seed << ": " << R.OriginalOps << " -> " << R.ReducedOps;
  EXPECT_LT(R.ReducedOps, R.OriginalOps);
  EXPECT_TRUE(verifyFunction(*R.Reduced.Func).empty());

  // The reduced program still fails with the same signature.
  CellResult Cell = Runner.runCell(R.Reduced, 0, 0);
  EXPECT_EQ(Cell.Outcome, FuzzOutcome::Mismatch);
  EXPECT_EQ(Cell.Divergence, R.Divergence);

  // ... and survives a serialize/parse round trip still failing.
  FuzzParseResult FR = parseFuzzProgram(serializeFuzzProgram(R.Reduced));
  ASSERT_TRUE(FR) << FR.Error;
  CellResult Replayed = Runner.runCell(FR.Program, 0, 0);
  EXPECT_EQ(Replayed.Outcome, FuzzOutcome::Mismatch);
  EXPECT_EQ(Replayed.Divergence, R.Divergence);
}

TEST(ReducerTest, ReductionIsDeterministic) {
  test_hooks::ScopedSkipCompensation Inject(true);
  DifferentialRunner Runner({{"default", CPROptions(), 1}},
                            {MachineDesc::medium()});
  size_t Seed = 0;
  KernelProgram P = findFailingProgram(Runner, Seed);
  ReduceResult A = reduceCase(P, Runner, 0, 0);
  ReduceResult B = reduceCase(P, Runner, 0, 0);
  EXPECT_EQ(serializeFuzzProgram(A.Reduced), serializeFuzzProgram(B.Reduced));
  EXPECT_EQ(A.OracleRuns, B.OracleRuns);
}

TEST(ReducerTest, PassingProgramIsReturnedUnreduced) {
  // No injection: the pipeline is correct and there is nothing to chase.
  DifferentialRunner Runner({{"default", CPROptions(), 1}},
                            {MachineDesc::medium()});
  GeneratorConfig Cfg;
  KernelProgram P = generateProgram(2, Cfg);
  ReduceResult R = reduceCase(P, Runner, 0, 0);
  EXPECT_EQ(R.Outcome, FuzzOutcome::Pass);
  EXPECT_EQ(R.ReducedOps, R.OriginalOps);
  EXPECT_EQ(R.OracleRuns, 1u);
}

TEST(ReducerTest, OracleBudgetIsRespected) {
  test_hooks::ScopedSkipCompensation Inject(true);
  DifferentialRunner Runner({{"default", CPROptions(), 1}},
                            {MachineDesc::medium()});
  size_t Seed = 0;
  KernelProgram P = findFailingProgram(Runner, Seed);
  ReducerOptions Opts;
  Opts.OracleBudget.MaxSteps = 5;
  ReduceResult R = reduceCase(P, Runner, 0, 0, Opts);
  EXPECT_LE(R.OracleRuns, 5u + 1u); // +1 for the signature-seeding run
}

} // namespace

//===- tests/regions/FRPConversionTest.cpp - FRP conversion tests ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/FRPConversion.h"

#include "analysis/PQS.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(FRPConversionTest, GuardsBelowBranchBecomePathPredicates) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r2 = add(r9, 1)
  store(r2, r2)
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  FRPConversionStats Stats = convertToFRP(*F, A);
  verifyOrDie(*F, "after conversion");
  EXPECT_EQ(Stats.BranchesConverted, 1u);
  EXPECT_EQ(Stats.CmppDestsAdded, 1u);
  EXPECT_EQ(Stats.GuardsRewritten, 3u); // add, store, halt
  EXPECT_EQ(Stats.MaterializedConjunctions, 0u);

  // The compare gained a UC destination; the ops below the branch carry
  // it as a positional guard.
  const Operation &Cmpp = A.ops()[0];
  ASSERT_EQ(Cmpp.defs().size(), 2u);
  Reg Fall = Cmpp.defs()[1].R;
  EXPECT_EQ(Cmpp.defs()[1].Act, CmppAction::UC);
  for (size_t I = 3; I < A.size(); ++I) {
    EXPECT_EQ(A.ops()[I].getGuard(), Fall);
    EXPECT_TRUE(A.ops()[I].isFrpGuard());
  }
}

TEST(FRPConversionTest, AlreadyRefinedGuardsAreKept) {
  // An op whose guard already implies the position (classic if-converted
  // code whose compare sits on the same path) is left untouched: no
  // conjunction movs.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  p3:un = cmpp.eq(r2, 5) if p2
  r4 = add(r9, 1) if p3
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  size_t Before = A.size();
  FRPConversionStats Stats = convertToFRP(*F, A);
  EXPECT_EQ(Stats.MaterializedConjunctions, 0u);
  EXPECT_EQ(A.size(), Before); // no ops inserted
  // The if-converted add keeps p3 (p3 implies the path).
  EXPECT_EQ(A.ops()[3].getGuard(), Reg::pred(2));
  EXPECT_EQ(A.ops()[4].getGuard(), Reg::pred(3));
  EXPECT_FALSE(A.ops()[4].isFrpGuard());
}

TEST(FRPConversionTest, UnrelatedGuardIsMaterialized) {
  // A guard unrelated to the branch structure (live-in predicate) below a
  // branch needs an explicit conjunction.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r4 = add(r9, 1) if p7
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  std::unique_ptr<Function> Base = F->clone();
  FRPConversionStats Stats = convertToFRP(*F, A);
  verifyOrDie(*F, "after conversion");
  EXPECT_EQ(Stats.MaterializedConjunctions, 1u);

  // Behavior preserved for both p7 values and both branch outcomes.
  for (int64_t P7 : {0, 1})
    for (int64_t R1 : {0, 3}) {
      Memory Mem;
      std::vector<RegBinding> Init = {{Reg::pred(7), P7},
                                      {Reg::gpr(1), R1},
                                      {Reg::gpr(9), 5}};
      EquivResult E = checkEquivalence(*Base, *F, Mem, Init);
      EXPECT_TRUE(E.Equivalent) << E.Detail;
    }
}

TEST(FRPConversionTest, StopsAtNonUnControlledBranch) {
  // A branch whose predicate comes from a wired-or compare cannot be
  // converted; conversion stops there and leaves the suffix untouched.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1 = mov(0)
  p1:on = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r4 = add(r9, 1)
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  FRPConversionStats Stats = convertToFRP(*F, A);
  EXPECT_EQ(Stats.BranchesConverted, 0u);
  // Suffix unchanged: the add keeps its true guard.
  EXPECT_TRUE(A.ops()[4].getGuard().isTruePred());
}

TEST(FRPConversionTest, BranchPredicatesBecomeDisjoint) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  p2:un = cmpp.eq(r2, 0)
  b2 = pbr(@X)
  branch(p2, b2)
  p3:un = cmpp.eq(r3, 0)
  b3 = pbr(@X)
  branch(p3, b3)
  halt
block @X:
  halt
}
)");
  Block &A = F->block(0);
  convertToFRP(*F, A);
  RegionPQS PQS(*F, A);
  std::vector<size_t> Brs;
  for (size_t I = 0; I < A.size(); ++I)
    if (A.ops()[I].isBranch())
      Brs.push_back(I);
  ASSERT_EQ(Brs.size(), 3u);
  for (size_t I = 0; I < Brs.size(); ++I)
    for (size_t J = I + 1; J < Brs.size(); ++J)
      EXPECT_TRUE(
          PQS.disjoint(PQS.takenExpr(Brs[I]), PQS.takenExpr(Brs[J])));
}

TEST(FRPConversionTest, RoundTripBehaviorOnRandomInputs) {
  const char *Src = R"(
func @f {
  observable r5
block @A:
  r5 = mov(0)
  p1:un = cmpp.lt(r1, 10)
  b1 = pbr(@X)
  branch(p1, b1)
  r5 = add(r5, 1)
  p2:un = cmpp.lt(r2, 10)
  b2 = pbr(@X)
  branch(p2, b2)
  r5 = add(r5, 2)
  p3:un = cmpp.lt(r3, 10)
  b3 = pbr(@X)
  branch(p3, b3)
  r5 = add(r5, 4)
  halt
block @X:
  r5 = add(r5, 100)
  halt
}
)";
  std::unique_ptr<Function> Base = parseFunctionOrDie(Src);
  std::unique_ptr<Function> Conv = parseFunctionOrDie(Src);
  convertToFRP(*Conv, Conv->block(0));
  verifyOrDie(*Conv, "after conversion");

  for (int64_t V1 : {5, 15})
    for (int64_t V2 : {5, 15})
      for (int64_t V3 : {5, 15}) {
        Memory Mem;
        std::vector<RegBinding> Init = {{Reg::gpr(1), V1},
                                        {Reg::gpr(2), V2},
                                        {Reg::gpr(3), V3}};
        EquivResult E = checkEquivalence(*Base, *Conv, Mem, Init);
        EXPECT_TRUE(E.Equivalent)
            << V1 << "," << V2 << "," << V3 << ": " << E.Detail;
      }
}

} // namespace

//===- tests/regions/SimplifyTest.cpp - Scalar optimization tests ---------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/Simplify.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "regions/DeadCodeElim.h"
#include "regions/LoopUnroller.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(SimplifyTest, FoldsConstants) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r3
block @A:
  r1 = mov(6)
  r2 = mul(r1, 7)
  r3 = add(r2, 0)
  halt
}
)");
  SimplifyStats S = simplifyBlock(*F, F->block(0));
  EXPECT_GE(S.ConstantsFolded, 2u);
  verifyOrDie(*F, "after simplify");
  Memory Mem;
  RunResult R = interpret(*F, Mem, {});
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.Observed[0], 42);
  // The final op should have become a constant mov.
  const Operation &Last = F->block(0).ops()[2];
  EXPECT_EQ(Last.getOpcode(), Opcode::Mov);
  EXPECT_EQ(Last.srcs()[0].getImm(), 42);
}

TEST(SimplifyTest, PropagatesCopies) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r4
block @A:
  r2 = mov(r1)
  r3 = mov(r2)
  r4 = add(r3, r2)
  halt
}
)");
  SimplifyStats S = simplifyBlock(*F, F->block(0));
  EXPECT_GE(S.CopiesPropagated, 2u);
  const Operation &Add = F->block(0).ops()[2];
  EXPECT_EQ(Add.srcs()[0].getReg(), Reg::gpr(1));
  EXPECT_EQ(Add.srcs()[1].getReg(), Reg::gpr(1));
}

TEST(SimplifyTest, CopyInvalidatedByRedefinition) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r3
block @A:
  r2 = mov(r1)
  r1 = mov(9)
  r3 = add(r2, 1)
  halt
}
)");
  simplifyBlock(*F, F->block(0));
  // r2's copy-of-r1 fact is stale after r1 is redefined: the add must
  // still read r2.
  const Operation &Add = F->block(0).ops()[2];
  EXPECT_EQ(Add.srcs()[0].getReg(), Reg::gpr(2));
  Memory Mem;
  RunResult R = interpret(*F, Mem, {{Reg::gpr(1), 5}});
  EXPECT_EQ(R.Observed[0], 6);
}

TEST(SimplifyTest, CseReusesExpressions) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r4
block @A:
  r2 = add(r1, 8)
  r3 = add(r1, 8)
  r4 = xor(r2, r3)
  halt
}
)");
  SimplifyStats S = simplifyBlock(*F, F->block(0));
  EXPECT_EQ(S.ExpressionsReused, 1u);
  Memory Mem;
  RunResult R = interpret(*F, Mem, {{Reg::gpr(1), 3}});
  EXPECT_EQ(R.Observed[0], 0);
}

TEST(SimplifyTest, CseRespectsRedefinitions) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r4
block @A:
  r2 = add(r1, 8)
  r1 = add(r1, 1)
  r3 = add(r1, 8)
  r4 = sub(r3, r2)
  halt
}
)");
  SimplifyStats S = simplifyBlock(*F, F->block(0));
  EXPECT_EQ(S.ExpressionsReused, 0u);
  Memory Mem;
  RunResult R = interpret(*F, Mem, {{Reg::gpr(1), 3}});
  EXPECT_EQ(R.Observed[0], 1);
}

TEST(SimplifyTest, GuardedDefsBlockFacts) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r3
block @A:
  r2 = mov(1)
  r2 = mov(9) if p1
  r3 = add(r2, 0)
  halt
}
)");
  simplifyBlock(*F, F->block(0));
  // r2 is not a known constant after the guarded mov.
  const Operation &Add = F->block(0).ops()[2];
  ASSERT_TRUE(Add.srcs()[0].isReg());
  for (int64_t P1 : {0, 1}) {
    std::unique_ptr<Function> G = parseFunctionOrDie(R"(
func @f {
  observable r3
block @A:
  r2 = mov(1)
  r2 = mov(9) if p1
  r3 = add(r2, 0)
  halt
}
)");
    simplifyBlock(*G, G->block(0));
    Memory Mem;
    RunResult R = interpret(*G, Mem, {{Reg::pred(1), P1}});
    EXPECT_EQ(R.Observed[0], P1 ? 9 : 1);
  }
}

TEST(SimplifyTest, CleansUnrolledOffsetArithmetic) {
  // The integration the pass exists for: unroll, simplify, DCE -- the
  // program still behaves identically and shrinks.
  const char *Src = R"(
func @sum {
  observable r5
block @Entry:
  r5 = mov(0)
block @Loop:
  r10 = load.m1(r1)
  p1:un = cmpp.eq(r10, 0)
  b1 = pbr(@Exit)
  branch(p1, b1)
  r5 = add(r5, r10)
  r1 = add(r1, 1)
  r2 = sub(r2, 1)
  p2:un = cmpp.gt(r2, 0)
  b2 = pbr(@Loop)
  branch(p2, b2)
block @Exit:
  halt
}
)";
  std::unique_ptr<Function> Base = parseFunctionOrDie(Src);
  std::unique_ptr<Function> Opt = parseFunctionOrDie(Src);
  ASSERT_TRUE(unrollLoop(*Opt, *Opt->blockByName("Loop"), 4).Unrolled);
  simplifyFunction(*Opt);
  eliminateDeadCode(*Opt);
  verifyOrDie(*Opt, "after unroll+simplify+dce");

  Memory Mem;
  for (int I = 0; I < 64; ++I)
    Mem.store(1000 + I, 1 + (I * 7) % 90);
  Mem.store(1000 + 64, 0);
  EquivResult E = checkEquivalence(
      *Base, *Opt, Mem, {{Reg::gpr(1), 1000}, {Reg::gpr(2), 40}});
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

TEST(SimplifyTest, PreservesKernelBehavior) {
  KernelProgram P = buildWcKernel(4, 1024, 21);
  std::unique_ptr<Function> Base = P.Func->clone();
  simplifyFunction(*P.Func);
  eliminateDeadCode(*P.Func);
  EquivResult E = checkEquivalence(*Base, *P.Func, P.InitMem, P.InitRegs);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

} // namespace

//===- tests/regions/DeadCodeElimTest.cpp - DCE tests ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/DeadCodeElim.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(DeadCodeElimTest, RemovesUnusedArithmetic) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r9
block @A:
  r1 = add(r8, 1)
  r2 = add(r1, 1)
  r9 = mov(5)
  halt
}
)");
  DCEStats S = eliminateDeadCode(*F);
  EXPECT_EQ(S.OpsRemoved, 2u);
  EXPECT_EQ(F->block(0).size(), 2u);
  verifyOrDie(*F, "after DCE");
}

TEST(DeadCodeElimTest, KeepsStoresBranchesAndInputsOfKeptOps) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = add(r8, 1)
  store(r1, r1)
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  halt
block @X:
  halt
}
)");
  DCEStats S = eliminateDeadCode(*F);
  EXPECT_EQ(S.OpsRemoved, 0u);
}

TEST(DeadCodeElimTest, DropsDeadCmppDestination) {
  // The paper's example: after re-wiring, a compare's UC destination goes
  // unused; DCE removes the destination slot but keeps the compare.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  halt
block @X:
  halt
}
)");
  DCEStats S = eliminateDeadCode(*F);
  EXPECT_EQ(S.DestsRemoved, 1u);
  const Operation &Cmpp = F->block(0).ops()[0];
  ASSERT_EQ(Cmpp.defs().size(), 1u);
  EXPECT_EQ(Cmpp.defs()[0].Act, CmppAction::UN);
  verifyOrDie(*F, "after DCE");
}

TEST(DeadCodeElimTest, RemovesFullyDeadCompare) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  halt
}
)");
  DCEStats S = eliminateDeadCode(*F);
  EXPECT_EQ(S.OpsRemoved, 1u);
  EXPECT_EQ(F->block(0).size(), 1u);
}

TEST(DeadCodeElimTest, CascadingRemoval) {
  // A dead chain: the whole thing disappears across sweeps.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = mov(1)
  r2 = add(r1, 1)
  r3 = add(r2, 1)
  r4 = add(r3, 1)
  halt
}
)");
  DCEStats S = eliminateDeadCode(*F);
  EXPECT_EQ(S.OpsRemoved, 4u);
}

TEST(DeadCodeElimTest, ObservableKeepsChainAlive) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r4
block @A:
  r1 = mov(1)
  r2 = add(r1, 1)
  r3 = add(r2, 1)
  r4 = add(r3, 1)
  halt
}
)");
  DCEStats S = eliminateDeadCode(*F);
  EXPECT_EQ(S.OpsRemoved, 0u);
}

TEST(DeadCodeElimTest, GuardUseKeepsPredicateAlive) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  store(r2, 7) if p1
  halt
}
)");
  DCEStats S = eliminateDeadCode(*F);
  EXPECT_EQ(S.OpsRemoved, 0u);
}

TEST(DeadCodeElimTest, PredicatedDeadDefStillRemovable) {
  // A guarded def whose value is never read is dead even though the def
  // is conditional.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  r5 = mov(3) if p1
  store(r2, 7) if p1
  halt
}
)");
  DCEStats S = eliminateDeadCode(*F);
  EXPECT_EQ(S.OpsRemoved, 1u);
}

TEST(DeadCodeElimTest, PreservesBehaviorOnKernel) {
  // DCE on live code must be a no-op behaviorally.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
  observable r5
block @A:
  r5 = mov(0)
  r6 = mov(99)
  p1:un, p2:uc = cmpp.lt(r1, 10)
  r5 = add(r5, 3) if p1
  r5 = add(r5, 5) if p2
  r7 = add(r6, 1)
  halt
}
)");
  std::unique_ptr<Function> Base = F->clone();
  eliminateDeadCode(*F);
  for (int64_t V : {5, 15}) {
    Memory Mem;
    EquivResult E =
        checkEquivalence(*Base, *F, Mem, {{Reg::gpr(1), V}});
    EXPECT_TRUE(E.Equivalent) << E.Detail;
  }
}

TEST(DeadCodeElimTest, Idempotent) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = mov(1)
  r2 = add(r1, 1)
  p1:un, p2:uc = cmpp.eq(r2, 0)
  store(r9, 1) if p1
  halt
}
)");
  eliminateDeadCode(*F);
  std::string Once = printFunction(*F);
  DCEStats Second = eliminateDeadCode(*F);
  EXPECT_EQ(Second.OpsRemoved, 0u);
  EXPECT_EQ(Second.DestsRemoved, 0u);
  EXPECT_EQ(printFunction(*F), Once);
}

} // namespace

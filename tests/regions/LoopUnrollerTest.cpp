//===- tests/regions/LoopUnrollerTest.cpp - Unroller tests ----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/LoopUnroller.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "pipeline/CompilerPipeline.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// A rolled byte-summing loop with a side exit on zero bytes.
const char *RolledSrc = R"(
func @sum {
  observable r5
block @Entry:
  r5 = mov(0)
block @Loop:
  r10 = load.m1(r1)
  p1:un = cmpp.eq(r10, 0)
  b1 = pbr(@Exit)
  branch(p1, b1)
  r5 = add(r5, r10)
  r1 = add(r1, 1)
  r2 = sub(r2, 1)
  p2:un = cmpp.gt(r2, 0)
  b2 = pbr(@Loop)
  branch(p2, b2)
block @Exit:
  halt
}
)";

Memory makeInput(size_t Len) {
  Memory Mem;
  for (size_t I = 0; I < Len; ++I)
    Mem.store(1000 + static_cast<int64_t>(I),
              1 + static_cast<int64_t>((I * 7) % 90));
  Mem.store(1000 + static_cast<int64_t>(Len), 0);
  return Mem;
}

TEST(LoopUnrollerTest, UnrollPreservesBehavior) {
  for (unsigned Factor : {2u, 3u, 4u, 8u}) {
    std::unique_ptr<Function> Base = parseFunctionOrDie(RolledSrc);
    std::unique_ptr<Function> Unrolled = parseFunctionOrDie(RolledSrc);
    UnrollResult R =
        unrollLoop(*Unrolled, *Unrolled->blockByName("Loop"), Factor);
    ASSERT_TRUE(R.Unrolled) << R.Reason;
    verifyOrDie(*Unrolled, "after unrolling");

    // Per-copy exits and one backedge.
    size_t Branches = 0;
    for (const Operation &Op : Unrolled->blockByName("Loop")->ops())
      if (Op.isBranch())
        ++Branches;
    EXPECT_EQ(Branches, 2 * Factor);

    for (size_t Len : {0u, 1u, 5u, 17u, 64u}) {
      Memory Mem = makeInput(Len);
      std::vector<RegBinding> Init = {{Reg::gpr(1), 1000},
                                      {Reg::gpr(2), 40}};
      EquivResult E = checkEquivalence(*Base, *Unrolled, Mem, Init);
      EXPECT_TRUE(E.Equivalent)
          << "factor " << Factor << " len " << Len << ": " << E.Detail;
    }
  }
}

TEST(LoopUnrollerTest, UnrolledLoopFeedsControlCPR) {
  // The paper's preparation pipeline: unroll, then ICBM. The unrolled
  // loop must form CPR blocks and stay equivalent end to end.
  std::unique_ptr<Function> Base = parseFunctionOrDie(RolledSrc);
  std::unique_ptr<Function> Prepared = parseFunctionOrDie(RolledSrc);
  ASSERT_TRUE(
      unrollLoop(*Prepared, *Prepared->blockByName("Loop"), 4).Unrolled);

  Memory ProfMem = makeInput(512);
  std::vector<RegBinding> Init = {{Reg::gpr(1), 1000}, {Reg::gpr(2), 500}};
  ProfileData Prof = profileRun(*Prepared, ProfMem, Init);

  CPRResult CR;
  std::unique_ptr<Function> Treated =
      applyControlCPR(*Prepared, Prof, CPROptions(), &CR);
  EXPECT_GE(CR.CPRBlocksTransformed, 1u);

  Memory Mem = makeInput(512);
  EquivResult E = checkEquivalence(*Base, *Treated, Mem, Init);
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

TEST(LoopUnrollerTest, StrengthReducesInductionVariables) {
  std::unique_ptr<Function> F = parseFunctionOrDie(RolledSrc);
  Block &Loop = *F->blockByName("Loop");
  ASSERT_TRUE(unrollLoop(*F, Loop, 4).Unrolled);
  // Exactly one update of each induction variable survives (the final
  // cumulative one), and it adds the full factor.
  unsigned R1Updates = 0, R2Updates = 0, R1Offsets = 0;
  for (const Operation &Op : Loop.ops()) {
    if (Op.defs().size() != 1 || Op.getOpcode() != Opcode::Add ||
        (!Op.readsReg(Reg::gpr(1)) && !Op.readsReg(Reg::gpr(2))))
      continue;
    if (Op.defs()[0].R == Reg::gpr(1)) {
      ++R1Updates;
      EXPECT_EQ(Op.srcs()[1].getImm(), 4); // one cumulative update
    } else if (Op.defs()[0].R == Reg::gpr(2)) {
      ++R2Updates;
      EXPECT_EQ(Op.srcs()[1].getImm(), -4); // accumulated "sub 1" x4
    } else if (Op.readsReg(Reg::gpr(1))) {
      ++R1Offsets; // materialized base+offset for copies 1..3
    }
  }
  EXPECT_EQ(R1Updates, 1u);
  EXPECT_EQ(R2Updates, 1u);
  EXPECT_EQ(R1Offsets, 3u);
}

TEST(LoopUnrollerTest, PipelineUnrollOption) {
  // The pipeline's preparation path: rolled loop in, unrolled baseline
  // and ICBM-treated code out, equivalence enforced inside.
  KernelProgram P;
  P.Func = parseFunctionOrDie(RolledSrc);
  P.InitMem = makeInput(512);
  P.InitRegs = {{Reg::gpr(1), 1000}, {Reg::gpr(2), 500}};
  PipelineOptions Opts;
  Opts.UnrollFactor = 4;
  PipelineResult R = runPipeline(P, Opts);
  EXPECT_GE(R.CPR.CPRBlocksTransformed, 1u);
  EXPECT_GT(R.speedupOn("wide"), 1.2);
  EXPECT_LT(R.dynBranchRatio(), 0.6);
}

TEST(LoopUnrollerTest, RefusesNonLoops) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = add(r1, 1)
  halt
}
)");
  UnrollResult R = unrollLoop(*F, F->block(0), 4);
  EXPECT_FALSE(R.Unrolled);
  EXPECT_FALSE(R.Reason.empty());
}

TEST(LoopUnrollerTest, RefusesForeignBackedge) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.gt(r2, 0)
  b1 = pbr(@B)
  branch(p1, b1)
block @B:
  halt
}
)");
  UnrollResult R = unrollLoop(*F, F->block(0), 2);
  EXPECT_FALSE(R.Unrolled);
  EXPECT_NE(R.Reason.find("self backedge"), std::string::npos);
}

} // namespace

//===- tests/regions/IfConversionTest.cpp - If-conversion tests -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/IfConversion.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "pipeline/CompilerPipeline.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// The if-then-rejoin diamond half: a rare side path that bumps a counter.
const char *DiamondSrc = R"(
func @f {
  observable r5, r6
block @P:
  r5 = mov(0)
  r6 = mov(0)
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@T)
  branch(p1, b1)
  r5 = add(r5, 1)
  halt
block @T:
  r6 = add(r6, 1)
  store(r9, r6)
  b2 = pbr(@J)
  branch(T, b2)
block @J:
  halt
}
)";

TEST(IfConversionTest, ConvertsTheDiamond) {
  std::unique_ptr<Function> F = parseFunctionOrDie(DiamondSrc);
  // @J must be @P's layout successor for the pattern; it is not (T sits
  // between) -- verify the pass handles the real layout: P, T, J.
  // Here layout is P, T, J: P's fall-through is T, not J, so the pattern
  // must NOT fire (converting would change the fall path).
  IfConversionStats S = ifConvert(*F);
  EXPECT_EQ(S.BranchesConverted, 0u);
}

/// Proper layout: the side block lives out of line, after the join.
const char *OutOfLineSrc = R"(
func @f {
  observable r5, r6
block @P:
  r5 = mov(0)
  r6 = mov(0)
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@T)
  branch(p1, b1)
  r5 = add(r5, 1)
block @J:
  halt
block @T:
  r6 = add(r6, 1)
  store(r9, r6)
  b2 = pbr(@J)
  branch(T, b2)
}
)";

TEST(IfConversionTest, ConvertsOutOfLineSidePath) {
  std::unique_ptr<Function> F = parseFunctionOrDie(OutOfLineSrc);
  std::unique_ptr<Function> Base = F->clone();
  IfConversionStats S = ifConvert(*F);
  EXPECT_EQ(S.BranchesConverted, 1u);
  verifyOrDie(*F, "after if-conversion");

  // The branch is gone; @P now holds predicated code from both arms.
  const Block &P = F->block(0);
  for (const Operation &Op : P.ops())
    EXPECT_FALSE(Op.isBranch());
  // The side block was emptied.
  EXPECT_TRUE(F->blockByName("T")->empty());

  for (int64_t V : {0, 3}) {
    Memory Mem;
    EquivResult E = checkEquivalence(*Base, *F, Mem,
                                     {{Reg::gpr(1), V}, {Reg::gpr(9), 500}});
    EXPECT_TRUE(E.Equivalent) << "r1=" << V << ": " << E.Detail;
  }
}

TEST(IfConversionTest, ProfileGate) {
  std::unique_ptr<Function> F = parseFunctionOrDie(OutOfLineSrc);
  OpId BranchId = 0;
  for (const Operation &Op : F->block(0).ops())
    if (Op.isBranch())
      BranchId = Op.getId();
  ProfileData Prof;
  Prof.addBranchReached(BranchId, 100);
  Prof.addBranchTaken(BranchId, 80); // hot side path

  IfConversionOptions Opts;
  Opts.Profile = &Prof;
  Opts.MaxTakenRatio = 0.5;
  EXPECT_EQ(ifConvert(*F, Opts).BranchesConverted, 0u);

  Opts.MaxTakenRatio = 0.9;
  EXPECT_EQ(ifConvert(*F, Opts).BranchesConverted, 1u);
}

TEST(IfConversionTest, RefusesMultiplyEnteredSideBlocks) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @P:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@T)
  branch(p1, b1)
  p2:un = cmpp.eq(r2, 0)
  b2 = pbr(@T)
  branch(p2, b2)
block @J:
  halt
block @T:
  store(r9, 1)
  b3 = pbr(@J)
  branch(T, b3)
}
)");
  EXPECT_EQ(ifConvert(*F).BranchesConverted, 0u);
}

TEST(IfConversionTest, RefusesUnpredicableSideOps) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @P:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@T)
  branch(p1, b1)
block @J:
  halt
block @T:
  p2:un = cmpp.eq(r2, 0)
  b2 = pbr(@J)
  branch(T, b2)
}
)");
  EXPECT_EQ(ifConvert(*F).BranchesConverted, 0u)
      << "a compare in the side block cannot be guard-predicated";
}

TEST(IfConversionTest, HyperblockFeedsControlCPR) {
  // The paper's pipeline story: if-conversion first, ICBM on the
  // resulting hyperblock ("predicated execution is often introduced
  // prior to control CPR"). Build a loop whose body has a rare side path
  // plus rare exits, convert, then run the full pipeline.
  const char *Src = R"(
func @g {
  observable r5, r6
block @Entry:
  r5 = mov(0)
  r6 = mov(0)
block @Loop:
  r10 = load.m1(r1)
  p1:un = cmpp.eq(r10, 7)
  b1 = pbr(@Side)
  branch(p1, b1)
  r5 = add(r5, r10)
block @Step:
  r1 = add(r1, 1)
  r2 = sub(r2, 1)
  p3:un = cmpp.gt(r2, 0)
  b3 = pbr(@Loop)
  branch(p3, b3)
  halt
block @Side:
  r6 = add(r6, 1)
  b4 = pbr(@Step)
  branch(T, b4)
}
)";
  KernelProgram P;
  P.Func = parseFunctionOrDie(Src);
  std::unique_ptr<Function> Base = P.Func->clone();
  for (int I = 0; I < 256; ++I)
    P.InitMem.store(1000 + I, (I % 37 == 0) ? 7 : 1 + (I * 5) % 90);
  P.InitRegs = {{Reg::gpr(1), 1000}, {Reg::gpr(2), 250}};

  IfConversionStats IS = ifConvert(*P.Func);
  EXPECT_EQ(IS.BranchesConverted, 1u);
  EquivResult E0 = checkEquivalence(*Base, *P.Func, P.InitMem, P.InitRegs);
  ASSERT_TRUE(E0.Equivalent) << E0.Detail;

  // Full pipeline on the hyperblock (equivalence enforced inside).
  PipelineResult R = runPipeline(P);
  (void)R;
}

} // namespace

//===- tests/sched/SchedulerTest.cpp - List scheduler tests ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/ListScheduler.h"

#include "ir/IRParser.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

struct SchedCase {
  std::unique_ptr<Function> F;
  std::unique_ptr<RegionPQS> PQS;
  std::unique_ptr<Liveness> LV;
  std::unique_ptr<DepGraph> DG;
  Schedule S;
};

SchedCase schedule(const std::string &Src, const MachineDesc &MD) {
  SchedCase C;
  C.F = parseFunctionOrDie(Src);
  const Block &B = C.F->block(0);
  C.PQS = std::make_unique<RegionPQS>(*C.F, B);
  C.LV = std::make_unique<Liveness>(*C.F);
  C.DG = std::make_unique<DepGraph>(*C.F, B, MD, *C.PQS, *C.LV);
  C.S = scheduleBlock(B, *C.DG, MD);
  EXPECT_TRUE(checkScheduleLegality(B, *C.DG, MD, C.S).empty());
  return C;
}

TEST(SchedulerTest, SerialChainLengthEqualsLatencySum) {
  const char *Src = R"(
func @f {
block @A:
  r1 = load(r9)
  r2 = add(r1, 1)
  r3 = mul(r2, r2)
  r4 = add(r3, 1)
  halt
}
)";
  SchedCase C = schedule(Src, MachineDesc::infinite());
  // load(2) + add(1) + mul(3) + add(1) = 7, plus the halt cycle.
  EXPECT_EQ(C.S.cycleOf(0), 0);
  EXPECT_EQ(C.S.cycleOf(1), 2);
  EXPECT_EQ(C.S.cycleOf(2), 3);
  EXPECT_EQ(C.S.cycleOf(3), 6);
}

TEST(SchedulerTest, IndependentOpsPackOnWideMachine) {
  const char *Src = R"(
func @f {
block @A:
  r1 = add(r9, 1)
  r2 = add(r9, 2)
  r3 = add(r9, 3)
  r4 = add(r9, 4)
  halt
}
)";
  SchedCase Wide = schedule(Src, MachineDesc::wide()); // 8 integer units
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Wide.S.cycleOf(static_cast<size_t>(I)), 0);

  // The medium machine has 4 integer units: still one cycle.
  SchedCase Med = schedule(Src, MachineDesc::medium());
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Med.S.cycleOf(static_cast<size_t>(I)), 0);

  // The narrow machine has 2: two cycles.
  SchedCase Nar = schedule(Src, MachineDesc::narrow());
  int MaxCycle = 0;
  for (int I = 0; I < 4; ++I)
    MaxCycle = std::max(MaxCycle, Nar.S.cycleOf(static_cast<size_t>(I)));
  EXPECT_EQ(MaxCycle, 1);
}

TEST(SchedulerTest, SequentialMachineIssuesOnePerCycle) {
  const char *Src = R"(
func @f {
block @A:
  r1 = add(r9, 1)
  r2 = add(r9, 2)
  f1 = fadd(f9, f9)
  store(r1, r2)
  halt
}
)";
  SchedCase Seq = schedule(Src, MachineDesc::sequential());
  // Five ops, one per cycle, all distinct cycles.
  std::vector<bool> Used(16, false);
  for (size_t I = 0; I < 5; ++I) {
    int Cyc = Seq.S.cycleOf(I);
    ASSERT_LT(Cyc, 16);
    EXPECT_FALSE(Used[static_cast<size_t>(Cyc)]);
    Used[static_cast<size_t>(Cyc)] = true;
  }
}

TEST(SchedulerTest, UnitKindsLimitIssue) {
  // Four loads on a machine with one memory port take four cycles even
  // though other units idle.
  const char *Src = R"(
func @f {
block @A:
  r1 = load(r9)
  r2 = load(r8)
  r3 = load(r7)
  r4 = load(r6)
  halt
}
)";
  SchedCase Nar = schedule(Src, MachineDesc::narrow()); // M = 1
  int MaxCycle = 0;
  for (size_t I = 0; I < 4; ++I)
    MaxCycle = std::max(MaxCycle, Nar.S.cycleOf(I));
  EXPECT_EQ(MaxCycle, 3);
}

TEST(SchedulerTest, DisjointBranchesSharePortsOnWide) {
  // FRP-style disjoint branches may issue in the same cycle on a machine
  // with two branch units.
  const char *Src = R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  b2 = pbr(@Y)
  branch(p1, b1)
  branch(p2, b2)
  halt
block @X:
  halt
block @Y:
  halt
}
)";
  SchedCase Wide = schedule(Src, MachineDesc::wide()); // B = 2
  EXPECT_EQ(Wide.S.cycleOf(3), Wide.S.cycleOf(4))
      << "disjoint branches should overlap";
  // With only one branch unit they must serialize.
  SchedCase Med = schedule(Src, MachineDesc::medium()); // B = 1
  EXPECT_NE(Med.S.cycleOf(3), Med.S.cycleOf(4));
}

TEST(SchedulerTest, ExitOrderBoostKeepsBranchesEarly) {
  // A deep arithmetic chain after a ready branch: the branch must not be
  // starved on a narrow machine (exit-order priority boost).
  const char *Src = R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r2 = xor(r9, 1)
  r3 = xor(r2, 2)
  r4 = xor(r3, 3)
  r5 = xor(r4, 4)
  store(r5, r5)
  halt
block @X:
  halt
}
)";
  SchedCase Seq = schedule(Src, MachineDesc::sequential());
  // The branch issues before the tail of the xor chain completes.
  EXPECT_LT(Seq.S.cycleOf(2), Seq.S.cycleOf(6));
}

TEST(SchedulerTest, DepartureCycles) {
  const char *Src = R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  halt
block @X:
  halt
}
)";
  std::unique_ptr<Function> F = parseFunctionOrDie(Src);
  const Block &B = F->block(0);
  for (int Lat : {1, 2, 3}) {
    MachineDesc MD("m", 4, 2, 2, 1, false, Lat);
    RegionPQS PQS(*F, B);
    Liveness LV(*F);
    DepGraph DG(*F, B, MD, PQS, LV);
    Schedule S = scheduleBlock(B, DG, MD);
    EXPECT_EQ(S.departureCycle(2, B, MD), S.cycleOf(2) + Lat);
  }
}

TEST(SchedulerTest, KernelsScheduleLegallyOnAllMachines) {
  for (auto Build : {+[] { return buildStrcpyKernel(4, 64); },
                     +[] { return buildWcKernel(2, 64); },
                     +[] { return buildCmpKernel(4, 64, 60); }}) {
    KernelProgram P = Build();
    Liveness LV(*P.Func);
    for (const MachineDesc &MD : MachineDesc::paperModels()) {
      for (size_t BI = 0; BI < P.Func->numBlocks(); ++BI) {
        const Block &B = P.Func->block(BI);
        if (B.empty())
          continue;
        RegionPQS PQS(*P.Func, B);
        DepGraph DG(*P.Func, B, MD, PQS, LV);
        Schedule S = scheduleBlock(B, DG, MD);
        std::vector<std::string> Errors =
            checkScheduleLegality(B, DG, MD, S);
        EXPECT_TRUE(Errors.empty())
            << MD.getName() << " @" << B.getName() << ": "
            << (Errors.empty() ? "" : Errors.front());
      }
    }
  }
}

TEST(SchedulerTest, WiderMachinesNeverSlower) {
  KernelProgram P = buildStrcpyKernel(8, 64);
  const Block &Loop = *P.Func->blockByName("Loop");
  Liveness LV(*P.Func);
  int PrevLen = 1 << 30;
  for (const MachineDesc &MD :
       {MachineDesc::sequential(), MachineDesc::narrow(),
        MachineDesc::medium(), MachineDesc::wide(),
        MachineDesc::infinite()}) {
    RegionPQS PQS(*P.Func, Loop);
    DepGraph DG(*P.Func, Loop, MD, PQS, LV);
    Schedule S = scheduleBlock(Loop, DG, MD);
    EXPECT_LE(S.length(), PrevLen) << MD.getName();
    PrevLen = S.length();
  }
}

} // namespace

//===- tests/sched/PerfModelTest.cpp - Performance model tests ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/PerfModel.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(PerfModelTest, BlockLengthModeMatchesHandComputation) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  r1 = add(r9, 1)
  r2 = add(r1, 1)
  r3 = add(r2, 1)
  halt
}
)");
  ProfileData P;
  P.addBlockEntry(F->block(0).getId(), 10);

  PerfModelOptions Opts;
  Opts.WeightMode = PerfModelOptions::Mode::BlockLength;
  PerfEstimate E =
      estimatePerformance(*F, MachineDesc::infinite(), P, Opts);
  // Serial adds complete at cycles 1,2,3 (the halt has no dependence on
  // pure arithmetic and does not extend the schedule): length 3, ten
  // entries -> 30 cycles.
  ASSERT_EQ(E.Blocks.size(), 1u);
  EXPECT_EQ(E.Blocks[0].ScheduleLength, 3);
  EXPECT_DOUBLE_EQ(E.TotalCycles, 30.0);
}

TEST(PerfModelTest, ExitAwareChargesTakenExitsEarly) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r2 = xor(r9, 1)
  r3 = xor(r2, 2)
  r4 = xor(r3, 3)
  store(r4, r4)
  halt
block @X:
  halt
}
)");
  const Block &A = F->block(0);
  OpId Br = A.ops()[2].getId();

  ProfileData P;
  P.addBlockEntry(A.getId(), 100);
  P.addBranchReached(Br, 100);
  P.addBranchTaken(Br, 100); // always taken

  PerfModelOptions ExitAware;
  PerfEstimate EA =
      estimatePerformance(*F, MachineDesc::medium(), P, ExitAware);

  PerfModelOptions BlockLen;
  BlockLen.WeightMode = PerfModelOptions::Mode::BlockLength;
  PerfEstimate BL =
      estimatePerformance(*F, MachineDesc::medium(), P, BlockLen);

  // Every entry leaves at the branch: the exit-aware estimate must be
  // strictly cheaper than charging the whole block.
  EXPECT_LT(EA.TotalCycles, BL.TotalCycles);
  EXPECT_GT(EA.TotalCycles, 0.0);
}

TEST(PerfModelTest, FallThroughEntriesPayFullLength) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un = cmpp.eq(r1, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r2 = xor(r9, 1)
  halt
block @X:
  halt
}
)");
  const Block &A = F->block(0);
  ProfileData P;
  P.addBlockEntry(A.getId(), 50);
  P.addBranchReached(A.ops()[2].getId(), 50);
  // Never taken: exit-aware equals block-length mode.
  PerfModelOptions ExitAware;
  PerfModelOptions BlockLen;
  BlockLen.WeightMode = PerfModelOptions::Mode::BlockLength;
  double EA = estimatePerformance(*F, MachineDesc::medium(), P, ExitAware)
                  .TotalCycles;
  double BL = estimatePerformance(*F, MachineDesc::medium(), P, BlockLen)
                  .TotalCycles;
  EXPECT_DOUBLE_EQ(EA, BL);
}

TEST(PerfModelTest, ColdBlocksContributeNothing) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  halt
block @Cold:
  r1 = add(r1, 1)
  halt
}
)");
  ProfileData P;
  P.addBlockEntry(F->block(0).getId(), 5);
  PerfEstimate E = estimatePerformance(*F, MachineDesc::medium(), P);
  ASSERT_EQ(E.Blocks.size(), 2u);
  EXPECT_EQ(E.Blocks[1].Cycles, 0.0);
  EXPECT_GT(E.Blocks[0].Cycles, 0.0);
}

TEST(PerfModelTest, WiderMachinesEstimateNoSlower) {
  KernelProgram P = buildWcKernel(4, 1024);
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  double Prev = 1e300;
  for (const MachineDesc &MD : MachineDesc::paperModels()) {
    double Cyc = estimatePerformance(*P.Func, MD, Prof).TotalCycles;
    EXPECT_LE(Cyc, Prev * 1.0001) << MD.getName();
    Prev = Cyc;
  }
}

TEST(PerfModelTest, BranchLatencyRaisesCost) {
  KernelProgram P = buildStrcpyKernel(4, 1024);
  Memory Mem = P.InitMem;
  ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
  double Prev = 0.0;
  for (int Lat : {1, 2, 3}) {
    MachineDesc MD("m", 4, 2, 2, 1, false, Lat);
    double Cyc = estimatePerformance(*P.Func, MD, Prof).TotalCycles;
    EXPECT_GT(Cyc, Prev);
    Prev = Cyc;
  }
}

} // namespace

//===- tests/machine/MachineDescTest.cpp - Machine model tests ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "machine/MachineDesc.h"

#include "ir/Function.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

Operation makeOp(Opcode Opc) { return Operation(1, Opc); }

TEST(MachineDescTest, PaperConfigurations) {
  // Section 7: narrow (2,1,1,1), medium (4,2,2,1), wide (8,4,4,2),
  // infinite (75,25,25,25); sequential issues one op of any type.
  MachineDesc Nar = MachineDesc::narrow();
  EXPECT_EQ(Nar.unitCount(UnitKind::Int), 2);
  EXPECT_EQ(Nar.unitCount(UnitKind::Float), 1);
  EXPECT_EQ(Nar.unitCount(UnitKind::Mem), 1);
  EXPECT_EQ(Nar.unitCount(UnitKind::Branch), 1);

  MachineDesc Med = MachineDesc::medium();
  EXPECT_EQ(Med.unitCount(UnitKind::Int), 4);
  EXPECT_EQ(Med.unitCount(UnitKind::Branch), 1);

  MachineDesc Wid = MachineDesc::wide();
  EXPECT_EQ(Wid.unitCount(UnitKind::Int), 8);
  EXPECT_EQ(Wid.unitCount(UnitKind::Branch), 2);

  MachineDesc Inf = MachineDesc::infinite();
  EXPECT_EQ(Inf.unitCount(UnitKind::Int), 75);
  EXPECT_EQ(Inf.unitCount(UnitKind::Branch), 25);

  EXPECT_TRUE(MachineDesc::sequential().isSequential());
  EXPECT_EQ(MachineDesc::sequential().issueWidth(), 1);
  EXPECT_FALSE(Med.isSequential());
  EXPECT_EQ(Med.issueWidth(), 4 + 2 + 2 + 1);
}

TEST(MachineDescTest, PaperLatencies) {
  // Section 7: simple integer 1, simple fp 3, load 2, store 1, multiply
  // 3, divide 8, branch latency 1.
  MachineDesc MD = MachineDesc::medium();
  EXPECT_EQ(MD.latency(makeOp(Opcode::Add)), 1);
  EXPECT_EQ(MD.latency(makeOp(Opcode::Xor)), 1);
  EXPECT_EQ(MD.latency(makeOp(Opcode::Mov)), 1);
  EXPECT_EQ(MD.latency(makeOp(Opcode::Cmpp)), 1);
  EXPECT_EQ(MD.latency(makeOp(Opcode::FAdd)), 3);
  EXPECT_EQ(MD.latency(makeOp(Opcode::FMul)), 3);
  EXPECT_EQ(MD.latency(makeOp(Opcode::FDiv)), 8);
  EXPECT_EQ(MD.latency(makeOp(Opcode::Load)), 2);
  EXPECT_EQ(MD.latency(makeOp(Opcode::Store)), 1);
  EXPECT_EQ(MD.latency(makeOp(Opcode::Mul)), 3);
  EXPECT_EQ(MD.latency(makeOp(Opcode::Div)), 8);
  EXPECT_EQ(MD.latency(makeOp(Opcode::Branch)), 1);
}

TEST(MachineDescTest, ConfigurableBranchLatency) {
  for (int Lat : {1, 2, 3, 5}) {
    MachineDesc MD = MachineDesc::medium(Lat);
    EXPECT_EQ(MD.branchLatency(), Lat);
    EXPECT_EQ(MD.latency(makeOp(Opcode::Branch)), Lat);
    // Non-branch latencies unaffected.
    EXPECT_EQ(MD.latency(makeOp(Opcode::Load)), 2);
  }
}

TEST(MachineDescTest, PaperModelsOrder) {
  std::vector<MachineDesc> Models = MachineDesc::paperModels();
  ASSERT_EQ(Models.size(), 5u);
  EXPECT_EQ(Models[0].getName(), "sequential");
  EXPECT_EQ(Models[1].getName(), "narrow");
  EXPECT_EQ(Models[2].getName(), "medium");
  EXPECT_EQ(Models[3].getName(), "wide");
  EXPECT_EQ(Models[4].getName(), "infinite");
}

TEST(MachineDescTest, UnitAssignment) {
  EXPECT_EQ(opcodeUnit(Opcode::Add), UnitKind::Int);
  EXPECT_EQ(opcodeUnit(Opcode::Cmpp), UnitKind::Int);
  EXPECT_EQ(opcodeUnit(Opcode::FAdd), UnitKind::Float);
  EXPECT_EQ(opcodeUnit(Opcode::Load), UnitKind::Mem);
  EXPECT_EQ(opcodeUnit(Opcode::Store), UnitKind::Mem);
  EXPECT_EQ(opcodeUnit(Opcode::Pbr), UnitKind::Branch);
  EXPECT_EQ(opcodeUnit(Opcode::Branch), UnitKind::Branch);
}

} // namespace

//===- tests/interp/EquivDiagnosticTest.cpp - Divergence diagnostics ------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The equivalence oracle must not just say "mismatch": it names the first
// diverging artifact (exit path, observable register, or memory cell) so
// fuzz findings and `cprc --check-equivalence` failures are triageable.
// These tests pin the classification, the fixed comparison order, and the
// artifact naming.
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

EquivResult check(const std::string &SrcA, const std::string &SrcB,
                  const Memory &Mem = Memory(),
                  const std::vector<RegBinding> &Init = {}) {
  std::unique_ptr<Function> A = parseFunctionOrDie(SrcA);
  std::unique_ptr<Function> B = parseFunctionOrDie(SrcB);
  return checkEquivalence(*A, *B, Mem, Init);
}

TEST(EquivDiagnosticTest, EquivalentProgramsReportNone) {
  const std::string Src = R"(
func @f {
  observable r1
block @A:
  r1 = add(2, 3)
  halt
}
)";
  EquivResult E = check(Src, Src);
  EXPECT_TRUE(E.Equivalent);
  EXPECT_EQ(E.Kind, EquivResult::Divergence::None);
  EXPECT_STREQ(divergenceName(E.Kind), "none");
}

TEST(EquivDiagnosticTest, RegisterDivergenceNamesTheRegister) {
  EquivResult E = check(R"(
func @f {
  observable r1, r2
block @A:
  r1 = mov(7)
  r2 = mov(10)
  halt
}
)",
                        R"(
func @f {
  observable r1, r2
block @A:
  r1 = mov(7)
  r2 = mov(11)
  halt
}
)");
  ASSERT_FALSE(E.Equivalent);
  EXPECT_EQ(E.Kind, EquivResult::Divergence::Register);
  EXPECT_STREQ(divergenceName(E.Kind), "register");
  // The first diverging register is named, with both values.
  EXPECT_NE(E.Detail.find("r2"), std::string::npos) << E.Detail;
  EXPECT_NE(E.Detail.find("10"), std::string::npos) << E.Detail;
  EXPECT_NE(E.Detail.find("11"), std::string::npos) << E.Detail;
  // r1 agrees and must not be blamed.
  EXPECT_EQ(E.Detail.find("r1"), std::string::npos) << E.Detail;
}

TEST(EquivDiagnosticTest, MemoryDivergenceNamesLowestAddressAndLastStore) {
  EquivResult E = check(R"(
func @f {
block @A:
  store.m1(500, 1)
  store.m1(100, 1)
  halt
}
)",
                        R"(
func @f {
block @A:
  store.m1(500, 2)
  store.m1(100, 2)
  halt
}
)");
  ASSERT_FALSE(E.Equivalent);
  EXPECT_EQ(E.Kind, EquivResult::Divergence::Memory);
  EXPECT_STREQ(divergenceName(E.Kind), "memory");
  // Both 100 and 500 diverge; the lowest address is reported,
  // deterministically, with the last store to it in each run.
  EXPECT_NE(E.Detail.find("100"), std::string::npos) << E.Detail;
  EXPECT_EQ(E.Detail.find("500"), std::string::npos) << E.Detail;
  EXPECT_NE(E.Detail.find("store"), std::string::npos) << E.Detail;
}

TEST(EquivDiagnosticTest, MemoryDivergenceExplainsNeverStoredCells) {
  EquivResult E = check(R"(
func @f {
block @A:
  store.m1(64, 5)
  halt
}
)",
                        R"(
func @f {
block @A:
  halt
}
)");
  ASSERT_FALSE(E.Equivalent);
  EXPECT_EQ(E.Kind, EquivResult::Divergence::Memory);
  EXPECT_NE(E.Detail.find("never stored"), std::string::npos) << E.Detail;
}

TEST(EquivDiagnosticTest, ExitPathDivergenceDescribesBothExits) {
  EquivResult E = check(R"(
func @f {
block @A:
  halt
}
)",
                        R"(
func @f {
block @A:
  trap
}
)");
  ASSERT_FALSE(E.Equivalent);
  EXPECT_EQ(E.Kind, EquivResult::Divergence::ExitPath);
  EXPECT_STREQ(divergenceName(E.Kind), "exit-path");
  EXPECT_NE(E.Detail.find("halted"), std::string::npos) << E.Detail;
  EXPECT_NE(E.Detail.find("trapped"), std::string::npos) << E.Detail;
}

TEST(EquivDiagnosticTest, ExitPathOutranksRegisterAndMemory) {
  // The trapped run also leaves r1 and memory different; the fixed
  // comparison order must still blame the exit path first.
  EquivResult E = check(R"(
func @f {
  observable r1
block @A:
  r1 = mov(1)
  store.m1(8, 1)
  halt
}
)",
                        R"(
func @f {
  observable r1
block @A:
  r1 = mov(2)
  store.m1(8, 2)
  trap
}
)");
  ASSERT_FALSE(E.Equivalent);
  EXPECT_EQ(E.Kind, EquivResult::Divergence::ExitPath);
}

TEST(EquivDiagnosticTest, RegisterOutranksMemory) {
  EquivResult E = check(R"(
func @f {
  observable r1
block @A:
  r1 = mov(1)
  store.m1(8, 1)
  halt
}
)",
                        R"(
func @f {
  observable r1
block @A:
  r1 = mov(2)
  store.m1(8, 2)
  halt
}
)");
  ASSERT_FALSE(E.Equivalent);
  EXPECT_EQ(E.Kind, EquivResult::Divergence::Register);
}

TEST(EquivDiagnosticTest, InputsFlowIntoComparison) {
  // Same code, diverging only on an initial register: both runs see the
  // same inputs, so they agree.
  const std::string Src = R"(
func @f {
  observable r2
block @A:
  r2 = add(r1, 1)
  halt
}
)";
  Memory Mem;
  EquivResult E = check(Src, Src, Mem, {{Reg::gpr(1), 41}});
  EXPECT_TRUE(E.Equivalent);
}

} // namespace

//===- tests/interp/InterpreterTest.cpp - Interpreter semantics -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

RunResult run(const std::string &Src, Memory &Mem,
              std::vector<RegBinding> Init = {},
              const InterpOptions &Opts = InterpOptions()) {
  std::unique_ptr<Function> F = parseFunctionOrDie(Src);
  return interpret(*F, Mem, Init, Opts);
}

TEST(InterpreterTest, ArithmeticAndObservables) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
  observable r1, r2, r3, r4
block @A:
  r1 = add(6, 7)
  r2 = mul(r1, 3)
  r3 = shr(r2, 1)
  r4 = rem(r2, 4)
  halt
}
)",
                    Mem);
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.Observed, (std::vector<int64_t>{13, 39, 19, 3}));
}

TEST(InterpreterTest, DivisionByZeroReadsZero) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
  observable r1, r2
block @A:
  r1 = div(10, 0)
  r2 = rem(10, 0)
  halt
}
)",
                    Mem);
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.Observed, (std::vector<int64_t>{0, 0}));
}

TEST(InterpreterTest, PredicationNullifies) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
  observable r1, r2
block @A:
  r1 = mov(1)
  r2 = mov(1)
  p1:un, p2:uc = cmpp.lt(5, 3)
  r1 = mov(99) if p1
  r2 = mov(99) if p2
  halt
}
)",
                    Mem);
  ASSERT_TRUE(R.halted());
  // 5 < 3 is false: p1 false (nullified), p2 true (executes).
  EXPECT_EQ(R.Observed, (std::vector<int64_t>{1, 99}));
}

TEST(InterpreterTest, CmppWritesUnconditionalTargetsUnderFalseGuard) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
  observable r1
block @A:
  p3 = mov(0)
  p1 = mov(1)
  p1:un = cmpp.lt(1, 2) if p3
  r1 = mov(0)
  r1 = mov(77) if p1
  halt
}
)",
                    Mem);
  ASSERT_TRUE(R.halted());
  // The UN target is written 0 even though the guard p3 is false, so the
  // final mov is nullified.
  EXPECT_EQ(R.Observed, (std::vector<int64_t>{0}));
}

TEST(InterpreterTest, BranchTakenAndFallThrough) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
  observable r1
block @A:
  p1:un = cmpp.eq(r9, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r1 = mov(111)
  halt
block @X:
  r1 = mov(222)
  halt
}
)",
                    Mem, {{Reg::gpr(9), 0}});
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.Observed[0], 222);
  EXPECT_EQ(R.Stats.BranchesTaken, 1u);

  Memory Mem2;
  RunResult R2 = run(R"(
func @f {
  observable r1
block @A:
  p1:un = cmpp.eq(r9, 0)
  b1 = pbr(@X)
  branch(p1, b1)
  r1 = mov(111)
  halt
block @X:
  r1 = mov(222)
  halt
}
)",
                     Mem2, {{Reg::gpr(9), 5}});
  EXPECT_EQ(R2.Observed[0], 111);
  EXPECT_EQ(R2.Stats.BranchesTaken, 0u);
}

TEST(InterpreterTest, LoopWithCounter) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
  observable r2
block @Entry:
  r1 = mov(10)
  r2 = mov(0)
block @Loop:
  r2 = add(r2, r1)
  r1 = sub(r1, 1)
  p1:un = cmpp.gt(r1, 0)
  b1 = pbr(@Loop)
  branch(p1, b1)
  halt
}
)",
                    Mem);
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.Observed[0], 55); // 10 + 9 + ... + 1
}

TEST(InterpreterTest, MemoryRoundTrip) {
  Memory Mem;
  Mem.store(1000, 42);
  RunResult R = run(R"(
func @f {
  observable r2
block @A:
  r1 = mov(1000)
  r2 = load(r1)
  r3 = add(r1, 1)
  store(r3, r2)
  halt
}
)",
                    Mem);
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.Observed[0], 42);
  EXPECT_EQ(Mem.load(1001), 42);
}

TEST(InterpreterTest, TrapReports) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
block @A:
  trap
}
)",
                    Mem);
  EXPECT_EQ(R.St, RunResult::Status::Trapped);
}

TEST(InterpreterTest, FallOffEndIsError) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
block @A:
  r1 = mov(1)
}
)",
                    Mem);
  EXPECT_EQ(R.St, RunResult::Status::Error);
}

TEST(InterpreterTest, StepLimit) {
  Memory Mem;
  InterpOptions Opts;
  Opts.MaxSteps = 100;
  RunResult R = run(R"(
func @f {
block @Loop:
  b1 = pbr(@Loop)
  branch(T, b1)
}
)",
                    Mem, {}, Opts);
  EXPECT_EQ(R.St, RunResult::Status::StepLimit);
}

TEST(InterpreterTest, ProfileCounts) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @Entry:
  r1 = mov(4)
block @Loop:
  r1 = sub(r1, 1)
  p1:un = cmpp.gt(r1, 0)
  b1 = pbr(@Loop)
  branch(p1, b1)
  halt
}
)");
  Memory Mem;
  ProfileData Profile;
  InterpOptions Opts;
  Opts.Profile = &Profile;
  RunResult R = interpret(*F, Mem, {}, Opts);
  ASSERT_TRUE(R.halted());
  BlockId Loop = F->blockByName("Loop")->getId();
  OpId Br = F->block(1).ops()[3].getId();
  EXPECT_EQ(Profile.blockEntries(Loop), 4u);
  EXPECT_EQ(Profile.branchReached(Br), 4u);
  EXPECT_EQ(Profile.branchTaken(Br), 3u);
  EXPECT_DOUBLE_EQ(Profile.takenRatio(Br), 0.75);
}

TEST(InterpreterTest, StoreTraceRecordsExecutedStoresOnly) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.lt(1, 2)
  store(r1, 7) if p1
  store(r1, 9) if p2
  halt
}
)");
  Memory Mem;
  std::vector<StoreEvent> Trace;
  InterpOptions Opts;
  Opts.StoreTrace = &Trace;
  RunResult R = interpret(*F, Mem, {{Reg::gpr(1), 500}}, Opts);
  ASSERT_TRUE(R.halted());
  ASSERT_EQ(Trace.size(), 1u);
  EXPECT_EQ(Trace[0].Addr, 500);
  EXPECT_EQ(Trace[0].Value, 7);
}

TEST(InterpreterTest, DynStatsCountDispatchedAndEffective) {
  Memory Mem;
  RunResult R = run(R"(
func @f {
block @A:
  p1:un, p2:uc = cmpp.lt(2, 1)
  r1 = mov(1) if p1
  r2 = mov(2) if p2
  halt
}
)",
                    Mem);
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.Stats.OpsDispatched, 4u);
  EXPECT_EQ(R.Stats.OpsEffective, 3u); // the p1-guarded mov is nullified
}

TEST(InterpreterTest, EquivalenceCheckerDetectsDifferences) {
  std::unique_ptr<Function> A = parseFunctionOrDie(R"(
func @a {
block @A:
  store(r1, 7)
  halt
}
)");
  std::unique_ptr<Function> B = parseFunctionOrDie(R"(
func @b {
block @A:
  store(r1, 8)
  halt
}
)");
  Memory Mem;
  EquivResult E =
      checkEquivalence(*A, *B, Mem, {{Reg::gpr(1), 100}});
  EXPECT_FALSE(E.Equivalent);
  EXPECT_NE(E.Detail.find("memory differs"), std::string::npos);

  EquivResult Same = checkEquivalence(*A, *A, Mem, {{Reg::gpr(1), 100}});
  EXPECT_TRUE(Same.Equivalent);
}

TEST(InterpreterTest, ZeroStoreEquivalentToNoStore) {
  std::unique_ptr<Function> A = parseFunctionOrDie(R"(
func @a {
block @A:
  store(r1, 0)
  halt
}
)");
  std::unique_ptr<Function> B = parseFunctionOrDie(R"(
func @b {
block @A:
  halt
}
)");
  Memory Mem;
  EquivResult E = checkEquivalence(*A, *B, Mem, {{Reg::gpr(1), 100}});
  EXPECT_TRUE(E.Equivalent) << E.Detail;
}

} // namespace

//===- tests/interp/FloatOpsTest.cpp - Floating-point path tests ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "ir/IRParser.h"
#include "sched/ListScheduler.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(FloatOpsTest, ArithmeticSemantics) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  f1 = fadd(f9, f9)
  f2 = fmul(f1, f9)
  f3 = fsub(f2, f1)
  f4 = fdiv(f3, f9)
  store(r1, f4)
  halt
}
)");
  Memory Mem;
  RunResult R = interpret(*F, Mem,
                          {{Reg::fpr(9), 3}, {Reg::gpr(1), 100}});
  ASSERT_TRUE(R.halted());
  // f1=6, f2=18, f3=12, f4=4 -> stored as integer image 4.
  EXPECT_EQ(Mem.load(100), 4);
}

TEST(FloatOpsTest, DivisionByZeroReadsZero) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  f2 = fdiv(f1, f3)
  store(r1, f2)
  halt
}
)");
  Memory Mem;
  RunResult R = interpret(*F, Mem,
                          {{Reg::fpr(1), 7}, {Reg::gpr(1), 50}});
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(Mem.load(50), 0);
}

TEST(FloatOpsTest, PredicatedFloatOps) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  f1 = mov(10)
  p1:un, p2:uc = cmpp.lt(r9, 5)
  f1 = fadd(f1, f1) if p1
  f1 = fsub(f1, f1) if p2
  store(r1, f1)
  halt
}
)");
  {
    Memory Mem;
    RunResult R = interpret(*F, Mem, {{Reg::gpr(9), 3}, {Reg::gpr(1), 10}});
    ASSERT_TRUE(R.halted());
    EXPECT_EQ(Mem.load(10), 20); // p1 path
  }
  {
    Memory Mem;
    RunResult R = interpret(*F, Mem, {{Reg::gpr(9), 8}, {Reg::gpr(1), 10}});
    ASSERT_TRUE(R.halted());
    EXPECT_EQ(Mem.load(10), 0); // p2 path
  }
}

TEST(FloatOpsTest, FloatLatenciesAndUnitsInSchedules) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @f {
block @A:
  f1 = fadd(f9, f9)
  f2 = fadd(f1, f9)
  f3 = fadd(f8, f8)
  f4 = fadd(f7, f7)
  halt
}
)");
  // Narrow machine: one float unit, fadd latency 3; the dependent chain
  // costs 3 + 3 and the independent adds fill other cycles.
  Schedule S = scheduleBlockWithAnalyses(*F, F->block(0),
                                         MachineDesc::narrow());
  EXPECT_EQ(S.cycleOf(1) - S.cycleOf(0), 3);
  EXPECT_NE(S.cycleOf(2), S.cycleOf(3)) << "single F unit serializes";
}

} // namespace

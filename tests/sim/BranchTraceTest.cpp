//===- tests/sim/BranchTraceTest.cpp - Branch trace + serialization -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/BranchTrace.h"

#include "interp/Profiler.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(BranchTraceTest, UnboundedKeepsEverything) {
  BranchTrace T;
  for (OpId I = 1; I <= 100; ++I)
    T.record(I, I % 3 == 0);
  EXPECT_EQ(T.size(), 100u);
  EXPECT_EQ(T.totalRecorded(), 100u);
  EXPECT_EQ(T.droppedEvents(), 0u);
  EXPECT_EQ(T.event(0).Op, 1u);
  EXPECT_EQ(T.event(99).Op, 100u);
  EXPECT_FALSE(T.hasTerminal());
}

TEST(BranchTraceTest, RingEvictsOldestInOrder) {
  BranchTrace T(3);
  for (OpId I = 1; I <= 5; ++I)
    T.record(I, I % 2 == 0);
  EXPECT_EQ(T.size(), 3u);
  EXPECT_EQ(T.totalRecorded(), 5u);
  EXPECT_EQ(T.droppedEvents(), 2u);
  // Oldest-first iteration over the retained suffix: 3, 4, 5.
  EXPECT_EQ(T.event(0).Op, 3u);
  EXPECT_EQ(T.event(1).Op, 4u);
  EXPECT_EQ(T.event(2).Op, 5u);
  EXPECT_TRUE(T.event(1).Taken);
  EXPECT_FALSE(T.event(2).Taken);
}

TEST(BranchTraceTest, ClearResetsEverything) {
  BranchTrace T(2);
  T.record(1, true);
  T.record(2, false);
  T.record(3, true);
  T.markTerminal(9);
  T.clear();
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.totalRecorded(), 0u);
  EXPECT_FALSE(T.hasTerminal());
  // The ring restarts cleanly after clear.
  T.record(4, true);
  EXPECT_EQ(T.event(0).Op, 4u);
}

TEST(BranchTraceTest, RunLengthEncodingCollapsesLoops) {
  BranchTrace T;
  for (int I = 0; I < 1000; ++I)
    T.record(7, true);
  T.record(7, false);
  T.markTerminal(3);
  std::string Text = serializeBranchTrace(T);
  EXPECT_EQ(Text, "btrace v1\nev 7 t 1000\nev 7 n 1\nterm 3\n");
}

// The round-trip guarantee mirrored from ProfileIOTest: a real
// interpreter-recorded trace survives serialize + parse bit-exactly.
TEST(BranchTraceTest, InterpreterTraceRoundTrips) {
  KernelProgram P = buildWcKernel(4, 2048, 17);
  Memory Mem = P.InitMem;
  BranchTrace T;
  profileRun(*P.Func, Mem, P.InitRegs, nullptr, &T);
  ASSERT_GT(T.size(), 0u);
  ASSERT_TRUE(T.hasTerminal());

  TraceParseResult R = parseBranchTrace(serializeBranchTrace(T));
  ASSERT_TRUE(R) << R.Error;
  ASSERT_EQ(R.Trace.size(), T.size());
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_TRUE(R.Trace.event(I) == T.event(I)) << "event " << I;
  EXPECT_EQ(R.Trace.terminalOp(), T.terminalOp());
  EXPECT_EQ(R.Trace.droppedEvents(), 0u);

  // And serialization is a fixed point.
  EXPECT_EQ(serializeBranchTrace(R.Trace), serializeBranchTrace(T));
}

TEST(BranchTraceTest, RoundTripPreservesDropCount) {
  BranchTrace T(2);
  for (OpId I = 1; I <= 10; ++I)
    T.record(I, true);
  TraceParseResult R = parseBranchTrace(serializeBranchTrace(T));
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Trace.size(), 2u);
  EXPECT_EQ(R.Trace.droppedEvents(), 8u);
  EXPECT_EQ(R.Trace.totalRecorded(), 10u);
}

TEST(BranchTraceTest, ParseErrors) {
  EXPECT_FALSE(parseBranchTrace(""));                       // no header
  EXPECT_FALSE(parseBranchTrace("ev 1 t 1\n"));             // missing header
  EXPECT_FALSE(parseBranchTrace("btrace v2\n"));            // bad version
  EXPECT_FALSE(parseBranchTrace("btrace v1\nbogus\n"));     // unknown record
  EXPECT_FALSE(parseBranchTrace("btrace v1\nev 1 x 2\n"));  // bad direction
  EXPECT_FALSE(parseBranchTrace("btrace v1\nev 1 t 0\n"));  // zero run
  EXPECT_FALSE(parseBranchTrace("btrace v1\nterm\n"));      // missing id
  EXPECT_FALSE(parseBranchTrace("btrace v1\ndrop x\n"));    // malformed drop

  TraceParseResult Ok = parseBranchTrace(
      "# comment\nbtrace v1\nev 4 t 2 # trailing\n\nterm 8\n");
  ASSERT_TRUE(Ok) << Ok.Error;
  EXPECT_EQ(Ok.Trace.size(), 2u);
  EXPECT_EQ(Ok.Trace.terminalOp(), 8u);
}

} // namespace

//===- tests/sim/BranchTraceTest.cpp - Branch trace + serialization -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/BranchTrace.h"

#include "interp/Profiler.h"
#include "support/RNG.h"
#include "workloads/Kernels.h"
#include "workloads/SyntheticProgram.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(BranchTraceTest, UnboundedKeepsEverything) {
  BranchTrace T;
  for (OpId I = 1; I <= 100; ++I)
    T.record(I, I % 3 == 0);
  EXPECT_EQ(T.size(), 100u);
  EXPECT_EQ(T.totalRecorded(), 100u);
  EXPECT_EQ(T.droppedEvents(), 0u);
  EXPECT_EQ(T.event(0).Op, 1u);
  EXPECT_EQ(T.event(99).Op, 100u);
  EXPECT_FALSE(T.hasTerminal());
}

TEST(BranchTraceTest, RingEvictsOldestInOrder) {
  BranchTrace T(3);
  for (OpId I = 1; I <= 5; ++I)
    T.record(I, I % 2 == 0);
  EXPECT_EQ(T.size(), 3u);
  EXPECT_EQ(T.totalRecorded(), 5u);
  EXPECT_EQ(T.droppedEvents(), 2u);
  // Oldest-first iteration over the retained suffix: 3, 4, 5.
  EXPECT_EQ(T.event(0).Op, 3u);
  EXPECT_EQ(T.event(1).Op, 4u);
  EXPECT_EQ(T.event(2).Op, 5u);
  EXPECT_TRUE(T.event(1).Taken);
  EXPECT_FALSE(T.event(2).Taken);
}

TEST(BranchTraceTest, ClearResetsEverything) {
  BranchTrace T(2);
  T.record(1, true);
  T.record(2, false);
  T.record(3, true);
  T.markTerminal(9);
  T.clear();
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.totalRecorded(), 0u);
  EXPECT_FALSE(T.hasTerminal());
  // The ring restarts cleanly after clear.
  T.record(4, true);
  EXPECT_EQ(T.event(0).Op, 4u);
}

TEST(BranchTraceTest, RunLengthEncodingCollapsesLoops) {
  BranchTrace T;
  for (int I = 0; I < 1000; ++I)
    T.record(7, true);
  T.record(7, false);
  T.markTerminal(3);
  std::string Text = serializeBranchTrace(T);
  EXPECT_EQ(Text, "btrace v1\nev 7 t 1000\nev 7 n 1\nterm 3\n");
}

// The round-trip guarantee mirrored from ProfileIOTest: a real
// interpreter-recorded trace survives serialize + parse bit-exactly.
TEST(BranchTraceTest, InterpreterTraceRoundTrips) {
  KernelProgram P = buildWcKernel(4, 2048, 17);
  Memory Mem = P.InitMem;
  BranchTrace T;
  profileRun(*P.Func, Mem, P.InitRegs, nullptr, &T);
  ASSERT_GT(T.size(), 0u);
  ASSERT_TRUE(T.hasTerminal());

  TraceParseResult R = parseBranchTrace(serializeBranchTrace(T));
  ASSERT_TRUE(R) << R.Error;
  ASSERT_EQ(R.Trace.size(), T.size());
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_TRUE(R.Trace.event(I) == T.event(I)) << "event " << I;
  EXPECT_EQ(R.Trace.terminalOp(), T.terminalOp());
  EXPECT_EQ(R.Trace.droppedEvents(), 0u);

  // And serialization is a fixed point.
  EXPECT_EQ(serializeBranchTrace(R.Trace), serializeBranchTrace(T));
}

TEST(BranchTraceTest, RoundTripPreservesDropCount) {
  BranchTrace T(2);
  for (OpId I = 1; I <= 10; ++I)
    T.record(I, true);
  TraceParseResult R = parseBranchTrace(serializeBranchTrace(T));
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Trace.size(), 2u);
  EXPECT_EQ(R.Trace.droppedEvents(), 8u);
  EXPECT_EQ(R.Trace.totalRecorded(), 10u);
}

TEST(BranchTraceTest, ParseErrors) {
  EXPECT_FALSE(parseBranchTrace(""));                       // no header
  EXPECT_FALSE(parseBranchTrace("ev 1 t 1\n"));             // missing header
  EXPECT_FALSE(parseBranchTrace("btrace v2\n"));            // bad version
  EXPECT_FALSE(parseBranchTrace("btrace v1\nbogus\n"));     // unknown record
  EXPECT_FALSE(parseBranchTrace("btrace v1\nev 1 x 2\n"));  // bad direction
  EXPECT_FALSE(parseBranchTrace("btrace v1\nev 1 t 0\n"));  // zero run
  EXPECT_FALSE(parseBranchTrace("btrace v1\nterm\n"));      // missing id
  EXPECT_FALSE(parseBranchTrace("btrace v1\ndrop x\n"));    // malformed drop

  TraceParseResult Ok = parseBranchTrace(
      "# comment\nbtrace v1\nev 4 t 2 # trailing\n\nterm 8\n");
  ASSERT_TRUE(Ok) << Ok.Error;
  EXPECT_EQ(Ok.Trace.size(), 2u);
  EXPECT_EQ(Ok.Trace.terminalOp(), 8u);
}

// --- btrace v1 hygiene -----------------------------------------------

TEST(BranchTraceTest, MalformedLinesAreRecoverableParseErrors) {
  // Every rejection is a recoverable Error diagnostic with the stable
  // parse-error code and the 1-based line of the offending record --
  // never a fatal, so readers can skip a bad trace and keep going.
  struct Case {
    const char *Text;
    unsigned Line;
  };
  for (const Case &C : std::initializer_list<Case>{
           {"", 0},                                        // missing header
           {"btrace v2\n", 1},                             // bad version
           {"btrace v1\nbogus 1\n", 2},                    // unknown record
           {"btrace v1\nev 1 t 1\nev 2 q 1\n", 3},         // bad direction
           {"btrace v1\nev 1 t 1 extra\n", 2},             // trailing token
           {"btrace v1\nev 4294967296 t 1\n", 2},          // id wider than OpId
           {"btrace v1\nev 1 t 1\nterm 3\nterm 3\n", 4},   // duplicate term
           {"btrace v1\nev 1 t 1\nterm 3\nev 1 t 1\n", 4}, // event after term
           {"btrace v1\ndrop 1\ndrop 1\n", 3},             // duplicate drop
       }) {
    Expected<BranchTrace> E = tryParseBranchTrace(C.Text);
    ASSERT_FALSE(E.ok()) << C.Text;
    const Diagnostic &D = E.diagnostic();
    EXPECT_EQ(D.Severity, DiagSeverity::Error) << C.Text;
    EXPECT_EQ(D.Code, DiagCode::ParseError) << C.Text;
    EXPECT_EQ(D.Line, C.Line) << C.Text;
  }
}

TEST(BranchTraceTest, RunLengthsAboveTheCapAreRejected) {
  // The parser expands RLE runs into events; an attacker-chosen count
  // must not let one line materialize gigabytes. (Expanding a run at the
  // cap itself is legal but costs gigabytes, so only the rejection side
  // is exercised here.)
  std::string OverCap = "btrace v1\nev 1 t " +
                        std::to_string(MaxTraceRunLength + 1) + "\nterm 2\n";
  Expected<BranchTrace> Bad = tryParseBranchTrace(OverCap);
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.diagnostic().Code, DiagCode::ParseError);
  EXPECT_EQ(Bad.diagnostic().Line, 2u);
}

TEST(BranchTraceTest, SerializationIsAFixedPointOverGeneratedPrograms) {
  // Property: serialize -> parse -> serialize is byte-identity for any
  // interpreter-recorded trace, across the fuzzer's application-shaped
  // program family (varied branch structure, bias, and loop shape).
  for (uint64_t Seed : {3u, 17u, 40u, 81u, 204u}) {
    RNG Rng(Seed);
    SyntheticParams SP = randomSyntheticParams(Rng);
    SP.Trips = std::min(SP.Trips, 64u); // bound interpretation cost
    KernelProgram P =
        buildSyntheticProgram("prop" + std::to_string(Seed), SP);

    Memory Mem = P.InitMem;
    BranchTrace T;
    profileRun(*P.Func, Mem, P.InitRegs, nullptr, &T);
    ASSERT_TRUE(T.hasTerminal()) << "seed " << Seed;

    std::string Text = serializeBranchTrace(T);
    Expected<BranchTrace> R = tryParseBranchTrace(Text);
    ASSERT_TRUE(R.ok()) << "seed " << Seed << ": " << R.diagnostic().str();
    EXPECT_EQ(serializeBranchTrace(*R), Text) << "seed " << Seed;

    // The parsed trace is semantically identical too, not just
    // textually: same events, terminal, and drop accounting.
    ASSERT_EQ(R->size(), T.size()) << "seed " << Seed;
    for (size_t I = 0; I < T.size(); ++I)
      ASSERT_TRUE(R->event(I) == T.event(I)) << "seed " << Seed << " ev " << I;
    EXPECT_EQ(R->terminalOp(), T.terminalOp());
    EXPECT_EQ(R->totalRecorded(), T.totalRecorded());
  }
}

} // namespace

//===- tests/sim/FrontendModelTest.cpp - Decoupled-frontend cost model ----===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// The three-cost-class contract of the frontend model (sim/TraceSimulator.h):
// direction mispredicts pay the restart penalty, direction-correct taken
// branches whose target misses the BTB pay a redirect penalty, and fetch
// narrower than the backend stalls dispatch. All of it is opt-in: the
// default FrontendOptions must reproduce the legacy flat-penalty model
// exactly.
//
//===----------------------------------------------------------------------===//

#include "sim/TraceSimulator.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

struct TracedRun {
  ProfileData Profile;
  BranchTrace Trace;

  TracedRun(const Function &F, Memory Mem,
            const std::vector<RegBinding> &Regs = {}) {
    InterpOptions IO;
    IO.Profile = &Profile;
    IO.Trace = &Trace;
    RunResult R = interpret(F, Mem, Regs, IO);
    EXPECT_TRUE(R.halted()) << R.ErrorMsg;
  }
};

const char *LoopIR = R"(
func @loop {
block @Entry:
  r1 = mov(5)
block @Loop:
  r1 = sub(r1, 1)
  p1:un = cmpp.gt(r1, 0)
  b1 = pbr(@Loop)
  branch(p1, b1)
  halt
}
)";

TEST(FrontendModelTest, DefaultOptionsReproduceTheFlatModel) {
  KernelProgram P = buildWcKernel(4, 1024, 3);
  TracedRun Run(*P.Func, P.InitMem, P.InitRegs);

  SimOptions Flat;
  std::unique_ptr<BranchPredictor> P0 = makePredictor(PredictorKind::Gshare);
  SimEstimate E0 =
      simulateTrace(*P.Func, MachineDesc::wide(), Run.Trace, *P0, Flat);
  ASSERT_TRUE(E0.ok()) << E0.Error;
  EXPECT_EQ(E0.FetchStallCycles, 0u);
  EXPECT_EQ(E0.BTBLookups, 0u);
  EXPECT_EQ(E0.BTBPenaltyCycles, 0u);

  // Decoupled fetch wider than any block entry adds no stalls either.
  SimOptions Wide;
  Wide.Frontend.Decoupled = true;
  Wide.Frontend.FetchWidth = 1000;
  std::unique_ptr<BranchPredictor> P1 = makePredictor(PredictorKind::Gshare);
  SimEstimate E1 =
      simulateTrace(*P.Func, MachineDesc::wide(), Run.Trace, *P1, Wide);
  ASSERT_TRUE(E1.ok()) << E1.Error;
  EXPECT_EQ(E1.FetchStallCycles, 0u);
  EXPECT_DOUBLE_EQ(E1.TotalCycles, E0.TotalCycles);
}

TEST(FrontendModelTest, NarrowFetchStallsExactlyTheDifference) {
  // Nine independent ops in one block: the wide backend retires them in a
  // few cycles, a one-wide fetch needs nine. The stall is the exact
  // difference, and total cycles decompose as backend + stall.
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @straight {
block @A:
  r1 = add(r9, 1)
  r2 = add(r9, 2)
  r3 = add(r9, 3)
  r4 = add(r9, 4)
  r5 = add(r9, 5)
  r6 = add(r9, 6)
  r7 = add(r9, 7)
  r8 = add(r9, 8)
  halt
}
)");
  TracedRun Run(*F, Memory());

  SimOptions Flat;
  std::unique_ptr<BranchPredictor> P0 = makePredictor(PredictorKind::Static);
  SimEstimate E0 =
      simulateTrace(*F, MachineDesc::wide(), Run.Trace, *P0, Flat);
  ASSERT_TRUE(E0.ok()) << E0.Error;

  SimOptions Narrow;
  Narrow.Frontend.Decoupled = true;
  Narrow.Frontend.FetchWidth = 1;
  std::unique_ptr<BranchPredictor> P1 = makePredictor(PredictorKind::Static);
  SimEstimate E1 =
      simulateTrace(*F, MachineDesc::wide(), Run.Trace, *P1, Narrow);
  ASSERT_TRUE(E1.ok()) << E1.Error;

  // One block entry of 9 fetched ops at width 1 = 9 fetch cycles.
  ASSERT_LT(E0.TotalCycles, 9.0);
  EXPECT_EQ(E1.FetchStallCycles,
            9u - static_cast<uint64_t>(E0.TotalCycles));
  EXPECT_DOUBLE_EQ(E1.TotalCycles,
                   E0.TotalCycles +
                       static_cast<double>(E1.FetchStallCycles));

  // Width 3 fetches the entry in 3 cycles: a smaller (possibly zero)
  // stall, never more than width 1 produced.
  SimOptions Mid;
  Mid.Frontend.Decoupled = true;
  Mid.Frontend.FetchWidth = 3;
  std::unique_ptr<BranchPredictor> P2 = makePredictor(PredictorKind::Static);
  SimEstimate E2 =
      simulateTrace(*F, MachineDesc::wide(), Run.Trace, *P2, Mid);
  ASSERT_TRUE(E2.ok()) << E2.Error;
  EXPECT_LT(E2.FetchStallCycles, E1.FetchStallCycles);
}

TEST(FrontendModelTest, MachineFetchWidthIsTheDefault) {
  std::unique_ptr<Function> F = parseFunctionOrDie(LoopIR);
  TracedRun Run(*F, Memory());

  MachineDesc MD = MachineDesc::wide();
  EXPECT_EQ(MD.fetchWidth(), MD.issueWidth()); // default: issue width
  MD.setFetchWidth(1);
  ASSERT_EQ(MD.fetchWidth(), 1);

  // FetchWidth = 0 defers to the machine knob; an explicit width must
  // produce the identical estimate.
  SimOptions FromMachine;
  FromMachine.Frontend.Decoupled = true;
  SimOptions Explicit;
  Explicit.Frontend.Decoupled = true;
  Explicit.Frontend.FetchWidth = 1;
  std::unique_ptr<BranchPredictor> PA = makePredictor(PredictorKind::Bimodal);
  std::unique_ptr<BranchPredictor> PB = makePredictor(PredictorKind::Bimodal);
  SimEstimate EA = simulateTrace(*F, MD, Run.Trace, *PA, FromMachine);
  SimEstimate EB = simulateTrace(*F, MD, Run.Trace, *PB, Explicit);
  ASSERT_TRUE(EA.ok() && EB.ok());
  EXPECT_DOUBLE_EQ(EA.TotalCycles, EB.TotalCycles);
  EXPECT_EQ(EA.FetchStallCycles, EB.FetchStallCycles);
  EXPECT_GT(EA.FetchStallCycles, 0u);
}

TEST(FrontendModelTest, BTBPenaltyOnlyOnDirectionCorrectTakenMisses) {
  std::unique_ptr<Function> F = parseFunctionOrDie(LoopIR);
  TracedRun Run(*F, Memory());
  ASSERT_EQ(Run.Trace.size(), 5u); // taken x4, then the fall-through exit

  SimOptions SO;
  SO.MispredictPenalty = 0; // isolate the BTB cost class
  SO.Frontend.UseBTB = true;
  SO.Frontend.BTBMissPenalty = 7;

  // The profiled static predictor calls every taken event correctly, so
  // the one cold BTB miss is charged: exactly one 7-cycle redirect.
  PredictorConfig Taken;
  Taken.Profile = &Run.Profile;
  std::unique_ptr<BranchPredictor> PT =
      makePredictor(PredictorKind::Static, Taken);
  SimEstimate ET = simulateTrace(*F, MachineDesc::medium(), Run.Trace, *PT, SO);
  ASSERT_TRUE(ET.ok()) << ET.Error;
  EXPECT_EQ(ET.BTBLookups, 4u); // only taken branches consult the BTB
  EXPECT_EQ(ET.BTBMisses, 1u);  // cold on the first iteration
  EXPECT_EQ(ET.BTBHits, 3u);
  EXPECT_EQ(ET.BTBPenaltyCycles, 7u);

  // An always-not-taken static predictor mispredicts every taken event;
  // the restart already refetches the target, so no BTB penalty stacks
  // on top even though the lookups still miss cold.
  PredictorConfig Never;
  Never.Profile = &Run.Profile;
  Never.PredictTakenThreshold = 2.0; // unreachable: never predict taken
  std::unique_ptr<BranchPredictor> PN =
      makePredictor(PredictorKind::Static, Never);
  SimEstimate EN = simulateTrace(*F, MachineDesc::medium(), Run.Trace, *PN, SO);
  ASSERT_TRUE(EN.ok()) << EN.Error;
  EXPECT_EQ(EN.Mispredicts, 4u);
  EXPECT_EQ(EN.BTBLookups, 4u);
  EXPECT_EQ(EN.BTBPenaltyCycles, 0u);

  // With both penalties at zero the frontend-on estimate collapses back
  // to the flat model's cycles.
  SimOptions Free = SO;
  Free.Frontend.BTBMissPenalty = 0;
  std::unique_ptr<BranchPredictor> PF =
      makePredictor(PredictorKind::Static, Taken);
  SimEstimate EF =
      simulateTrace(*F, MachineDesc::medium(), Run.Trace, *PF, Free);
  SimOptions Flat;
  Flat.MispredictPenalty = 0;
  std::unique_ptr<BranchPredictor> P0 =
      makePredictor(PredictorKind::Static, Taken);
  SimEstimate E0 =
      simulateTrace(*F, MachineDesc::medium(), Run.Trace, *P0, Flat);
  ASSERT_TRUE(EF.ok() && E0.ok());
  EXPECT_DOUBLE_EQ(EF.TotalCycles, E0.TotalCycles);
}

TEST(FrontendModelTest, BTBMissPenaltyDefaultsToTheMachineKnob) {
  std::unique_ptr<Function> F = parseFunctionOrDie(LoopIR);
  TracedRun Run(*F, Memory());

  MachineDesc MD = MachineDesc::medium();
  MD.setBTBMissPenalty(13);

  SimOptions FromMachine;
  FromMachine.MispredictPenalty = 0;
  FromMachine.Frontend.UseBTB = true; // BTBMissPenalty stays -1: defer
  SimOptions Explicit = FromMachine;
  Explicit.Frontend.BTBMissPenalty = 13;

  PredictorConfig PC;
  PC.Profile = &Run.Profile;
  std::unique_ptr<BranchPredictor> PA = makePredictor(PredictorKind::Static, PC);
  std::unique_ptr<BranchPredictor> PB = makePredictor(PredictorKind::Static, PC);
  SimEstimate EA = simulateTrace(*F, MD, Run.Trace, *PA, FromMachine);
  SimEstimate EB = simulateTrace(*F, MD, Run.Trace, *PB, Explicit);
  ASSERT_TRUE(EA.ok() && EB.ok());
  ASSERT_GT(EA.BTBPenaltyCycles, 0u);
  EXPECT_EQ(EA.BTBPenaltyCycles, EB.BTBPenaltyCycles);
  EXPECT_DOUBLE_EQ(EA.TotalCycles, EB.TotalCycles);
}

TEST(FrontendModelTest, FewerResidentBranchesMissLessUnderPressure) {
  // The CPR-relevance property the BTB model exists to expose: a code
  // body exercising fewer distinct taken branches keeps its targets
  // resident in a tiny BTB, while one cycling through more branches than
  // the BTB holds thrashes. Replay the same kernel trace against two BTB
  // sizes and require monotone behavior.
  KernelProgram P = buildLexKernel(4, 4096, 9);
  TracedRun Run(*P.Func, P.InitMem, P.InitRegs);

  auto missRate = [&](const char *Geom) {
    SimOptions SO;
    SO.Frontend.UseBTB = true;
    EXPECT_TRUE(parseBTBConfig(Geom, SO.Frontend.BTB));
    PredictorConfig PC;
    PC.Profile = &Run.Profile;
    std::unique_ptr<BranchPredictor> Pred =
        makePredictor(PredictorKind::Static, PC);
    SimEstimate E =
        simulateTrace(*P.Func, MachineDesc::wide(), Run.Trace, *Pred, SO);
    EXPECT_TRUE(E.ok()) << E.Error;
    BTBStats S;
    S.Lookups = E.BTBLookups;
    S.Misses = E.BTBMisses;
    return S.missRate();
  };
  // Capacity 1 vs 256: the tiny buffer can never hold the working set.
  EXPECT_GT(missRate("1x1"), missRate("64x4"));
}

} // namespace

//===- tests/sim/TraceSimulatorTest.cpp - Trace simulator tests -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/TraceSimulator.h"

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "sched/PerfModel.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

/// Interprets \p F recording both profile and trace; asserts a clean halt.
struct TracedRun {
  ProfileData Profile;
  BranchTrace Trace;
  DynStats Stats;

  TracedRun(const Function &F, Memory Mem,
            const std::vector<RegBinding> &Regs = {}) {
    InterpOptions IO;
    IO.Profile = &Profile;
    IO.Trace = &Trace;
    RunResult R = interpret(F, Mem, Regs, IO);
    EXPECT_TRUE(R.halted()) << R.ErrorMsg;
    Stats = R.Stats;
  }
};

std::unique_ptr<BranchPredictor> staticFor(const ProfileData &P) {
  PredictorConfig C;
  C.Profile = &P;
  return makePredictor(PredictorKind::Static, C);
}

TEST(TraceSimulatorTest, EmptyTraceOnStraightLineCode) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @straight {
block @A:
  r1 = add(r9, 1)
  r2 = add(r1, 1)
  halt
}
)");
  TracedRun Run(*F, Memory());
  ASSERT_EQ(Run.Trace.size(), 0u);
  ASSERT_TRUE(Run.Trace.hasTerminal());

  std::unique_ptr<BranchPredictor> Pred = staticFor(Run.Profile);
  SimEstimate E = simulateTrace(*F, MachineDesc::medium(), Run.Trace, *Pred);
  ASSERT_TRUE(E.ok()) << E.Error;
  EXPECT_EQ(E.Branches, 0u);
  EXPECT_EQ(E.Mispredicts, 0u);
  EXPECT_EQ(E.BlockEntries, 1u);
  EXPECT_EQ(E.OpsDispatched, Run.Stats.OpsDispatched);
  EXPECT_GT(E.TotalCycles, 0.0);
}

TEST(TraceSimulatorTest, EmptyTraceWithoutTerminalIsRejected) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @straight {
block @A:
  halt
}
)");
  BranchTrace Empty;
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Static);
  SimEstimate E = simulateTrace(*F, MachineDesc::medium(), Empty, *Pred);
  EXPECT_FALSE(E.ok());
  EXPECT_NE(E.Error.find("terminal"), std::string::npos);
}

TEST(TraceSimulatorTest, DroppedRingEventsAreRejected) {
  KernelProgram P = buildStrcpyKernel(4, 512);
  Memory Mem = P.InitMem;
  InterpOptions IO;
  BranchTrace Ring(8); // far too small for the run
  IO.Trace = &Ring;
  RunResult R = interpret(*P.Func, Mem, P.InitRegs, IO);
  ASSERT_TRUE(R.halted());
  ASSERT_GT(Ring.droppedEvents(), 0u);

  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Bimodal);
  SimEstimate E = simulateTrace(*P.Func, MachineDesc::wide(), Ring, *Pred);
  EXPECT_FALSE(E.ok());
  EXPECT_NE(E.Error.find("dropped"), std::string::npos);
}

TEST(TraceSimulatorTest, SingleBranchLoop) {
  std::unique_ptr<Function> F = parseFunctionOrDie(R"(
func @loop {
block @Entry:
  r1 = mov(5)
block @Loop:
  r1 = sub(r1, 1)
  p1:un = cmpp.gt(r1, 0)
  b1 = pbr(@Loop)
  branch(p1, b1)
  halt
}
)");
  TracedRun Run(*F, Memory());
  // Five loop iterations: taken four times, then the fall-through exit.
  ASSERT_EQ(Run.Trace.size(), 5u);
  ASSERT_TRUE(Run.Trace.hasTerminal());

  SimOptions SO;
  SO.MispredictPenalty = 10;
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Bimodal);
  SimEstimate E =
      simulateTrace(*F, MachineDesc::medium(), Run.Trace, *Pred, SO);
  ASSERT_TRUE(E.ok()) << E.Error;
  EXPECT_EQ(E.Branches, 5u);
  EXPECT_EQ(E.BlockEntries, 6u); // @Entry once + @Loop five times
  EXPECT_EQ(E.OpsDispatched, Run.Stats.OpsDispatched);
  // Weakly-not-taken warmup misses the first taken outcome, then the
  // final not-taken exit: exactly 2 mispredictions.
  EXPECT_EQ(E.Mispredicts, 2u);
  EXPECT_EQ(E.PenaltyCycles, 20u);
  EXPECT_EQ(E.Pred.Lookups, 5u);

  // Per-block detail: all mispredictions accrue to @Loop.
  ASSERT_EQ(E.Blocks.size(), 2u);
  EXPECT_EQ(E.Blocks[1].Name, "Loop");
  EXPECT_EQ(E.Blocks[1].Mispredicts, 2u);
  EXPECT_EQ(E.Blocks[1].Entries, 5u);
}

// The simulator's core contract: with a zero misprediction penalty it
// reproduces the ExitAware performance model exactly -- same departure
// cycles, same fall-through charges, same dynamic weights.
TEST(TraceSimulatorTest, PenaltyZeroMatchesExitAwarePerfModel) {
  for (auto Build : {buildWcKernel, buildStrcpyKernel}) {
    KernelProgram P = Build(4, 1024, 11);
    TracedRun Run(*P.Func, P.InitMem, P.InitRegs);

    SimOptions SO;
    SO.MispredictPenalty = 0;
    for (const MachineDesc &MD : MachineDesc::paperModels()) {
      std::unique_ptr<BranchPredictor> Pred = staticFor(Run.Profile);
      SimEstimate E = simulateTrace(*P.Func, MD, Run.Trace, *Pred, SO);
      ASSERT_TRUE(E.ok()) << E.Error;

      PerfEstimate Static = estimatePerformance(*P.Func, MD, Run.Profile);
      EXPECT_DOUBLE_EQ(E.TotalCycles, Static.TotalCycles)
          << P.Func->getName() << " on " << MD.getName();
      EXPECT_EQ(E.OpsDispatched, Run.Stats.OpsDispatched);
      EXPECT_EQ(E.Branches, Run.Stats.BranchesDispatched);
    }
  }
}

TEST(TraceSimulatorTest, PenaltyScalesLinearlyWithMispredicts) {
  KernelProgram P = buildGrepKernel(4, 2048, 0.1, 21);
  TracedRun Run(*P.Func, P.InitMem, P.InitRegs);

  SimOptions Zero;
  Zero.MispredictPenalty = 0;
  std::unique_ptr<BranchPredictor> P0 = makePredictor(PredictorKind::Bimodal);
  SimEstimate E0 =
      simulateTrace(*P.Func, MachineDesc::wide(), Run.Trace, *P0, Zero);
  ASSERT_TRUE(E0.ok()) << E0.Error;
  ASSERT_GT(E0.Mispredicts, 0u);

  SimOptions Ten;
  Ten.MispredictPenalty = 10;
  std::unique_ptr<BranchPredictor> P1 = makePredictor(PredictorKind::Bimodal);
  SimEstimate E1 =
      simulateTrace(*P.Func, MachineDesc::wide(), Run.Trace, *P1, Ten);
  ASSERT_TRUE(E1.ok()) << E1.Error;

  EXPECT_EQ(E0.Mispredicts, E1.Mispredicts);
  EXPECT_DOUBLE_EQ(E1.TotalCycles - E0.TotalCycles,
                   10.0 * static_cast<double>(E1.Mispredicts));
  EXPECT_EQ(E1.PenaltyCycles, 10 * E1.Mispredicts);
}

TEST(TraceSimulatorTest, NegativePenaltyUsesMachineKnob) {
  KernelProgram P = buildCmpKernel(4, 1024, 900, 5);
  TracedRun Run(*P.Func, P.InitMem, P.InitRegs);

  MachineDesc Cheap = MachineDesc::medium();
  Cheap.setMispredictPenalty(0);
  MachineDesc Dear = MachineDesc::medium();
  Dear.setMispredictPenalty(20);

  std::unique_ptr<BranchPredictor> PA = makePredictor(PredictorKind::Bimodal);
  SimEstimate EA = simulateTrace(*P.Func, Cheap, Run.Trace, *PA);
  std::unique_ptr<BranchPredictor> PB = makePredictor(PredictorKind::Bimodal);
  SimEstimate EB = simulateTrace(*P.Func, Dear, Run.Trace, *PB);
  ASSERT_TRUE(EA.ok() && EB.ok());
  ASSERT_GT(EA.Mispredicts, 0u);
  EXPECT_DOUBLE_EQ(EB.TotalCycles - EA.TotalCycles,
                   20.0 * static_cast<double>(EA.Mispredicts));
}

TEST(TraceSimulatorTest, ForeignTraceIsRejected) {
  KernelProgram A = buildStrcpyKernel(4, 512);
  KernelProgram B = buildWcKernel(4, 512);
  TracedRun RunA(*A.Func, A.InitMem, A.InitRegs);

  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Bimodal);
  SimEstimate E =
      simulateTrace(*B.Func, MachineDesc::medium(), RunA.Trace, *Pred);
  EXPECT_FALSE(E.ok());
}

TEST(TraceSimulatorTest, BetterPredictorNeverCostsMoreCycles) {
  // Same trace, same machine: a predictor with fewer mispredictions must
  // produce no more cycles (the schedule charges are identical).
  KernelProgram P = buildLexKernel(4, 4096, 9);
  TracedRun Run(*P.Func, P.InitMem, P.InitRegs);

  std::unique_ptr<BranchPredictor> S = staticFor(Run.Profile);
  SimEstimate ES = simulateTrace(*P.Func, MachineDesc::wide(), Run.Trace, *S);
  std::unique_ptr<BranchPredictor> G = makePredictor(PredictorKind::Gshare);
  SimEstimate EG = simulateTrace(*P.Func, MachineDesc::wide(), Run.Trace, *G);
  ASSERT_TRUE(ES.ok() && EG.ok());
  if (ES.Mispredicts <= EG.Mispredicts)
    EXPECT_LE(ES.TotalCycles, EG.TotalCycles);
  else
    EXPECT_GE(ES.TotalCycles, EG.TotalCycles);
}

} // namespace

//===- tests/sim/BTBTest.cpp - Branch target buffer tests -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/frontend/BTB.h"

#include "sim/BranchPredictor.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(BTBTest, ConfigParseRoundTrips) {
  BTBConfig C;
  ASSERT_TRUE(parseBTBConfig("64x4", C));
  EXPECT_EQ(C.SetBits, 6u);
  EXPECT_EQ(C.Ways, 4u);
  EXPECT_EQ(C.numSets(), 64u);
  EXPECT_EQ(C.capacity(), 256u);
  EXPECT_EQ(C.str(), "64x4");

  ASSERT_TRUE(parseBTBConfig("1x2", C));
  EXPECT_EQ(C.SetBits, 0u);
  EXPECT_EQ(C.Ways, 2u);
}

TEST(BTBTest, ConfigParseRejectsMalformedGeometries) {
  BTBConfig C;
  C.SetBits = 6;
  C.Ways = 4;
  for (const char *Bad :
       {"", "64", "x4", "64x", "64x4x2", "63x4", "0x4", "64x0", "64x65",
        "4194304x1", "64 x4", "-64x4", "64xfour"})
    EXPECT_FALSE(parseBTBConfig(Bad, C)) << Bad;
  // A failed parse leaves the config untouched.
  EXPECT_EQ(C.SetBits, 6u);
  EXPECT_EQ(C.Ways, 4u);
}

TEST(BTBTest, ColdMissThenHit) {
  BTB B;
  EXPECT_FALSE(B.access(5, 2)); // cold
  EXPECT_TRUE(B.access(5, 2));  // resident
  EXPECT_TRUE(B.access(5, 2));
  EXPECT_EQ(B.stats().Lookups, 3u);
  EXPECT_EQ(B.stats().Hits, 2u);
  EXPECT_EQ(B.stats().Misses, 1u);
}

TEST(BTBTest, StaleTargetIsAMissAndRefreshes) {
  // A resident entry whose stored target differs from the actual one
  // cannot redirect fetch correctly: that lookup is a miss, but the entry
  // refreshes in place, so the next lookup with the new target hits.
  BTB B;
  EXPECT_FALSE(B.access(5, 2));
  EXPECT_FALSE(B.access(5, 3)); // stale: stored 2, actual 3
  EXPECT_TRUE(B.access(5, 3));
  EXPECT_EQ(B.stats().Misses, 2u);
  EXPECT_EQ(B.stats().Hits, 1u);
}

TEST(BTBTest, LRUEvictsTheColdestWay) {
  // One set, two ways: a third branch evicts the least recently used.
  BTBConfig C;
  ASSERT_TRUE(parseBTBConfig("1x2", C));
  BTB B(C);
  EXPECT_FALSE(B.access(1, 10));
  EXPECT_FALSE(B.access(2, 20));
  EXPECT_TRUE(B.access(1, 10)); // touch 1: branch 2 is now LRU
  EXPECT_FALSE(B.access(3, 30)); // evicts 2
  EXPECT_TRUE(B.access(1, 10));  // survived
  EXPECT_FALSE(B.access(2, 20)); // evicted: cold again (evicts 3)
}

TEST(BTBTest, SetConflictsThrashAPressuredSet) {
  // Branch ids chosen to collide in a small direct-mapped BTB alias to
  // one set and keep evicting each other; a larger geometry holds both.
  ASSERT_EQ(predictorTableIndex(1, 1), predictorTableIndex(2, 1));
  auto missesAfterWarmup = [](const char *Geom) {
    BTBConfig C;
    EXPECT_TRUE(parseBTBConfig(Geom, C));
    BTB B(C);
    B.access(1, 10);
    B.access(2, 20);
    uint64_t ColdMisses = B.stats().Misses;
    for (int I = 0; I < 50; ++I) {
      B.access(1, 10);
      B.access(2, 20);
    }
    return B.stats().Misses - ColdMisses;
  };
  EXPECT_EQ(missesAfterWarmup("2x1"), 100u); // ping-pong every access
  EXPECT_EQ(missesAfterWarmup("2x2"), 0u);   // both resident
}

TEST(BTBTest, ResetClearsEntriesAndStats) {
  BTB B;
  B.access(5, 2);
  B.access(5, 2);
  B.reset();
  EXPECT_EQ(B.stats().Lookups, 0u);
  EXPECT_FALSE(B.access(5, 2)); // cold again after reset
}

TEST(BTBTest, StatsRatesAndMPKI) {
  BTBStats S;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.0);
  EXPECT_DOUBLE_EQ(S.mpki(0), 0.0);
  S.Lookups = 200;
  S.Misses = 50;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.25);
  EXPECT_DOUBLE_EQ(S.mpki(10000), 5.0);
}

} // namespace

//===- tests/sim/TagePredictorTest.cpp - TAGE-SC-L predictor tests --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/frontend/TAGE.h"

#include "sim/BranchPredictor.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(TagePredictorTest, RegistryIsTheSingleSourceOfTruth) {
  const std::vector<PredictorInfo> &Reg = predictorRegistry();
  ASSERT_EQ(Reg.size(), 5u);
  EXPECT_EQ(Reg.back().Kind, PredictorKind::TageScL);
  EXPECT_STREQ(Reg.back().Name, "tage-sc-l");

  // Names, parsing, enumeration, and the factory all agree with it.
  EXPECT_NE(predictorNamesList().find("tage-sc-l"), std::string::npos);
  EXPECT_EQ(allPredictorKinds().size(), Reg.size());
  for (const PredictorInfo &PI : Reg) {
    EXPECT_STREQ(predictorKindName(PI.Kind), PI.Name);
    PredictorKind K;
    ASSERT_TRUE(parsePredictorKind(PI.Name, K));
    EXPECT_EQ(K, PI.Kind);
  }
  std::unique_ptr<BranchPredictor> P = makePredictor(PredictorKind::TageScL);
  EXPECT_STREQ(P->name(), "tage-sc-l");
}

TEST(TagePredictorTest, HistoryLengthsFormAGeometricSeries) {
  std::vector<unsigned> L = tageHistoryLengths(4, 4, 64);
  ASSERT_EQ(L.size(), 4u);
  EXPECT_EQ(L.front(), 4u);
  EXPECT_EQ(L.back(), 64u);
  for (size_t I = 1; I < L.size(); ++I)
    EXPECT_LT(L[I - 1], L[I]);

  // Degenerate shapes stay well-formed: one table uses the longest
  // history; colliding rounds are forced strictly increasing.
  EXPECT_EQ(tageHistoryLengths(1, 4, 64), std::vector<unsigned>{64u});
  std::vector<unsigned> Tight = tageHistoryLengths(8, 2, 4);
  ASSERT_EQ(Tight.size(), 8u);
  for (size_t I = 1; I < Tight.size(); ++I)
    EXPECT_LT(Tight[I - 1], Tight[I]);
  EXPECT_TRUE(tageHistoryLengths(0, 4, 64).empty());
}

TEST(TagePredictorTest, WarmsUpQuicklyOnABiasedBranch) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::TageScL);
  for (int I = 0; I < 200; ++I)
    Pred->observe(5, true);
  EXPECT_EQ(Pred->stats().Lookups, 200u);
  EXPECT_LE(Pred->stats().Mispredicts, 4u);

  // Hysteresis survives one anomalous fall-through.
  Pred->observe(5, false);
  EXPECT_TRUE(Pred->predict(5));
}

TEST(TagePredictorTest, TaggedTablesLearnPatternsBeyondGshareHistory) {
  // A 20-long repeating pattern needs more than gshare's 8 history bits
  // to disambiguate; TAGE's longer geometric tables capture it. The side
  // predictors are disabled so the tagged tables alone get the credit.
  const unsigned Period = 20;
  auto misses = [&](std::unique_ptr<BranchPredictor> P) {
    for (unsigned I = 0; I < 4000; ++I)
      P->observe(7, (I % Period) < 3);
    return P->stats().Mispredicts;
  };
  PredictorConfig TC;
  TC.TageUseSC = false;
  TC.TageUseLoop = false;
  uint64_t Tage = misses(makePredictor(PredictorKind::TageScL, TC));
  uint64_t Gshare = misses(makePredictor(PredictorKind::Gshare));
  EXPECT_LT(Tage, Gshare / 2);
  EXPECT_LT(Tage, 400u); // < 10% after warm-up
}

TEST(TagePredictorTest, LoopPredictorLocksOntoAFixedTripCount) {
  // 100 taken iterations then one exit: the trip count exceeds even the
  // longest tagged history (64 bits), so only the loop predictor can
  // anticipate the exit.
  const unsigned Trip = 100;
  auto misses = [&](bool UseLoop) {
    PredictorConfig C;
    C.TageUseLoop = UseLoop;
    std::unique_ptr<BranchPredictor> P =
        makePredictor(PredictorKind::TageScL, C);
    for (unsigned Run = 0; Run < 60; ++Run)
      for (unsigned I = 0; I < Trip + 1; ++I)
        P->observe(9, I < Trip);
    return P->stats().Mispredicts;
  };
  uint64_t WithLoop = misses(true);
  uint64_t WithoutLoop = misses(false);
  // Without the loop predictor every exit is a surprise (~60 misses at
  // minimum); with it, only the confidence-building prefix misses.
  EXPECT_GE(WithoutLoop, 55u);
  EXPECT_LE(WithLoop, WithoutLoop / 3);
}

TEST(TagePredictorTest, AntiCorrelatedBranchesLearnIndependently) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::TageScL);
  for (int I = 0; I < 300; ++I) {
    Pred->observe(11, true);
    Pred->observe(23, false);
  }
  EXPECT_TRUE(Pred->predict(11));
  EXPECT_FALSE(Pred->predict(23));
  EXPECT_LE(Pred->stats().missRate(), 0.05);
}

TEST(TagePredictorTest, DeterministicAcrossInstances) {
  // Two independently constructed instances fed the same stream must make
  // identical predictions at every step -- the allocation policy is
  // deterministic by design (no random table choice).
  PredictorConfig C;
  std::unique_ptr<BranchPredictor> A = makePredictor(PredictorKind::TageScL, C);
  std::unique_ptr<BranchPredictor> B = makePredictor(PredictorKind::TageScL, C);
  uint64_t Lcg = 12345;
  for (int I = 0; I < 20000; ++I) {
    Lcg = Lcg * 6364136223846793005ull + 1442695040888963407ull;
    OpId Br = static_cast<OpId>(1 + (Lcg >> 33) % 37);
    bool Taken = ((Lcg >> 17) & 7) < 5 || Br % 3 == 0;
    ASSERT_EQ(A->observe(Br, Taken), B->observe(Br, Taken)) << "step " << I;
  }
  EXPECT_EQ(A->stats().Mispredicts, B->stats().Mispredicts);
}

TEST(TagePredictorTest, ResetClearsLearnedStateAndStats) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::TageScL);
  for (int I = 0; I < 200; ++I)
    Pred->observe(3, true);
  ASSERT_TRUE(Pred->predict(3));
  Pred->reset();
  EXPECT_FALSE(Pred->predict(3)); // back to the not-taken cold bias
  EXPECT_EQ(Pred->stats().Lookups, 0u);
  EXPECT_EQ(Pred->stats().Mispredicts, 0u);

  // A reset predictor retrains exactly like a fresh one.
  std::unique_ptr<BranchPredictor> Fresh =
      makePredictor(PredictorKind::TageScL);
  for (int I = 0; I < 500; ++I) {
    bool Taken = I % 5 != 0;
    ASSERT_EQ(Pred->observe(3, Taken), Fresh->observe(3, Taken));
  }
}

TEST(TagePredictorTest, ExtremeConfigurationsAreClamped) {
  // Degenerate sizing must neither crash nor divide by zero: one table,
  // zero-ish widths, and an oversized table count (clamped to 16).
  PredictorConfig C;
  C.TageTables = 100;
  C.TageTableBits = 0;
  C.TageTagBits = 0;
  C.TageMinHistory = 0;
  C.TageMaxHistory = 1;
  C.LoopTableBits = 0;
  std::unique_ptr<BranchPredictor> P = makePredictor(PredictorKind::TageScL, C);
  for (int I = 0; I < 500; ++I)
    P->observe(static_cast<OpId>(1 + I % 5), I % 2 == 0);
  EXPECT_EQ(P->stats().Lookups, 500u);
}

} // namespace

//===- tests/sim/SimPipelineTest.cpp - Pipeline simulation integration ----===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"
#include "pipeline/Reports.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

PipelineOptions simOptions() {
  PipelineOptions Opts;
  Opts.Simulate = true;
  Opts.Machines = {MachineDesc::narrow(), MachineDesc::wide()};
  return Opts;
}

TEST(SimPipelineTest, SimulateFillsEveryMachinePredictorPair) {
  KernelProgram P = buildStrcpyKernel(4, 1024);
  PipelineOptions Opts = simOptions();
  PipelineResult R = runPipeline(P, Opts);

  ASSERT_EQ(R.Sim.size(), Opts.Machines.size() * Opts.Predictors.size());
  for (const SimComparison &S : R.Sim) {
    EXPECT_TRUE(S.Baseline.ok()) << S.Baseline.Error;
    EXPECT_TRUE(S.Treated.ok()) << S.Treated.Error;
    EXPECT_GT(S.Baseline.TotalCycles, 0.0);
    EXPECT_GT(S.Treated.TotalCycles, 0.0);
    EXPECT_GT(S.speedup(), 0.0);
    // The simulator replays the same runs the interpreter measured.
    EXPECT_EQ(S.Baseline.Branches, R.DynBaseline.BranchesDispatched);
    EXPECT_EQ(S.Treated.Branches, R.DynTreated.BranchesDispatched);
    EXPECT_EQ(S.Baseline.OpsDispatched, R.DynBaseline.OpsDispatched);
    EXPECT_EQ(S.Treated.OpsDispatched, R.DynTreated.OpsDispatched);
  }
}

TEST(SimPipelineTest, SimOnLooksUpPairs) {
  KernelProgram P = buildWcKernel(4, 1024);
  PipelineOptions Opts = simOptions();
  Opts.Predictors = {PredictorKind::Static, PredictorKind::Gshare};
  PipelineResult R = runPipeline(P, Opts);

  const SimComparison *S = R.simOn("wide", "gshare");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->MachineName, "wide");
  EXPECT_EQ(S->PredictorName, "gshare");
  EXPECT_EQ(R.simOn("wide", "local"), nullptr);
  EXPECT_EQ(R.simOn("infinite", "gshare"), nullptr);
}

TEST(SimPipelineTest, SimulationOffLeavesSimEmpty) {
  KernelProgram P = buildStrcpyKernel(4, 512);
  PipelineResult R = runPipeline(P);
  EXPECT_TRUE(R.Sim.empty());
  EXPECT_EQ(R.simOn("wide", "gshare"), nullptr);
}

TEST(SimPipelineTest, ZeroPenaltyStaticSimMatchesTable2Estimate) {
  // With no misprediction penalty the dynamic simulation degenerates to
  // the ExitAware static estimate, so the "Table 2-dyn" speedup must
  // equal the Table 2 speedup on every machine.
  KernelProgram P = buildGrepKernel(4, 2048);
  PipelineOptions Opts = simOptions();
  Opts.Predictors = {PredictorKind::Static};
  Opts.MispredictPenalty = 0;
  PipelineResult R = runPipeline(P, Opts);

  for (const MachineComparison &M : R.Machines) {
    const SimComparison *S = R.simOn(M.MachineName, "static");
    ASSERT_NE(S, nullptr) << M.MachineName;
    EXPECT_DOUBLE_EQ(S->Baseline.TotalCycles, M.BaselineCycles);
    EXPECT_DOUBLE_EQ(S->Treated.TotalCycles, M.TreatedCycles);
  }
}

TEST(SimPipelineTest, ReportsRenderDynTables) {
  PipelineOptions Opts = simOptions();
  Opts.Predictors = {PredictorKind::Static, PredictorKind::Gshare};

  std::vector<SuiteRow> Rows;
  for (const char *Name : {"strcpy", "wc"}) {
    SuiteRow Row;
    Row.Name = Name;
    KernelProgram P = Name == std::string("strcpy")
                          ? buildStrcpyKernel(4, 512)
                          : buildWcKernel(4, 512);
    Row.Result = runPipeline(P, Opts);
    Rows.push_back(std::move(Row));
  }

  std::string Dyn = renderTable2Dyn(Rows);
  EXPECT_NE(Dyn.find("Table 2-dyn (static predictor):"), std::string::npos);
  EXPECT_NE(Dyn.find("Table 2-dyn (gshare predictor):"), std::string::npos);
  EXPECT_NE(Dyn.find("strcpy"), std::string::npos);
  EXPECT_NE(Dyn.find("Gmean-all"), std::string::npos);

  std::string MPKI = renderSimMPKI(Rows);
  EXPECT_NE(MPKI.find("static base>cpr"), std::string::npos);
  EXPECT_NE(MPKI.find("gshare base>cpr"), std::string::npos);
  EXPECT_NE(MPKI.find("wc"), std::string::npos);

  // Without simulation data both renderers degrade to empty output.
  std::vector<SuiteRow> Plain;
  SuiteRow Row;
  Row.Name = "strcpy";
  KernelProgram P = buildStrcpyKernel(4, 512);
  Row.Result = runPipeline(P);
  Plain.push_back(std::move(Row));
  EXPECT_EQ(renderTable2Dyn(Plain), "");
  EXPECT_EQ(renderSimMPKI(Plain), "");
}

} // namespace

//===- tests/sim/BranchPredictorTest.cpp - Predictor model tests ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/BranchPredictor.h"

#include <gtest/gtest.h>

using namespace cpr;

namespace {

TEST(BranchPredictorTest, KindNamesRoundTrip) {
  for (PredictorKind K : allPredictorKinds()) {
    PredictorKind Parsed;
    ASSERT_TRUE(parsePredictorKind(predictorKindName(K), Parsed));
    EXPECT_EQ(Parsed, K);
  }
  PredictorKind K;
  EXPECT_FALSE(parsePredictorKind("tage", K));
  EXPECT_FALSE(parsePredictorKind("", K));
}

TEST(BranchPredictorTest, StaticFollowsProfileDirections) {
  ProfileData P;
  P.addBranchReached(1, 100);
  P.addBranchTaken(1, 90); // biased taken
  P.addBranchReached(2, 100);
  P.addBranchTaken(2, 10); // biased fall-through

  PredictorConfig C;
  C.Profile = &P;
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Static, C);
  EXPECT_TRUE(Pred->predict(1));
  EXPECT_FALSE(Pred->predict(2));
  EXPECT_FALSE(Pred->predict(999)); // unknown: fall-through bias

  // Static prediction never learns: feeding the opposite outcome does not
  // flip the direction.
  for (int I = 0; I < 50; ++I)
    Pred->observe(1, false);
  EXPECT_TRUE(Pred->predict(1));
  EXPECT_EQ(Pred->stats().Mispredicts, 50u);
}

TEST(BranchPredictorTest, StaticWithoutProfilePredictsFallThrough) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Static);
  EXPECT_FALSE(Pred->predict(1));
  EXPECT_FALSE(Pred->predict(42));
}

TEST(BranchPredictorTest, BimodalLearnsABiasedBranch) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Bimodal);
  for (int I = 0; I < 100; ++I)
    Pred->observe(5, true);
  // Counters start weakly not taken (1): one warmup miss, then correct.
  EXPECT_EQ(Pred->stats().Lookups, 100u);
  EXPECT_LE(Pred->stats().Mispredicts, 1u);

  // Hysteresis: a single anomalous fall-through does not flip a saturated
  // counter.
  Pred->observe(5, false);
  EXPECT_TRUE(Pred->predict(5));
}

TEST(BranchPredictorTest, BimodalCannotLearnAlternation) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Bimodal);
  uint64_t Misses = 0;
  for (int I = 0; I < 200; ++I) {
    bool Taken = I % 2 == 0;
    if (Pred->observe(7, Taken) != Taken)
      ++Misses;
  }
  // The 2-bit counter oscillates between weakly-taken and weakly-not-taken
  // and gets every alternating outcome wrong.
  EXPECT_GE(Misses, 190u);
}

TEST(BranchPredictorTest, GshareLearnsAlternationThroughHistory) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Gshare);
  for (int I = 0; I < 200; ++I)
    Pred->observe(7, I % 2 == 0);
  // After the history warms up, the two history patterns select separate
  // counters and the alternation becomes fully predictable.
  EXPECT_LT(Pred->stats().Mispredicts, 20u);
}

TEST(BranchPredictorTest, LocalLearnsPeriodicPattern) {
  std::unique_ptr<BranchPredictor> Pred =
      makePredictor(PredictorKind::Local);
  const bool Pattern[] = {true, true, false, false};
  for (int I = 0; I < 400; ++I)
    Pred->observe(9, Pattern[I % 4]);
  // 6 history bits cover the 4-long period: only warmup misses remain.
  EXPECT_LT(Pred->stats().Mispredicts, 40u);
}

TEST(BranchPredictorTest, GshareTableAliasingCausesInterference) {
  // Ids 1 and 17 collide in a 4-entry table: (1 ^ 1>>2) & 3 == 1 and
  // (17 ^ 17>>2) & 3 == 1.
  ASSERT_EQ(predictorTableIndex(1, 2), predictorTableIndex(17, 2));
  ASSERT_NE(predictorTableIndex(1, 10), predictorTableIndex(17, 10));

  auto run = [](unsigned TableBits) {
    PredictorConfig C;
    C.TableBits = TableBits;
    C.HistoryBits = 0; // isolate the table-index collision
    std::unique_ptr<BranchPredictor> Pred =
        makePredictor(PredictorKind::Gshare, C);
    for (int I = 0; I < 200; ++I) {
      Pred->observe(1, true);   // branch 1: always taken
      Pred->observe(17, false); // branch 17: never taken
    }
    return Pred->stats().Mispredicts;
  };

  uint64_t Aliased = run(2);
  uint64_t Separated = run(10);
  // Sharing one counter between anti-correlated branches destroys it.
  EXPECT_LE(Separated, 4u);
  EXPECT_GE(Aliased, 200u);
}

TEST(BranchPredictorTest, ResetClearsLearnedStateAndStats) {
  for (PredictorKind K :
       {PredictorKind::Bimodal, PredictorKind::Gshare, PredictorKind::Local}) {
    std::unique_ptr<BranchPredictor> Pred = makePredictor(K);
    for (int I = 0; I < 64; ++I)
      Pred->observe(3, true);
    ASSERT_TRUE(Pred->predict(3)) << Pred->name();
    Pred->reset();
    EXPECT_FALSE(Pred->predict(3)) << Pred->name();
    EXPECT_EQ(Pred->stats().Lookups, 0u) << Pred->name();
    EXPECT_EQ(Pred->stats().Mispredicts, 0u) << Pred->name();
  }
}

TEST(BranchPredictorTest, StatsRatesAndMPKI) {
  PredictorStats S;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.0);
  EXPECT_DOUBLE_EQ(S.mpki(0), 0.0);
  S.Lookups = 200;
  S.Mispredicts = 50;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.25);
  EXPECT_DOUBLE_EQ(S.mpki(10000), 5.0);
}

} // namespace

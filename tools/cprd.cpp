//===- tools/cprd.cpp - The cprd compile-service daemon -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// A persistent compile service: accepts cprd-v1 frames (newline-delimited
// JSON; see docs/SERVICE.md) over a Unix-domain socket (--socket=) or the
// stdin/stdout pipe (--stdio), compiles each request through the
// fail-safe pipeline on a shared thread pool, and memoizes per-region
// transform results in a content-addressed cache shared by all requests.
//
//   cprd --socket=/tmp/cprd.sock --threads=8 --cache-mb=64
//   cprc input.cpr --server=/tmp/cprd.sock
//
// SIGTERM/SIGINT initiate graceful shutdown: the daemon stops accepting
// work, drains every queued compile (each writes its response), then
// exits. In-flight requests are never dropped.
//
// Exit codes (support/Diagnostic.h): 0 clean shutdown, 1 serve-loop
// failure (bind/listen), 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/Diagnostic.h"
#include "support/OptionParser.h"

#include <csignal>
#include <cstdio>

using namespace cpr;
using namespace cpr::serve;

namespace {

struct Config {
  std::string SocketPath;
  bool Stdio = false;
  unsigned Threads = 0;
  unsigned MaxQueue = 256;
  unsigned CacheMB = 64;
  unsigned DefaultInterpMaxSteps = 2000000;
  unsigned MaxInterpSteps = 20000000;
  unsigned DefaultTransformSteps = 0;
  unsigned MaxTransformSteps = 0;
  unsigned MaxIRKB = 4096;
  unsigned MaxPipeline = 0;
  unsigned IdleTimeoutMs = 0;
  unsigned WriteTimeoutMs = 0;
  bool Help = false;
};

OptionTable buildOptions(Config &C) {
  OptionTable T;
  T.addString("--socket", "<path>",
              "serve connections on this Unix-domain socket", C.SocketPath);
  T.addFlag("--stdio",
            "serve frames from stdin, responses to stdout (one client)",
            C.Stdio);
  T.addUnsigned("--threads", "<n>",
                "compile worker threads (0 = one per hardware thread)",
                C.Threads);
  T.addUnsigned("--max-queue", "<n>",
                "requests queued-or-running before refusing with status "
                "\"busy\" (0 = unbounded)",
                C.MaxQueue);
  T.addUnsigned("--cache-mb", "<n>",
                "region-cache memory budget in MiB (0 = unlimited)",
                C.CacheMB);
  T.addUnsigned("--interp-max-steps", "<n>",
                "interpreter step cap for requests that set none",
                C.DefaultInterpMaxSteps);
  T.addUnsigned("--max-interp-steps", "<n>",
                "admission ceiling on per-request interpreter step caps "
                "(0 = no ceiling)",
                C.MaxInterpSteps);
  T.addUnsigned("--transform-steps", "<n>",
                "transform step budget for requests that set none "
                "(0 = unlimited)",
                C.DefaultTransformSteps);
  T.addUnsigned("--max-transform-steps", "<n>",
                "admission ceiling on per-request transform budgets "
                "(0 = no ceiling)",
                C.MaxTransformSteps);
  T.addUnsigned("--max-ir-kb", "<n>",
                "admission cap on the request IR payload in KiB "
                "(0 = no cap)",
                C.MaxIRKB);
  T.addUnsigned("--max-pipeline", "<n>",
                "per-connection cap on pipelined in-flight requests "
                "(0 = unbounded)",
                C.MaxPipeline);
  T.addUnsigned("--idle-timeout-ms", "<n>",
                "drop a connection when no complete frame arrives for "
                "this long (0 = never)",
                C.IdleTimeoutMs);
  T.addUnsigned("--write-timeout-ms", "<n>",
                "drop a connection whose reader blocks a response write "
                "this long (0 = never)",
                C.WriteTimeoutMs);
  T.addFlag("--help", "print this help", C.Help);
  T.addFlag("-h", "print this help", C.Help);
  return T;
}

// The signal handler needs the server; requestStop() is an atomic store,
// so this is async-signal-safe.
Server *ActiveServer = nullptr;

void onShutdownSignal(int) {
  if (ActiveServer)
    ActiveServer->requestStop();
}

} // namespace

int main(int argc, char **argv) {
  Config C;
  OptionTable Options = buildOptions(C);
  const std::string Usage = "usage: cprd (--socket=<path> | --stdio) "
                            "[options]";

  std::string ParseError;
  std::vector<std::string> Positional;
  if (!Options.parse(argc, argv, ParseError, &Positional) ||
      !Positional.empty()) {
    if (!ParseError.empty())
      std::fprintf(stderr, "cprd: %s\n", ParseError.c_str());
    std::fprintf(stderr, "%s", Options.help(Usage).c_str());
    return exit_codes::UsageError;
  }
  if (C.Help) {
    std::printf("%s", Options.help(Usage).c_str());
    return exit_codes::Success;
  }
  if (C.Stdio != C.SocketPath.empty()) {
    // Exactly one transport: --stdio or --socket=, not both, not neither.
    std::fprintf(stderr, "cprd: pick one transport\n%s",
                 Options.help(Usage).c_str());
    return exit_codes::UsageError;
  }

  ServerOptions SO;
  SO.SocketPath = C.SocketPath;
  SO.Threads = C.Threads;
  SO.MaxQueue = C.MaxQueue;
  SO.Service.CacheBytes = static_cast<size_t>(C.CacheMB) << 20;
  SO.Service.DefaultInterpMaxSteps = C.DefaultInterpMaxSteps;
  SO.Service.MaxInterpSteps = C.MaxInterpSteps;
  SO.Service.DefaultTransformBudget.MaxSteps = C.DefaultTransformSteps;
  SO.Service.MaxTransformSteps = C.MaxTransformSteps;
  SO.Service.MaxIRBytes = static_cast<size_t>(C.MaxIRKB) << 10;
  SO.MaxPipeline = C.MaxPipeline;
  SO.IdleTimeoutMs = C.IdleTimeoutMs;
  SO.WriteTimeoutMs = C.WriteTimeoutMs;

  Server Daemon(SO);
  ActiveServer = &Daemon;
  std::signal(SIGTERM, onShutdownSignal);
  std::signal(SIGINT, onShutdownSignal);
  // A client vanishing mid-response must not kill the daemon; the write
  // error is handled at the connection.
  std::signal(SIGPIPE, SIG_IGN);

  int RC;
  if (C.Stdio) {
    RC = Daemon.runStdio();
  } else {
    std::fprintf(stderr, "cprd: serving on %s\n", C.SocketPath.c_str());
    RC = Daemon.runSocket();
  }
  ActiveServer = nullptr;
  return RC;
}

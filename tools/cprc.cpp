//===- tools/cprc.cpp - Command-line control CPR driver -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// A command-line driver over the library: reads a program in the textual
// IR, runs the requested phases, and prints the result. Initial register
// values and memory cells come from flags, so small experiments need no
// C++ at all.
//
//   cprc input.cpr [options]     (see --help; the option list below is
//                                 generated from one declarative table)
//
// The measurement paths (--estimate, --simulate, --check-equivalence,
// --trace-out) are built on the staged pipeline session API
// (pipeline/PipelineRun.h): one PipelineRun owns the baseline program,
// profiles it once, and shares that artifact across every machine and
// predictor estimate; --threads fans the independent estimates out on a
// work-queue thread pool, and --stats-json dumps the per-stage counters
// and wall times the session records. cprc is the exemplar caller of the
// staged API -- see docs/PIPELINE.md.
//
// --fail-safe switches the compile from strict (first failure is fatal)
// to the recoverable model of docs/ROBUSTNESS.md: failing regions roll
// back, budgets degrade to the baseline, and diagnostics print at exit.
//
// Exit codes (support/Diagnostic.h): 0 success, 1 failure (I/O,
// recovered-but-degraded fail-safe compile), 2 usage error, 3 input IR
// parse error, 4 input IR verification error.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProfileIO.h"
#include "cpr/ControlCPR.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "cpr/PredicateSpeculation.h"
#include "lint/Lint.h"
#include "pipeline/PipelineRun.h"
#include "fuzz/Corpus.h"
#include "regions/FRPConversion.h"
#include "regions/DeadCodeElim.h"
#include "regions/IfConversion.h"
#include "regions/LoopUnroller.h"
#include "regions/Simplify.h"
#include "sched/ListScheduler.h"
#include "serve/Client.h"
#include "sim/TraceSimulator.h"
#include "support/Budget.h"
#include "support/Diagnostic.h"
#include "support/OptionParser.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace cpr;

namespace {

/// Everything the option table fills in.
struct Config {
  std::string InputPath;
  std::string Server;
  std::string Phase = "all";
  std::string ScheduleFor;
  std::string ProfileOut, ProfileIn, TraceOut, StatsJSON;
  unsigned UnrollFactor = 1;
  unsigned Threads = 1;
  bool Simplify = false, IfConvert = false;
  bool Run = false, Estimate = false, Simulate = false;
  bool CheckEquiv = false;
  bool FailSafe = false, RegionEquiv = false;
  bool Lint = false, Werror = false;
  unsigned InterpMaxSteps = 0;
  unsigned TransformSteps = 0, TransformMs = 0;
  unsigned Retries = 3;
  unsigned DeadlineMs = 0;
  bool Help = false;
  int MispredictPenalty = -1;
  std::vector<PredictorKind> Predictors;
  /// First unrecognized --predictor= name; reported after parsing so the
  /// message can list the registered predictors (a recoverable usage
  /// diagnostic, not a generic option error).
  std::string BadPredictor;
  FrontendOptions Frontend;
  PrintOptions PO;
  CPROptions CPR;
  std::vector<RegBinding> InitRegs;
  Memory InitMem;
};

bool parseReg(const std::string &Spec, RegBinding &Out) {
  size_t Eq = Spec.find('=');
  if (Eq == std::string::npos || Eq < 2)
    return false;
  std::string Name = Spec.substr(0, Eq);
  RegClass RC;
  switch (Name[0]) {
  case 'r':
    RC = RegClass::GPR;
    break;
  case 'f':
    RC = RegClass::FPR;
    break;
  case 'p':
    RC = RegClass::PR;
    break;
  default:
    return false;
  }
  Out.R = Reg(RC, static_cast<uint32_t>(std::strtoul(Name.c_str() + 1,
                                                     nullptr, 10)));
  Out.Value = std::strtoll(Spec.c_str() + Eq + 1, nullptr, 10);
  return true;
}

/// The declarative option table; --help output is generated from it.
OptionTable buildOptions(Config &C) {
  OptionTable T;
  T.addString("--phase", "<frp|speculate|cpr|all|none>",
              "stop after the named phase (default all)", C.Phase);
  T.addFlag("--run", "interpret the (final) program", C.Run);
  T.add({"--reg", OptArg::Separate, "rN=V",
         "initial register value, repeatable; runs need enough inputs to "
         "halt",
         [&C](const std::string &V) {
           RegBinding B;
           if (!parseReg(V, B))
             return false;
           C.InitRegs.push_back(B);
           return true;
         }});
  T.add({"--mem", OptArg::Separate, "A=V",
         "initial memory cell, repeatable",
         [&C](const std::string &V) {
           size_t Eq = V.find('=');
           if (Eq == std::string::npos)
             return false;
           C.InitMem.store(std::strtoll(V.c_str(), nullptr, 10),
                           std::strtoll(V.c_str() + Eq + 1, nullptr, 10));
           return true;
         }});
  T.addString("--schedule", "<machine>",
              "print the schedule for one machine", C.ScheduleFor);
  T.addFlag("--estimate",
            "per-machine cycle estimates (needs a profileable program)",
            C.Estimate);
  T.addDouble("--exit-weight", "<f>", "CPR exit-weight threshold",
              C.CPR.ExitWeightThreshold);
  T.addDouble("--predict-taken", "<f>", "CPR predict-taken threshold",
              C.CPR.PredictTakenThreshold);
  T.addUnsigned("--max-branches", "<n>", "CPR branches-per-block cap",
                C.CPR.MaxBranchesPerBlock);
  T.addFlag("--no-speculation", "disable predicate speculation",
            C.CPR.EnablePredicateSpeculation, /*Value=*/false);
  T.addFlag("--no-taken-variation", "disable the taken-variation schema",
            C.CPR.EnableTakenVariation, /*Value=*/false);
  T.addFlag("--simplify", "run simplify + DCE before the phases",
            C.Simplify);
  T.addFlag("--if-convert", "if-convert before the phases", C.IfConvert);
  T.addUnsigned("--unroll", "<n>", "unroll self-loop blocks by this factor",
                C.UnrollFactor);
  T.addFlag("--show-ids", "print stable operation ids", C.PO.ShowOpIds);
  T.addString("--profile-out", "<file>", "save the baseline profile",
              C.ProfileOut);
  T.addString("--profile-in", "<file>", "load a profile instead of running",
              C.ProfileIn);
  T.addFlag("--check-equivalence",
            "run the baseline/transformed equivalence oracle", C.CheckEquiv);
  T.addFlag("--fail-safe",
            "recoverable compile: roll failing regions back instead of "
            "aborting; diagnostics print at exit",
            C.FailSafe);
  T.addFlag("--region-equivalence",
            "fail-safe: re-check equivalence after each region and roll "
            "back on mismatch (expensive)",
            C.RegionEquiv);
  T.addFlag("--lint",
            "run the static semantic checks before and after the phases; "
            "with --fail-safe, regions whose transform introduces a "
            "finding roll back",
            C.Lint);
  T.addFlag("--werror",
            "exit nonzero when any warning-severity diagnostic was "
            "reported (budget exhaustion, lint warnings, ...)",
            C.Werror);
  T.addUnsigned("--interp-max-steps", "<n>",
                "step budget for profiling/oracle runs (0 = unlimited)",
                C.InterpMaxSteps);
  T.addUnsigned("--transform-steps", "<n>",
                "transform budget: max CPR block transforms "
                "(0 = unlimited)",
                C.TransformSteps);
  T.addUnsigned("--transform-ms", "<n>",
                "transform budget: wall-clock cap in ms (0 = unlimited)",
                C.TransformMs);
  T.addFlag("--simulate",
            "trace-driven dynamic estimates for baseline and transformed "
            "code",
            C.Simulate);
  std::string PredMeta = "<";
  for (const PredictorInfo &PI : predictorRegistry())
    PredMeta += std::string(PI.Name) + "|";
  PredMeta += "all>";
  T.add({"--predictor", OptArg::Joined, PredMeta,
         "predictor(s) to simulate, repeatable (default all)",
         [&C](const std::string &V) {
           if (V == "all") {
             C.Predictors = allPredictorKinds();
             return true;
           }
           PredictorKind K;
           if (!parsePredictorKind(V, K)) {
             // Defer: report one rich diagnostic naming the registered
             // predictors instead of the table's generic option error.
             if (C.BadPredictor.empty())
               C.BadPredictor = V;
             return true;
           }
           C.Predictors.push_back(K);
           return true;
         }});
  T.add({"--btb", OptArg::Joined, "<SETSxWAYS|off>",
         "model a set-associative BTB in --simulate (e.g. 64x4); taken "
         "branches whose target misses pay a redirect penalty",
         [&C](const std::string &V) {
           if (V == "off") {
             C.Frontend.UseBTB = false;
             return true;
           }
           BTBConfig B;
           if (!parseBTBConfig(V, B))
             return false;
           C.Frontend.UseBTB = true;
           C.Frontend.BTB = B;
           return true;
         }});
  T.add({"--btb-miss-penalty", OptArg::Joined, "<n>",
         "redirect cycles for a BTB miss (default: per machine)",
         [&C](const std::string &V) {
           char *End = nullptr;
           long N = std::strtol(V.c_str(), &End, 10);
           if (V.empty() || *End != '\0' || N < 0)
             return false;
           C.Frontend.BTBMissPenalty = static_cast<int>(N);
           return true;
         }});
  T.add({"--fetch-width", OptArg::Joined, "<n>",
         "decoupled-frontend fetch model in --simulate: ops fetched per "
         "cycle, taken branches end the packet (0 = machine fetch width)",
         [&C](const std::string &V) {
           char *End = nullptr;
           long N = std::strtol(V.c_str(), &End, 10);
           if (V.empty() || *End != '\0' || N < 0)
             return false;
           C.Frontend.Decoupled = true;
           C.Frontend.FetchWidth = static_cast<int>(N);
           return true;
         }});
  T.add({"--mispredict-penalty", OptArg::Joined, "<n>",
         "penalty cycles (default: per machine)",
         [&C](const std::string &V) {
           char *End = nullptr;
           long N = std::strtol(V.c_str(), &End, 10);
           if (V.empty() || *End != '\0' || N < 0)
             return false;
           C.MispredictPenalty = static_cast<int>(N);
           return true;
         }});
  T.addString("--trace-out", "<file>", "save the baseline branch trace",
              C.TraceOut);
  T.addUnsigned("--threads", "<n>",
                "worker threads for estimates/simulations (0 = all cores)",
                C.Threads);
  T.addString("--stats-json", "<file>",
              "write per-stage counters and wall times as JSON", C.StatsJSON);
  T.addString("--server", "<socket>",
              "compile on the cprd daemon at this socket instead of "
              "in-process (docs/SERVICE.md); CPR/budget flags travel "
              "with the request",
              C.Server);
  T.addUnsigned("--retries", "<n>",
                "with --server: retries on \"busy\" and transient IO "
                "failures (exponential backoff, default 3)",
                C.Retries);
  T.addUnsigned("--deadline-ms", "<n>",
                "with --server: whole-request deadline; bounds both the "
                "client's retry loop and the daemon's compile "
                "(0 = none)",
                C.DeadlineMs);
  T.addFlag("--help", "print this help", C.Help);
  T.addFlag("-h", "print this help", C.Help);
  return T;
}

/// --server=: ship the compile to a cprd daemon and render its response
/// the way a local compile would have. The file is normalized through the
/// fuzz-program serializer first so --reg/--mem flags merge with any
/// `; reg`/`; mem` directives the file already carries, and so the frame
/// is deterministic (docs/SERVICE.md: equal frames hit the region cache).
int runServerMode(const Config &C, const std::string &Text) {
  FuzzParseResult FP = parseFuzzProgram(Text);
  if (!FP) {
    std::fprintf(stderr, "%s: error: %s\n", C.InputPath.c_str(),
                 FP.Error.c_str());
    return exit_codes::ParseError;
  }
  for (const RegBinding &B : C.InitRegs)
    FP.Program.InitRegs.push_back(B);
  for (const auto &Cell : C.InitMem.cells())
    FP.Program.InitMem.store(Cell.first, Cell.second);

  serve::CompileRequest Req;
  Req.Id = "cprc";
  Req.IR = serializeFuzzProgram(FP.Program);
  Req.CPR = C.CPR;
  Req.UnrollFactor = C.UnrollFactor;
  Req.Lint = C.Lint;
  Req.RegionEquivalence = C.RegionEquiv;
  Req.InterpMaxSteps = C.InterpMaxSteps;
  Req.TransformBudget.MaxSteps = C.TransformSteps;
  Req.TransformBudget.MaxWallMs = C.TransformMs;
  // The daemon gets the full deadline, not the remainder after retries:
  // the frame must stay byte-identical across attempts so every retry
  // lands on the same cache entries.
  Req.DeadlineMs = C.DeadlineMs;

  serve::RetryPolicy Policy;
  Policy.MaxRetries = C.Retries;
  Policy.DeadlineMs = C.DeadlineMs;
  Expected<serve::CompileResponse> Res =
      serve::Client::callWithRetry(C.Server, Req, Policy);
  if (!Res) {
    std::fprintf(stderr, "cprc: error: %s\n",
                 Res.diagnostic().str().c_str());
    return exit_codes::Failure;
  }
  if (Res->Status == "busy") {
    std::fprintf(stderr,
                 "cprc: error: daemon still busy after %u retries\n",
                 C.Retries);
    return exit_codes::Failure;
  }

  unsigned Errors = 0, Warnings = 0;
  for (const serve::WireDiagnostic &D : Res->Diagnostics) {
    std::fprintf(stderr, "cprc: %s: %s [%s] (%s)\n", D.Severity.c_str(),
                 D.Message.c_str(), D.Code.c_str(), D.Site.c_str());
    if (D.Severity == "error" || D.Severity == "fatal")
      ++Errors;
    else if (D.Severity == "warning")
      ++Warnings;
  }

  if (!Res->ok()) {
    std::fprintf(stderr, "cprc: error: daemon answered status \"%s\"\n",
                 Res->Status.c_str());
    // Map the first error code onto the local exit-code convention so
    // scripts see the same exits either way.
    for (const serve::WireDiagnostic &D : Res->Diagnostics) {
      if (D.Code == "parse-error")
        return exit_codes::ParseError;
      if (D.Code == "verify-failed")
        return exit_codes::VerifyError;
    }
    return exit_codes::Failure;
  }

  std::fprintf(stderr,
               "cpr: %u region(s), %u CPR block(s) formed, %u "
               "transformed; cache: %llu hit(s), %llu miss(es)\n",
               Res->CPR.RegionsProcessed, Res->CPR.CPRBlocksFormed,
               Res->CPR.CPRBlocksTransformed,
               static_cast<unsigned long long>(Res->CacheHits),
               static_cast<unsigned long long>(Res->CacheMisses));
  std::printf("%s", Res->IR.c_str());
  if (Errors > 0)
    return exit_codes::Failure;
  if (C.Werror && Warnings > 0)
    return exit_codes::Failure;
  return exit_codes::Success;
}

const MachineDesc *findMachine(const std::vector<MachineDesc> &Machines,
                               const std::string &Name) {
  for (const MachineDesc &M : Machines)
    if (M.getName() == Name)
      return &M;
  return nullptr;
}

} // namespace

int main(int argc, char **argv) {
  Config C;
  OptionTable Options = buildOptions(C);
  const std::string Usage = "usage: cprc <input.cpr> [options]";

  std::string ParseError;
  std::vector<std::string> Positional;
  if (!Options.parse(argc, argv, ParseError, &Positional)) {
    std::fprintf(stderr, "cprc: %s\n%s", ParseError.c_str(),
                 Options.help(Usage).c_str());
    return exit_codes::UsageError;
  }
  if (C.Help) {
    std::printf("%s", Options.help(Usage).c_str());
    return exit_codes::Success;
  }
  if (!C.BadPredictor.empty()) {
    Diagnostic D{DiagSeverity::Error, DiagCode::UsageError,
                 "unknown predictor '" + C.BadPredictor +
                     "'; registered predictors: " + predictorNamesList() +
                     " (or 'all')",
                 "cprc.options", 0};
    std::fprintf(stderr, "cprc: %s\n", D.str().c_str());
    return exit_codes::UsageError;
  }
  if (Positional.size() != 1) {
    std::fprintf(stderr, "%s", Options.help(Usage).c_str());
    return exit_codes::UsageError;
  }
  C.InputPath = Positional[0];

  std::ifstream In(C.InputPath);
  if (!In) {
    std::fprintf(stderr, "cprc: error: cannot open '%s'\n",
                 C.InputPath.c_str());
    return exit_codes::Failure;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  if (!C.Server.empty())
    return runServerMode(C, Buf.str());

  ParseResult PR = parseFunction(Buf.str());
  if (!PR) {
    std::fprintf(stderr, "%s:%u: error: %s\n", C.InputPath.c_str(), PR.Line,
                 PR.Error.c_str());
    return exit_codes::ParseError;
  }
  std::unique_ptr<Function> F = std::move(PR.Func);
  std::vector<std::string> Errors = verifyFunction(*F);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: error: verifier: %s\n", C.InputPath.c_str(),
                   E.c_str());
    return exit_codes::VerifyError;
  }

  // Optional preparation passes (applied to the shared baseline, as the
  // paper's IMPACT preprocessing was).
  if (C.IfConvert) {
    IfConversionStats IS = ifConvert(*F);
    verifyOrDie(*F, "after if-conversion");
    std::fprintf(stderr, "if-convert: %u branch(es) folded, %u ops "
                 "predicated\n",
                 IS.BranchesConverted, IS.OpsPredicated);
  }
  if (C.UnrollFactor >= 2) {
    unsigned Unrolled = 0;
    for (size_t I = 0; I < F->numBlocks(); ++I)
      if (unrollLoop(*F, F->block(I), C.UnrollFactor).Unrolled)
        ++Unrolled;
    verifyOrDie(*F, "after unrolling");
    std::fprintf(stderr, "unroll: %u loop(s) unrolled x%u\n", Unrolled,
                 C.UnrollFactor);
  }
  if (C.Simplify || C.UnrollFactor >= 2) {
    SimplifyStats SS = simplifyFunction(*F);
    eliminateDeadCode(*F);
    verifyOrDie(*F, "after simplify");
    std::fprintf(stderr,
                 "simplify: %u folded, %u copies propagated, %u CSE\n",
                 SS.ConstantsFolded, SS.CopiesPropagated,
                 SS.ExpressionsReused);
  }

  // One staged session over the prepared baseline. Phase transformation
  // happens outside the session (cprc's --phase selection is finer than
  // the pipeline's transform stage) and is injected via setTreated; the
  // session then reuses one baseline profile/trace across equivalence,
  // every machine estimate, and every predictor simulation.
  const bool NeedTrace = C.Simulate || !C.TraceOut.empty();
  StatsRegistry Stats;
  StatsRegistry *StatsPtr = C.StatsJSON.empty() ? nullptr : &Stats;
  DiagnosticEngine Diags(StatsPtr, F->getName() + "/");
  PipelineOptions SessionOpts;
  SessionOpts.CPR = C.CPR;
  SessionOpts.Simulate = NeedTrace;
  SessionOpts.MispredictPenalty = C.MispredictPenalty;
  SessionOpts.Frontend = C.Frontend;
  SessionOpts.CheckEquivalence = false; // driven explicitly below
  SessionOpts.FailSafe = C.FailSafe;
  SessionOpts.RegionEquivalence = C.RegionEquiv;
  SessionOpts.InterpMaxSteps = C.InterpMaxSteps;
  SessionOpts.TransformBudget.MaxSteps = C.TransformSteps;
  SessionOpts.TransformBudget.MaxWallMs = C.TransformMs;
  SessionOpts.Diags = &Diags;

  KernelProgram Program;
  Program.Func = F->clone();
  Program.InitRegs = C.InitRegs;
  Program.InitMem = C.InitMem;
  PipelineRun Session(std::move(Program), SessionOpts, StatsPtr,
                      F->getName() + "/");

  // A profile is required for the ICBM phase; load one or obtain it from
  // the session's baseline profiling run. A loaded profile is injected
  // into the session only when no branch trace is needed -- traces only
  // exist for profiling runs the session performs itself.
  ProfileData LoadedProfile;
  bool HaveLoaded = false;
  if (!C.ProfileIn.empty()) {
    std::ifstream PIn(C.ProfileIn);
    if (!PIn) {
      std::fprintf(stderr, "cprc: error: cannot open profile '%s'\n",
                   C.ProfileIn.c_str());
      return exit_codes::Failure;
    }
    std::stringstream PBuf;
    PBuf << PIn.rdbuf();
    ProfileParseResult PP = parseProfile(PBuf.str());
    if (!PP) {
      std::fprintf(stderr, "%s: error: %s\n", C.ProfileIn.c_str(),
                   PP.Error.c_str());
      return exit_codes::ParseError;
    }
    LoadedProfile = std::move(PP.Profile);
    HaveLoaded = true;
    if (!NeedTrace)
      Session.setBaselineProfile(LoadedProfile);
  }

  const bool NeedProfile = C.Phase == "cpr" || C.Phase == "all" ||
                           C.Estimate || !C.ProfileOut.empty();
  const ProfileData *PhaseProfile = nullptr;
  if (HaveLoaded)
    PhaseProfile = &LoadedProfile;
  else if (NeedProfile)
    PhaseProfile = &Session.baselineProfile();

  if (!C.ProfileOut.empty()) {
    std::ofstream POut(C.ProfileOut);
    if (!POut) {
      std::fprintf(stderr, "cprc: error: cannot write profile '%s'\n",
                   C.ProfileOut.c_str());
      return exit_codes::Failure;
    }
    POut << serializeProfile(*PhaseProfile, *F);
  }

  // Static semantic checks (docs/LINT.md), differential around the
  // phases: pre-phase findings belong to the input and only downgrade
  // the post-phase policy; new post-phase findings are the transform's.
  LintDriver Linter = LintDriver::withBuiltinPasses();
  bool BaselineLintClean = true;
  if (C.Lint) {
    LintResult LR = Linter.run(*F, nullptr, &C.InitRegs);
    reportLintFindings(LR, Diags);
    BaselineLintClean = LR.errorCount() == 0;
    std::fprintf(stderr, "lint: input: %zu finding(s)\n",
                 LR.Findings.size());
  }

  // Phases.
  if (C.Phase == "frp" || C.Phase == "speculate") {
    for (size_t I = 0; I < F->numBlocks(); ++I)
      if (!F->block(I).isCompensation())
        convertToFRP(*F, F->block(I));
    if (C.Phase == "speculate")
      for (size_t I = 0; I < F->numBlocks(); ++I)
        if (!F->block(I).isCompensation())
          speculatePredicates(*F, F->block(I));
  } else if (C.Phase == "cpr" || C.Phase == "all") {
    // Strict by default (legacy fatal-on-failure); --fail-safe swaps in
    // the transactional context: rollback on faults, optional per-region
    // equivalence re-check against the prepared baseline, and budgets.
    CPRContext Ctx;
    Ctx.FailSafe = C.FailSafe;
    Ctx.Diags = &Diags;
    Budget TransformLimit;
    TransformLimit.MaxSteps = C.TransformSteps;
    TransformLimit.MaxWallMs = C.TransformMs;
    BudgetTracker TransformBudget(TransformLimit);
    if (!TransformLimit.unlimited())
      Ctx.Budget = &TransformBudget;
    if (C.FailSafe && C.Lint && BaselineLintClean)
      Ctx.RegionLint = [&Linter, &C](const Function &Candidate) -> Status {
        return lintStatus(Linter.run(Candidate, nullptr, &C.InitRegs));
      };
    std::unique_ptr<Function> OracleBaseline;
    if (C.FailSafe && C.RegionEquiv) {
      OracleBaseline = F->clone();
      Ctx.RegionOracle = [&](const Function &Candidate) -> Status {
        EquivResult E = checkEquivalence(*OracleBaseline, Candidate,
                                         C.InitMem, C.InitRegs);
        if (!E.Equivalent)
          return Status::error(DiagCode::OracleMismatch,
                               "region equivalence re-check failed [" +
                                   std::string(divergenceName(E.Kind)) +
                                   "]: " + E.Detail,
                               "interp.oracle");
        return Status::success();
      };
    }
    CPRResult CR = runControlCPR(*F, *PhaseProfile, C.CPR, Ctx);
    std::fprintf(stderr,
                 "cpr: %u region(s), %u CPR block(s) formed, %u "
                 "transformed (%u taken variation), %u ops moved "
                 "off-trace, %u split\n",
                 CR.RegionsProcessed, CR.CPRBlocksFormed,
                 CR.CPRBlocksTransformed, CR.TakenVariants,
                 CR.OpsMovedOffTrace, CR.OpsSplit);
    if (CR.BlocksRolledBack > 0 || CR.RegionsSkippedBudget > 0)
      std::fprintf(stderr,
                   "cpr: fail-safe: %u block(s) rolled back in %u "
                   "region(s), %u region(s) skipped on budget\n",
                   CR.BlocksRolledBack, CR.RegionsRolledBack,
                   CR.RegionsSkippedBudget);
    if (StatsPtr) {
      // The phase transform runs outside the session (it is injected via
      // setTreated below), so mirror its outcome counters into the stats
      // document by hand -- same keys the pipeline's transform stage uses.
      const std::string P = F->getName() + "/";
      StatsPtr->addCount(P + "cpr/regions", CR.RegionsProcessed);
      StatsPtr->addCount(P + "cpr/blocks_formed", CR.CPRBlocksFormed);
      StatsPtr->addCount(P + "cpr/blocks_transformed",
                         CR.CPRBlocksTransformed);
      StatsPtr->addCount(P + "cpr/branches_merged", CR.BranchesCovered);
      StatsPtr->addCount(P + "cpr/ops_moved_off_trace", CR.OpsMovedOffTrace);
      StatsPtr->addCount(P + "cpr/ops_split", CR.OpsSplit);
      StatsPtr->addCount(P + "cpr/blocks_rolled_back", CR.BlocksRolledBack);
      StatsPtr->addCount(P + "cpr/regions_rolled_back",
                         CR.RegionsRolledBack);
      StatsPtr->addCount(P + "cpr/regions_skipped_budget",
                         CR.RegionsSkippedBudget);
      StatsPtr->addCount(P + "budget/transform_exhausted",
                         CR.BudgetExhausted ? 1 : 0);
    }
  } else if (C.Phase != "none") {
    std::fprintf(stderr, "unknown phase '%s'\n", C.Phase.c_str());
    return exit_codes::UsageError;
  }
  verifyOrDie(*F, "cprc output");

  if (C.Lint) {
    LintResult LR = Linter.run(*F, nullptr, &C.InitRegs);
    // Findings the input already had are not re-reported as new errors;
    // any error here on a lint-clean input is a transform regression.
    if (BaselineLintClean)
      reportLintFindings(LR, Diags);
    std::fprintf(stderr, "lint: output: %zu finding(s)\n",
                 LR.Findings.size());
  }

  std::printf("%s", printFunction(*F, C.PO).c_str());

  const bool NeedTreated = C.Estimate || C.Simulate || C.CheckEquiv;
  if (NeedTreated)
    Session.setTreated(F->clone());

  if (C.Run) {
    Memory Mem = C.InitMem;
    RunResult R = interpret(*F, Mem, C.InitRegs);
    std::printf("\n; run: %s after %llu steps",
                R.halted() ? "halted" : R.ErrorMsg.c_str(),
                static_cast<unsigned long long>(R.Steps));
    if (!R.Observed.empty()) {
      std::printf("; observables:");
      for (size_t I = 0; I < R.Observed.size(); ++I)
        std::printf(" %s=%lld", F->observableRegs()[I].str().c_str(),
                    static_cast<long long>(R.Observed[I]));
    }
    std::printf("\n");
  }

  std::vector<MachineDesc> Machines = MachineDesc::paperModels();
  if (!C.ScheduleFor.empty()) {
    const MachineDesc *MD = findMachine(Machines, C.ScheduleFor);
    if (!MD) {
      std::fprintf(stderr, "unknown machine '%s'\n", C.ScheduleFor.c_str());
      return 2;
    }
    for (size_t BI = 0; BI < F->numBlocks(); ++BI) {
      const Block &B = F->block(BI);
      if (B.empty())
        continue;
      Schedule S = scheduleBlockWithAnalyses(*F, B, *MD);
      std::printf("\n; schedule of @%s on %s (length %d):\n",
                  B.getName().c_str(), MD->getName().c_str(), S.length());
      for (size_t OI = 0; OI < B.size(); ++OI)
        std::printf(";   cycle %3d  %s\n", S.cycleOf(OI),
                    printOperation(*F, B.ops()[OI], C.PO).c_str());
    }
  }

  if (C.CheckEquiv) {
    Session.checkEquivalence(); // fatal on mismatch unless --fail-safe
    if (Session.fellBack())
      std::printf("\n; equivalence: MISMATCH; the session fell back to "
                  "the baseline (see diagnostics)\n");
    else
      std::printf("\n; equivalence: baseline and output agree on this "
                  "input\n");
  }

  ThreadPool *Pool = nullptr;
  std::unique_ptr<ThreadPool> PoolStorage;
  if (NeedTreated && C.Threads != 1) {
    PoolStorage = std::make_unique<ThreadPool>(C.Threads);
    Pool = PoolStorage.get();
  }

  if (C.Estimate) {
    Session.prepare();
    std::vector<MachineComparison> Rows(Machines.size());
    parallelFor(Pool, Machines.size(), [&](size_t I) {
      Rows[I] = Session.estimateMachine(Machines[I]);
    });
    std::printf("\n; estimated cycles (baseline -> this output):\n");
    for (const MachineComparison &MC : Rows)
      std::printf(";   %-10s %10.0f -> %10.0f   (%.2fx)\n",
                  MC.MachineName.c_str(), MC.BaselineCycles,
                  MC.TreatedCycles,
                  MC.TreatedCycles > 0
                      ? MC.BaselineCycles / MC.TreatedCycles
                      : 0.0);
  }

  if (!C.TraceOut.empty()) {
    std::ofstream TOut(C.TraceOut);
    if (!TOut) {
      std::fprintf(stderr, "cprc: error: cannot write trace '%s'\n",
                   C.TraceOut.c_str());
      return exit_codes::Failure;
    }
    TOut << serializeBranchTrace(Session.baselineTrace());
  }

  if (C.Simulate) {
    if (C.Predictors.empty())
      C.Predictors = allPredictorKinds();
    Session.prepare();

    std::printf("\n; dynamic simulation (baseline -> this output, "
                "%llu/%llu branch events):\n",
                static_cast<unsigned long long>(
                    Session.baselineTrace().size()),
                static_cast<unsigned long long>(
                    Session.treatedTrace().size()));
    const bool FE = C.Frontend.UseBTB || C.Frontend.Decoupled;
    std::printf(";   %-10s %-9s %12s %9s %6s  -> %12s %9s %6s %8s",
                "machine", "pred", "cycles", "mispred", "MPKI", "cycles",
                "mispred", "MPKI", "speedup");
    if (FE)
      std::printf(" %9s %12s", "BTB-MPKI", "stalls");
    std::printf("\n");
    size_t NumP = C.Predictors.size();
    std::vector<SimComparison> Sims(Machines.size() * NumP);
    parallelFor(Pool, Sims.size(), [&](size_t I) {
      Sims[I] = Session.simulate(Machines[I / NumP],
                                 C.Predictors[I % NumP]);
    });
    for (const SimComparison &SC : Sims) {
      std::printf(";   %-10s %-9s %12.0f %9llu %6.2f  -> %12.0f %9llu "
                  "%6.2f %7.2fx",
                  SC.MachineName.c_str(), SC.PredictorName.c_str(),
                  SC.Baseline.TotalCycles,
                  static_cast<unsigned long long>(SC.Baseline.Mispredicts),
                  SC.Baseline.mpki(), SC.Treated.TotalCycles,
                  static_cast<unsigned long long>(SC.Treated.Mispredicts),
                  SC.Treated.mpki(), SC.speedup());
      if (FE)
        // Treated-side frontend detail: target-miss rate and fetch-stall
        // cycles of the output being measured.
        std::printf(" %9.2f %12llu", SC.Treated.btbMpki(),
                    static_cast<unsigned long long>(
                        SC.Treated.FetchStallCycles));
      std::printf("\n");
    }
  }

  if (!C.StatsJSON.empty()) {
    std::string Error;
    if (!writeStatsJSONFile(Stats, C.StatsJSON, &Error)) {
      std::fprintf(stderr, "cprc: error: %s\n", Error.c_str());
      return exit_codes::Failure;
    }
  }

  // Fail-safe epilogue: every failure above was recovered, but the
  // compile may have been degraded (rollbacks, budget skips, baseline
  // fallback). Surface the collected diagnostics and report the
  // degradation through a distinct nonzero-but-clean exit.
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "cprc: %s\n", D.str().c_str());
  if (Diags.errorCount() > 0)
    return exit_codes::Failure;
  if (C.Werror && Diags.count(DiagSeverity::Warning) > 0)
    return exit_codes::Failure;
  return exit_codes::Success;
}

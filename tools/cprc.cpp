//===- tools/cprc.cpp - Command-line control CPR driver -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// A command-line driver over the library: reads a program in the textual
// IR, runs the requested phases, and prints the result. Initial register
// values and memory cells come from flags, so small experiments need no
// C++ at all.
//
//   cprc input.cpr [options]
//
//   --phase=<frp|speculate|cpr|all>   stop after the named phase (default all)
//   --reg r1=1000                     initial register value (repeatable)
//   --mem 1000=7                      initial memory cell (repeatable)
//   --observable                      print observed registers after a run
//   --run                             interpret the (final) program
//   --schedule=<machine>             print the schedule for one machine
//   --estimate                        per-machine cycle estimates (needs a
//                                     profileable program)
//   --exit-weight=<f> --predict-taken=<f> --max-branches=<n>
//   --no-speculation --no-taken-variation
//   --show-ids                        print stable operation ids
//   --simulate                        trace-driven dynamic estimates for
//                                     baseline and transformed code
//   --predictor=<static|bimodal|gshare|local|all>   (repeatable)
//   --mispredict-penalty=<n>          penalty cycles (default: per machine)
//   --trace-out=<file>                save the baseline branch trace
//
//===----------------------------------------------------------------------===//

#include "analysis/ProfileIO.h"
#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "cpr/PredicateSpeculation.h"
#include "pipeline/CompilerPipeline.h"
#include "regions/FRPConversion.h"
#include "regions/DeadCodeElim.h"
#include "regions/IfConversion.h"
#include "regions/LoopUnroller.h"
#include "regions/Simplify.h"
#include "sched/ListScheduler.h"
#include "sim/TraceSimulator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace cpr;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: cprc <input.cpr> [--phase=frp|speculate|cpr|all] [--run]\n"
      "            [--reg rN=V]... [--mem A=V]... [--schedule=<machine>]\n"
      "            [--estimate] [--exit-weight=F] [--predict-taken=F]\n"
      "            [--max-branches=N] [--no-speculation]\n"
      "            [--no-taken-variation] [--show-ids]\n"
      "            [--profile-out=<file>] [--profile-in=<file>]\n"
      "            [--unroll=N] [--simplify] [--if-convert]\n"
      "            [--simulate] [--predictor=<name|all>]...\n"
      "            [--mispredict-penalty=N] [--trace-out=<file>]\n");
}

bool parseReg(const std::string &Spec, RegBinding &Out) {
  size_t Eq = Spec.find('=');
  if (Eq == std::string::npos || Eq < 2)
    return false;
  std::string Name = Spec.substr(0, Eq);
  RegClass RC;
  switch (Name[0]) {
  case 'r':
    RC = RegClass::GPR;
    break;
  case 'f':
    RC = RegClass::FPR;
    break;
  case 'p':
    RC = RegClass::PR;
    break;
  default:
    return false;
  }
  Out.R = Reg(RC, static_cast<uint32_t>(std::strtoul(Name.c_str() + 1,
                                                     nullptr, 10)));
  Out.Value = std::strtoll(Spec.c_str() + Eq + 1, nullptr, 10);
  return true;
}

const MachineDesc *findMachine(const std::vector<MachineDesc> &Machines,
                               const std::string &Name) {
  for (const MachineDesc &M : Machines)
    if (M.getName() == Name)
      return &M;
  return nullptr;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string InputPath;
  std::string Phase = "all";
  std::string ScheduleFor;
  std::string ProfileOut, ProfileIn, TraceOut;
  unsigned UnrollFactor = 1;
  bool Simplify = false, IfConvertFlag = false;
  bool Run = false, Estimate = false, Simulate = false;
  int MispredictPenalty = -1;
  std::vector<PredictorKind> Predictors;
  PrintOptions PO;
  CPROptions CPR;
  std::vector<RegBinding> InitRegs;
  Memory InitMem;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      return Arg.c_str() + std::strlen(Prefix);
    };
    if (Arg.rfind("--phase=", 0) == 0) {
      Phase = Value("--phase=");
    } else if (Arg == "--run") {
      Run = true;
    } else if (Arg == "--estimate") {
      Estimate = true;
    } else if (Arg.rfind("--schedule=", 0) == 0) {
      ScheduleFor = Value("--schedule=");
    } else if (Arg == "--reg" && I + 1 < argc) {
      RegBinding B;
      if (!parseReg(argv[++I], B)) {
        std::fprintf(stderr, "bad --reg spec '%s'\n", argv[I]);
        return 2;
      }
      InitRegs.push_back(B);
    } else if (Arg == "--mem" && I + 1 < argc) {
      std::string Spec = argv[++I];
      size_t Eq = Spec.find('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr, "bad --mem spec '%s'\n", Spec.c_str());
        return 2;
      }
      InitMem.store(std::strtoll(Spec.c_str(), nullptr, 10),
                    std::strtoll(Spec.c_str() + Eq + 1, nullptr, 10));
    } else if (Arg.rfind("--exit-weight=", 0) == 0) {
      CPR.ExitWeightThreshold = std::strtod(Value("--exit-weight="), nullptr);
    } else if (Arg.rfind("--predict-taken=", 0) == 0) {
      CPR.PredictTakenThreshold =
          std::strtod(Value("--predict-taken="), nullptr);
    } else if (Arg.rfind("--max-branches=", 0) == 0) {
      CPR.MaxBranchesPerBlock = static_cast<unsigned>(
          std::strtoul(Value("--max-branches="), nullptr, 10));
    } else if (Arg == "--no-speculation") {
      CPR.EnablePredicateSpeculation = false;
    } else if (Arg == "--no-taken-variation") {
      CPR.EnableTakenVariation = false;
    } else if (Arg == "--simplify") {
      Simplify = true;
    } else if (Arg == "--if-convert") {
      IfConvertFlag = true;
    } else if (Arg.rfind("--unroll=", 0) == 0) {
      UnrollFactor =
          static_cast<unsigned>(std::strtoul(Value("--unroll="), nullptr, 10));
    } else if (Arg == "--simulate") {
      Simulate = true;
    } else if (Arg.rfind("--predictor=", 0) == 0) {
      std::string Name = Value("--predictor=");
      if (Name == "all") {
        Predictors = allPredictorKinds();
      } else {
        PredictorKind K;
        if (!parsePredictorKind(Name, K)) {
          std::fprintf(stderr, "unknown predictor '%s'\n", Name.c_str());
          return 2;
        }
        Predictors.push_back(K);
      }
    } else if (Arg.rfind("--mispredict-penalty=", 0) == 0) {
      MispredictPenalty = static_cast<int>(
          std::strtol(Value("--mispredict-penalty="), nullptr, 10));
      if (MispredictPenalty < 0) {
        std::fprintf(stderr, "mispredict penalty cannot be negative\n");
        return 2;
      }
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      TraceOut = Value("--trace-out=");
    } else if (Arg.rfind("--profile-out=", 0) == 0) {
      ProfileOut = Value("--profile-out=");
    } else if (Arg.rfind("--profile-in=", 0) == 0) {
      ProfileIn = Value("--profile-in=");
    } else if (Arg == "--show-ids") {
      PO.ShowOpIds = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] != '-') {
      InputPath = Arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (InputPath.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(InputPath);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", InputPath.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  ParseResult PR = parseFunction(Buf.str());
  if (!PR) {
    std::fprintf(stderr, "%s:%u: error: %s\n", InputPath.c_str(), PR.Line,
                 PR.Error.c_str());
    return 1;
  }
  std::unique_ptr<Function> F = std::move(PR.Func);
  std::vector<std::string> Errors = verifyFunction(*F);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: verifier: %s\n", InputPath.c_str(),
                   E.c_str());
    return 1;
  }

  // Optional preparation passes (applied to the shared baseline, as the
  // paper's IMPACT preprocessing was).
  if (IfConvertFlag) {
    IfConversionStats IS = ifConvert(*F);
    verifyOrDie(*F, "after if-conversion");
    std::fprintf(stderr, "if-convert: %u branch(es) folded, %u ops "
                 "predicated\n",
                 IS.BranchesConverted, IS.OpsPredicated);
  }
  if (UnrollFactor >= 2) {
    unsigned Unrolled = 0;
    for (size_t I = 0; I < F->numBlocks(); ++I)
      if (unrollLoop(*F, F->block(I), UnrollFactor).Unrolled)
        ++Unrolled;
    verifyOrDie(*F, "after unrolling");
    std::fprintf(stderr, "unroll: %u loop(s) unrolled x%u\n", Unrolled,
                 UnrollFactor);
  }
  if (Simplify || UnrollFactor >= 2) {
    SimplifyStats SS = simplifyFunction(*F);
    eliminateDeadCode(*F);
    verifyOrDie(*F, "after simplify");
    std::fprintf(stderr,
                 "simplify: %u folded, %u copies propagated, %u CSE\n",
                 SS.ConstantsFolded, SS.CopiesPropagated,
                 SS.ExpressionsReused);
  }

  // A profile is required for match; load one or obtain it by running
  // the input.
  std::unique_ptr<Function> Baseline = F->clone();
  ProfileData Profile;
  if (!ProfileIn.empty()) {
    std::ifstream PIn(ProfileIn);
    if (!PIn) {
      std::fprintf(stderr, "cannot open profile '%s'\n", ProfileIn.c_str());
      return 1;
    }
    std::stringstream PBuf;
    PBuf << PIn.rdbuf();
    ProfileParseResult PP = parseProfile(PBuf.str());
    if (!PP) {
      std::fprintf(stderr, "%s: %s\n", ProfileIn.c_str(), PP.Error.c_str());
      return 1;
    }
    Profile = std::move(PP.Profile);
  } else if (Phase == "cpr" || Phase == "all" || Estimate ||
             !ProfileOut.empty()) {
    Memory Mem = InitMem;
    InterpOptions IO;
    IO.Profile = &Profile;
    RunResult R = interpret(*F, Mem, InitRegs, IO);
    if (!R.halted()) {
      std::fprintf(stderr,
                   "profiling run failed (%s); provide --reg/--mem inputs "
                   "that drive the program to halt\n",
                   R.ErrorMsg.c_str());
      return 1;
    }
  }
  if (!ProfileOut.empty()) {
    std::ofstream POut(ProfileOut);
    if (!POut) {
      std::fprintf(stderr, "cannot write profile '%s'\n",
                   ProfileOut.c_str());
      return 1;
    }
    POut << serializeProfile(Profile, *F);
  }

  // Phases.
  if (Phase == "frp" || Phase == "speculate") {
    for (size_t I = 0; I < F->numBlocks(); ++I)
      if (!F->block(I).isCompensation())
        convertToFRP(*F, F->block(I));
    if (Phase == "speculate")
      for (size_t I = 0; I < F->numBlocks(); ++I)
        if (!F->block(I).isCompensation())
          speculatePredicates(*F, F->block(I));
  } else if (Phase == "cpr" || Phase == "all") {
    CPRResult CR = runControlCPR(*F, Profile, CPR);
    std::fprintf(stderr,
                 "cpr: %u region(s), %u CPR block(s) formed, %u "
                 "transformed (%u taken variation), %u ops moved "
                 "off-trace, %u split\n",
                 CR.RegionsProcessed, CR.CPRBlocksFormed,
                 CR.CPRBlocksTransformed, CR.TakenVariants,
                 CR.OpsMovedOffTrace, CR.OpsSplit);
  } else if (Phase != "none") {
    std::fprintf(stderr, "unknown phase '%s'\n", Phase.c_str());
    return 2;
  }
  verifyOrDie(*F, "cprc output");

  std::printf("%s", printFunction(*F, PO).c_str());

  if (Run) {
    Memory Mem = InitMem;
    RunResult R = interpret(*F, Mem, InitRegs);
    std::printf("\n; run: %s after %llu steps",
                R.halted() ? "halted" : R.ErrorMsg.c_str(),
                static_cast<unsigned long long>(R.Steps));
    if (!R.Observed.empty()) {
      std::printf("; observables:");
      for (size_t I = 0; I < R.Observed.size(); ++I)
        std::printf(" %s=%lld", F->observableRegs()[I].str().c_str(),
                    static_cast<long long>(R.Observed[I]));
    }
    std::printf("\n");
  }

  std::vector<MachineDesc> Machines = MachineDesc::paperModels();
  if (!ScheduleFor.empty()) {
    const MachineDesc *MD = findMachine(Machines, ScheduleFor);
    if (!MD) {
      std::fprintf(stderr, "unknown machine '%s'\n", ScheduleFor.c_str());
      return 2;
    }
    for (size_t BI = 0; BI < F->numBlocks(); ++BI) {
      const Block &B = F->block(BI);
      if (B.empty())
        continue;
      Schedule S = scheduleBlockWithAnalyses(*F, B, *MD);
      std::printf("\n; schedule of @%s on %s (length %d):\n",
                  B.getName().c_str(), MD->getName().c_str(), S.length());
      for (size_t OI = 0; OI < B.size(); ++OI)
        std::printf(";   cycle %3d  %s\n", S.cycleOf(OI),
                    printOperation(*F, B.ops()[OI], PO).c_str());
    }
  }

  if (Estimate) {
    // Re-profile the transformed code, then estimate both versions.
    Memory Mem = InitMem;
    ProfileData TreatedProfile;
    InterpOptions IO;
    IO.Profile = &TreatedProfile;
    RunResult R = interpret(*F, Mem, InitRegs, IO);
    if (!R.halted()) {
      std::fprintf(stderr, "estimate run failed: %s\n", R.ErrorMsg.c_str());
      return 1;
    }
    std::printf("\n; estimated cycles (baseline -> this output):\n");
    for (const MachineDesc &MD : Machines) {
      double Before =
          estimatePerformance(*Baseline, MD, Profile).TotalCycles;
      double After =
          estimatePerformance(*F, MD, TreatedProfile).TotalCycles;
      std::printf(";   %-10s %10.0f -> %10.0f   (%.2fx)\n",
                  MD.getName().c_str(), Before, After,
                  After > 0 ? Before / After : 0.0);
    }
  }

  if (Simulate || !TraceOut.empty()) {
    if (Predictors.empty())
      Predictors = allPredictorKinds();

    // Fresh traced runs of the baseline and of the (possibly transformed)
    // output; the earlier profiling run recorded no trace.
    Memory MemB = InitMem;
    ProfileData ProfB;
    BranchTrace TraceB;
    InterpOptions IOB;
    IOB.Profile = &ProfB;
    IOB.Trace = &TraceB;
    RunResult RB = interpret(*Baseline, MemB, InitRegs, IOB);
    if (!RB.halted()) {
      std::fprintf(stderr, "simulation run (baseline) failed: %s\n",
                   RB.ErrorMsg.c_str());
      return 1;
    }
    if (!TraceOut.empty()) {
      std::ofstream TOut(TraceOut);
      if (!TOut) {
        std::fprintf(stderr, "cannot write trace '%s'\n", TraceOut.c_str());
        return 1;
      }
      TOut << serializeBranchTrace(TraceB);
    }

    if (Simulate) {
      Memory MemT = InitMem;
      ProfileData ProfT;
      BranchTrace TraceT;
      InterpOptions IOT;
      IOT.Profile = &ProfT;
      IOT.Trace = &TraceT;
      RunResult RT = interpret(*F, MemT, InitRegs, IOT);
      if (!RT.halted()) {
        std::fprintf(stderr, "simulation run (transformed) failed: %s\n",
                     RT.ErrorMsg.c_str());
        return 1;
      }

      SimOptions SO;
      SO.MispredictPenalty = MispredictPenalty;
      std::printf("\n; dynamic simulation (baseline -> this output, "
                  "%llu/%llu branch events):\n",
                  static_cast<unsigned long long>(TraceB.size()),
                  static_cast<unsigned long long>(TraceT.size()));
      std::printf(";   %-10s %-8s %12s %9s %6s  -> %12s %9s %6s %8s\n",
                  "machine", "pred", "cycles", "mispred", "MPKI", "cycles",
                  "mispred", "MPKI", "speedup");
      for (const MachineDesc &MD : Machines) {
        for (PredictorKind K : Predictors) {
          PredictorConfig CB;
          CB.Profile = &ProfB;
          std::unique_ptr<BranchPredictor> PB = makePredictor(K, CB);
          SimEstimate EB = simulateTrace(*Baseline, MD, TraceB, *PB, SO);

          PredictorConfig CT;
          CT.Profile = &ProfT;
          std::unique_ptr<BranchPredictor> PT = makePredictor(K, CT);
          SimEstimate ET = simulateTrace(*F, MD, TraceT, *PT, SO);

          if (!EB.ok() || !ET.ok()) {
            std::fprintf(stderr, "simulation failed: %s\n",
                         (EB.ok() ? ET.Error : EB.Error).c_str());
            return 1;
          }
          std::printf(";   %-10s %-8s %12.0f %9llu %6.2f  -> %12.0f %9llu "
                      "%6.2f %7.2fx\n",
                      MD.getName().c_str(), predictorKindName(K),
                      EB.TotalCycles,
                      static_cast<unsigned long long>(EB.Mispredicts),
                      EB.mpki(), ET.TotalCycles,
                      static_cast<unsigned long long>(ET.Mispredicts),
                      ET.mpki(),
                      ET.TotalCycles > 0 ? EB.TotalCycles / ET.TotalCycles
                                         : 0.0);
        }
      }
    }
  }
  return 0;
}

//===- tools/cpr-lint.cpp - Static semantic checker for CPR IR ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Runs the built-in static checks of src/lint/ (docs/LINT.md) over a
// textual IR file, or -- with --workloads -- over every benchmark of the
// paper's suite both before and after the CPR treatment:
//
//   cpr-lint input.ir [options]
//   cpr-lint --workloads [options]
//
// Findings print as text; --stats-json additionally writes the
// `cpr-lint-v2` report, each finding carrying its witness. With
// --confirm-witnesses every solved witness is replayed through the
// interpreter and the run fails if any does not confirm. Fixture files
// may pin a schedule for the schedule checks with a sidecar comment the
// IR parser ignores:
//
//   ; lint-schedule(medium[,fetch=N]) @Block: 0 0 1 2 ...
//
// Exit codes (support/Diagnostic.h): 0 clean, 1 findings at error
// severity (or warning severity with --werror), 2 usage error, 3 input
// parse error, 4 input verification error.
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "lint/Lint.h"
#include "lint/Witness.h"
#include "pipeline/CompilerPipeline.h"
#include "support/OptionParser.h"
#include "workloads/BenchmarkSuite.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace cpr;

namespace {

struct Config {
  std::string Checks;
  std::string Machine = "medium";
  std::string StatsJSON;
  bool Workloads = false;
  bool Werror = false;
  bool Quiet = false;
  bool ListChecks = false;
  bool ConfirmWitnesses = false;
  bool Help = false;
};

OptionTable buildOptions(Config &C) {
  OptionTable T;
  T.addFlag("--workloads",
            "lint every paper benchmark pre- and post-CPR instead of a file",
            C.Workloads);
  T.addString("--checks", "<a,b,...>",
              "run only the named checks (default: all)", C.Checks);
  T.addString("--machine", "<name|all>",
              "machine model(s) for schedule-legality (default: medium)",
              C.Machine);
  T.addString("--stats-json", "<file>",
              "write the cpr-lint-v2 JSON report to <file> ('-' = stdout)",
              C.StatsJSON);
  T.addFlag("--werror", "treat warning-severity findings as errors",
            C.Werror);
  T.addFlag("--confirm-witnesses",
            "replay every solved witness through the interpreter; fail "
            "if any does not confirm",
            C.ConfirmWitnesses);
  T.addFlag("--list-checks", "print the available checks and exit",
            C.ListChecks);
  T.addFlag("--quiet", "suppress per-function progress lines", C.Quiet);
  T.addFlag("--help", "show this help", C.Help);
  return T;
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char Ch : S) {
    if (Ch == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += Ch;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

/// Resolves --machine into the model list for schedule-legality.
bool resolveMachines(const std::string &Name,
                     std::vector<MachineDesc> &Out) {
  std::vector<MachineDesc> Models = MachineDesc::paperModels();
  if (Name == "all") {
    Out = std::move(Models);
    return true;
  }
  for (MachineDesc &M : Models)
    if (M.getName() == Name) {
      Out = {std::move(M)};
      return true;
    }
  return false;
}

struct Report {
  JSONValue Functions = JSONValue::array();
  unsigned Errors = 0;
  unsigned Warnings = 0;
  unsigned WitnessesConfirmed = 0;
  unsigned WitnessesUnsolved = 0;
  unsigned WitnessesUnconfirmed = 0;
};

/// Lints one function, prints findings, and appends to the report.
/// \p Label names the entry in output ("<func>" or "<func> (post-cpr)").
/// \p Inputs declares environment-initialized registers (a workload's
/// InitRegs) so uninit-read does not flag the kernel's arguments.
void lintOne(const LintDriver &Driver, const Function &F,
             const std::string &Label, const Config &C, Report &R,
             const std::vector<RegBinding> *Inputs = nullptr) {
  LintResult Res = Driver.run(F, nullptr, Inputs);
  if (!C.Quiet)
    std::printf("cpr-lint: %s: %zu finding(s)\n", Label.c_str(),
                Res.Findings.size());
  for (const LintFinding &Finding : Res.Findings)
    std::printf("%s\n", Finding.str().c_str());
  if (C.ConfirmWitnesses) {
    for (const LintFinding &Finding : Res.Findings) {
      if (!Finding.Witness || !Finding.Witness->Solved) {
        ++R.WitnessesUnsolved;
        std::printf("cpr-lint: witness [%s] @%s: unsolved (%s)\n",
                    Finding.Check.c_str(), Finding.Block.c_str(),
                    Finding.Witness ? Finding.Witness->UnsolvedWhy.c_str()
                                    : "finding carries no witness");
        continue;
      }
      WitnessConfirmation WC = confirmWitness(F, *Finding.Witness);
      if (WC.Confirmed)
        ++R.WitnessesConfirmed;
      else
        ++R.WitnessesUnconfirmed;
      std::printf("cpr-lint: witness [%s] @%s: %s (%s)\n",
                  Finding.Check.c_str(), Finding.Block.c_str(),
                  WC.Confirmed ? "confirmed" : "NOT CONFIRMED",
                  WC.Detail.c_str());
    }
  }
  R.Errors += Res.errorCount();
  R.Warnings +=
      Res.countAtLeast(DiagSeverity::Warning) - Res.errorCount();
  JSONValue Entry = lintResultToJSON(Label, Res);
  R.Functions.append(std::move(Entry));
}

int finish(const Config &C, Report &R) {
  if (!C.StatsJSON.empty()) {
    JSONValue Root = JSONValue::object();
    Root.set("schema", JSONValue::str("cpr-lint-v2"));
    Root.set("functions", std::move(R.Functions));
    JSONValue Totals = JSONValue::object();
    Totals.set("error", JSONValue::number(R.Errors));
    Totals.set("warning", JSONValue::number(R.Warnings));
    if (C.ConfirmWitnesses) {
      Totals.set("witnesses_confirmed",
                 JSONValue::number(R.WitnessesConfirmed));
      Totals.set("witnesses_unsolved",
                 JSONValue::number(R.WitnessesUnsolved));
      Totals.set("witnesses_unconfirmed",
                 JSONValue::number(R.WitnessesUnconfirmed));
    }
    Root.set("totals", std::move(Totals));
    std::string Out = writeJSON(Root);
    if (C.StatsJSON == "-") {
      std::printf("%s\n", Out.c_str());
    } else {
      std::ofstream OS(C.StatsJSON);
      if (!OS) {
        std::fprintf(stderr, "cpr-lint: cannot write %s\n",
                     C.StatsJSON.c_str());
        return exit_codes::Failure;
      }
      OS << Out << "\n";
    }
  }
  if (R.WitnessesUnconfirmed > 0) {
    std::fprintf(stderr,
                 "cpr-lint: %u witness(es) failed to confirm on replay\n",
                 R.WitnessesUnconfirmed);
    return exit_codes::Failure;
  }
  if (R.Errors > 0 || (C.Werror && R.Warnings > 0))
    return exit_codes::Failure;
  return exit_codes::Success;
}

} // namespace

int main(int argc, char **argv) {
  Config C;
  OptionTable T = buildOptions(C);
  std::string Error;
  std::vector<std::string> Inputs;
  if (!T.parse(argc, argv, Error, &Inputs)) {
    std::fprintf(stderr, "cpr-lint: %s\n", Error.c_str());
    return exit_codes::UsageError;
  }
  if (C.Help) {
    std::printf("%s", T.help("cpr-lint <input.ir> [options]\n"
                             "cpr-lint --workloads [options]")
                          .c_str());
    return exit_codes::Success;
  }

  LintOptions Opts;
  if (!resolveMachines(C.Machine, Opts.Machines)) {
    std::fprintf(stderr, "cpr-lint: unknown machine '%s'\n",
                 C.Machine.c_str());
    return exit_codes::UsageError;
  }
  Opts.OnlyChecks = splitList(C.Checks);
  LintDriver Probe = LintDriver::withBuiltinPasses();
  if (C.ListChecks) {
    for (const std::unique_ptr<LintPass> &P : Probe.passes())
      std::printf("%-26s %s\n", P->name(), P->description());
    return exit_codes::Success;
  }
  for (const std::string &Name : Opts.OnlyChecks) {
    bool Known = false;
    for (const std::unique_ptr<LintPass> &P : Probe.passes())
      if (Name == P->name())
        Known = true;
    if (!Known) {
      std::fprintf(stderr, "cpr-lint: unknown check '%s'; available:\n",
                   Name.c_str());
      for (const std::unique_ptr<LintPass> &P : Probe.passes())
        std::fprintf(stderr, "  %s\n", P->name());
      return exit_codes::UsageError;
    }
  }

  Report R;
  if (C.Workloads) {
    if (!Inputs.empty()) {
      std::fprintf(stderr,
                   "cpr-lint: --workloads takes no input files\n");
      return exit_codes::UsageError;
    }
    LintDriver Driver = LintDriver::withBuiltinPasses(Opts);
    for (const BenchmarkSpec &Spec : paperBenchmarkSuite()) {
      KernelProgram P = Spec.Build();
      lintOne(Driver, *P.Func, Spec.Name, C, R, &P.InitRegs);
      Memory Mem = P.InitMem;
      ProfileData Prof = profileRun(*P.Func, Mem, P.InitRegs);
      std::unique_ptr<Function> Treated =
          applyControlCPR(*P.Func, Prof, CPROptions());
      lintOne(Driver, *Treated, Spec.Name + " (post-cpr)", C, R,
              &P.InitRegs);
    }
    return finish(C, R);
  }

  if (Inputs.size() != 1) {
    std::fprintf(stderr,
                 "cpr-lint: expected exactly one input file (see --help)\n");
    return exit_codes::UsageError;
  }
  std::ifstream In(Inputs[0]);
  if (!In) {
    std::fprintf(stderr, "cpr-lint: cannot read %s\n", Inputs[0].c_str());
    return exit_codes::Failure;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  ParseResult PR = parseFunction(Text);
  if (!PR.Func) {
    std::fprintf(stderr, "cpr-lint: %s:%u: error: %s\n", Inputs[0].c_str(),
                 PR.Line, PR.Error.c_str());
    return exit_codes::ParseError;
  }
  // Complete verification report, not just the first violation
  // (ir/Verifier reportVerification).
  DiagnosticEngine VerifyDiags;
  if (reportVerification(*PR.Func, VerifyDiags, "cpr-lint input") > 0) {
    for (const Diagnostic &D : VerifyDiags.diagnostics())
      std::fprintf(stderr, "cpr-lint: %s\n", D.str().c_str());
    return exit_codes::VerifyError;
  }

  if (Status S = parseInjectedSchedules(Text, Opts.Schedules); !S) {
    std::fprintf(stderr, "cpr-lint: %s\n", S.diagnostic().str().c_str());
    return exit_codes::ParseError;
  }
  LintDriver Driver = LintDriver::withBuiltinPasses(Opts);
  lintOne(Driver, *PR.Func, PR.Func->getName(), C, R);
  return finish(C, R);
}

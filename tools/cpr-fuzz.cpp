//===- tools/cpr-fuzz.cpp - Differential CPR fuzzing driver ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Command-line front end of the fuzzing subsystem (src/fuzz/): runs
// campaigns of random and corpus-mutated programs through the
// differential oracle, reduces failures to minimal reproducers, and
// replays saved `.ir` reproducers.
//
//   cpr-fuzz --seed=1 --runs=200 --threads=4        # campaign
//   cpr-fuzz --corpus=dir --runs=100 --reduce --out=dir
//   cpr-fuzz repro.ir [repro2.ir ...]               # replay mode
//   cpr-fuzz --fault-campaign                       # fault injection
//   cpr-fuzz --static-oracle --runs=200             # lint-judged campaign
//   cpr-fuzz --cross-validate --runs=100            # oracle-vs-oracle
//
// Campaigns are deterministic for a fixed --seed at any --threads
// setting; see docs/FUZZING.md for the triage workflow and
// docs/ROBUSTNESS.md for the fault-injection campaign.
//
// Exit codes (support/Diagnostic.h): 0 clean, 1 findings/contract
// violations, 2 usage error, 3 unloadable replay input.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/FaultCampaign.h"
#include "fuzz/Fuzzer.h"
#include "support/Diagnostic.h"
#include "support/FaultInjector.h"
#include "support/OptionParser.h"
#include "support/Statistics.h"
#include "support/TestHooks.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace cpr;

namespace {

struct Config {
  FuzzCampaignOptions Campaign;
  FaultCampaignOptions Fault;
  bool FaultCampaign = false;
  bool StaticOracle = false;
  bool CrossValidate = false;
  std::string FaultSites;
  std::string StatsJSON;
  bool ExpectFailures = false;
  bool Quiet = false;
  bool Help = false;
};

OptionTable buildOptions(Config &C) {
  OptionTable T;
  T.add({"--seed", OptArg::Joined, "<n>",
         "campaign seed (default 1)",
         [&C](const std::string &V) {
           char *End = nullptr;
           unsigned long long N = std::strtoull(V.c_str(), &End, 0);
           if (V.empty() || *End != '\0')
             return false;
           C.Campaign.Seed = N;
           return true;
         }});
  T.addUnsigned("--runs", "<n>", "number of fuzz cases (default 100)",
                C.Campaign.Runs);
  T.addUnsigned("--threads", "<n>",
                "worker threads; outcome is thread-count independent "
                "(0 = all cores)",
                C.Campaign.Threads);
  T.addString("--corpus", "<dir>",
              "directory of seed .ir programs to mutate", C.Campaign.CorpusDir);
  T.addDouble("--mutate-frac", "<f>",
              "fraction of cases mutated from the corpus (default 0.5)",
              C.Campaign.MutateFrac);
  T.addFlag("--reduce", "delta-debug failures to minimal reproducers",
            C.Campaign.Reduce);
  T.addString("--out", "<dir>",
              "existing directory reduced reproducers are written to",
              C.Campaign.OutDir);
  T.addUnsigned("--max-loop-depth", "<n>", "generator: max loop nesting",
                C.Campaign.Generator.MaxLoopDepth);
  T.addDouble("--predicate-density", "<f>",
              "generator: guarded-operation probability",
              C.Campaign.Generator.PredicateDensity);
  T.addDouble("--alias-chaos", "<f>",
              "generator: probability memory ops use the "
              "aliases-everything class",
              C.Campaign.Generator.AliasChaos);
  T.addDouble("--unbiased-frac", "<f>",
              "generator: fraction of ~50/50 side exits",
              C.Campaign.Generator.UnbiasedFrac);
  T.addDouble("--synthetic-frac", "<f>",
              "generator: fraction of SPEC-shaped synthetic programs",
              C.Campaign.Generator.SyntheticFrac);
  T.addFlag("--fault-campaign",
            "run the fault-injection campaign: arm each registered fault "
            "site and assert rollback + equivalent output (serial)",
            C.FaultCampaign);
  T.addString("--fault-sites", "<s1,s2,...>",
              "fault campaign: comma-separated site names "
              "(default: every registered site)",
              C.FaultSites);
  T.addUnsigned("--fault-cases", "<n>",
                "fault campaign: generated programs per site (default 3)",
                C.Fault.CasesPerSite);
  T.addUnsigned("--fault-nth", "<n>",
                "fault campaign: arm each site for its 1st..nth hit "
                "(default 2)",
                C.Fault.NthHits);
  T.addFlag("--static-oracle",
            "judge cases with the cpr-lint static checks instead of the "
            "interpreter (differential: pre-existing findings excluded)",
            C.StaticOracle);
  T.addFlag("--cross-validate",
            "judge each case with BOTH oracles (differential execution "
            "and witness-replaying static checks); any disagreement is a "
            "harness bug, classified and reduced",
            C.CrossValidate);
  T.addFlag("--inject-defect",
            "plant the hidden compensation-skip miscompile (oracle "
            "self-test)",
            C.Campaign.InjectDefect);
  T.addFlag("--expect-failures",
            "invert the exit status: succeed only if failures were found",
            C.ExpectFailures);
  T.addString("--stats-json", "<file>",
              "write campaign counters and wall times as JSON", C.StatsJSON);
  T.addFlag("--quiet", "suppress per-failure progress lines", C.Quiet);
  T.addFlag("--help", "print this help", C.Help);
  T.addFlag("-h", "print this help", C.Help);
  return T;
}

/// Replays saved reproducers through the full differential grid.
/// Counts files whose grid had any non-pass cell (Failing) separately
/// from files that could not even be loaded (Unloadable) so main() can
/// exit with the distinct parse-error code for the latter.
void replayFiles(const std::vector<std::string> &Files, const Config &C,
                 int &Failing, int &Unloadable) {
  DifferentialRunner Runner(C.Campaign.Variants, C.Campaign.Machines);
  for (const std::string &Path : Files) {
    FuzzParseResult PR = loadFuzzProgramFile(Path);
    if (!PR) {
      std::fprintf(stderr, "cpr-fuzz: error: %s\n", PR.Error.c_str());
      ++Unloadable;
      continue;
    }
    CaseResult Case = Runner.runCase(PR.Program);
    if (Case.Worst == FuzzOutcome::Pass) {
      std::printf("%s: pass (%zu cells)\n", Path.c_str(),
                  Runner.numCells());
      continue;
    }
    ++Failing;
    const CellResult &Worst =
        Case.Cells[Case.WorstVariant * Runner.machines().size() +
                   Case.WorstMachine];
    std::printf("%s: %s: %s\n", Path.c_str(),
                fuzzOutcomeName(Case.Worst), Worst.Detail.c_str());
  }
}

/// Splits a comma-separated --fault-sites list, validating each name
/// against the registry. Returns false (with a message) on unknown sites.
bool parseFaultSites(const std::string &List,
                     std::vector<std::string> &Sites, std::string &Error) {
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    std::string Name = List.substr(Pos, Comma - Pos);
    if (!Name.empty()) {
      if (!fault::isKnownSite(Name)) {
        Error = "unknown fault site '" + Name + "' (known:";
        for (const std::string &S : fault::sites())
          Error += " " + S;
        Error += ")";
        return false;
      }
      Sites.push_back(Name);
    }
    Pos = Comma + 1;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  Config C;
  OptionTable Options = buildOptions(C);
  const std::string Usage =
      "usage: cpr-fuzz [options]              run a fuzzing campaign\n"
      "       cpr-fuzz [options] <repro.ir>...  replay saved reproducers\n"
      "       cpr-fuzz --fault-campaign [options]  fault-injection "
      "campaign";

  std::string ParseError;
  std::vector<std::string> Positional;
  if (!Options.parse(argc, argv, ParseError, &Positional)) {
    std::fprintf(stderr, "cpr-fuzz: %s\n%s", ParseError.c_str(),
                 Options.help(Usage).c_str());
    return exit_codes::UsageError;
  }
  if (C.Help) {
    std::printf("%s", Options.help(Usage).c_str());
    return exit_codes::Success;
  }
  if (C.FaultCampaign && !Positional.empty()) {
    std::fprintf(stderr,
                 "cpr-fuzz: --fault-campaign takes no reproducer files\n");
    return exit_codes::UsageError;
  }

  // Replay mode: positional reproducer files, no campaign.
  if (!Positional.empty()) {
    test_hooks::ScopedSkipCompensation Inject(C.Campaign.InjectDefect);
    int Failing = 0, Unloadable = 0;
    replayFiles(Positional, C, Failing, Unloadable);
    if (C.ExpectFailures)
      return Failing + Unloadable > 0 ? exit_codes::Success
                                      : exit_codes::Failure;
    if (Unloadable > 0)
      return exit_codes::ParseError;
    return Failing > 0 ? exit_codes::Failure : exit_codes::Success;
  }

  StatsRegistry Stats;
  if (!C.StatsJSON.empty()) {
    C.Campaign.Stats = &Stats;
    C.Fault.Stats = &Stats;
  }
  if (!C.Quiet) {
    C.Campaign.Log = &std::cerr;
    C.Fault.Log = &std::cerr;
  }

  // Fault-injection campaign: arm every site (or the --fault-sites
  // subset) and assert the fail-safe recovery contract. Serial by design.
  if (C.FaultCampaign) {
    if (!C.FaultSites.empty()) {
      std::string Error;
      if (!parseFaultSites(C.FaultSites, C.Fault.Sites, Error)) {
        std::fprintf(stderr, "cpr-fuzz: %s\n", Error.c_str());
        return exit_codes::UsageError;
      }
    }
    C.Fault.Seed = C.Campaign.Seed;
    C.Fault.Generator = C.Campaign.Generator;
    FaultCampaignResult Res = runFaultCampaign(C.Fault);
    std::printf("fault campaign: %s\n", Res.summary().c_str());
    for (const std::string &F : Res.Failures)
      std::printf("violation: %s\n", F.c_str());
    if (!C.StatsJSON.empty()) {
      std::string Error;
      if (!writeStatsJSONFile(Stats, C.StatsJSON, &Error)) {
        std::fprintf(stderr, "cpr-fuzz: %s\n", Error.c_str());
        return exit_codes::Failure;
      }
    }
    if (C.ExpectFailures)
      return Res.clean() ? exit_codes::Failure : exit_codes::Success;
    return Res.clean() ? exit_codes::Success : exit_codes::Failure;
  }

  if (C.StaticOracle && C.CrossValidate) {
    std::fprintf(stderr,
                 "cpr-fuzz: --static-oracle and --cross-validate are "
                 "mutually exclusive\n");
    return exit_codes::UsageError;
  }
  if (C.StaticOracle && C.Campaign.Reduce) {
    std::fprintf(stderr,
                 "cpr-fuzz: --reduce is not supported with "
                 "--static-oracle (the reducer's oracle is the "
                 "differential runner)\n");
    return exit_codes::UsageError;
  }
  FuzzCampaignResult Res = C.CrossValidate
                               ? runCrossValidationCampaign(C.Campaign)
                               : C.StaticOracle
                                     ? runStaticLintCampaign(C.Campaign)
                                     : runFuzzCampaign(C.Campaign);
  std::printf("%s\n", Res.summary().c_str());
  for (const FuzzFailure &F : Res.Failures)
    if (!F.ReproducerPath.empty())
      std::printf("reproducer: %s (%zu -> %zu ops)\n",
                  F.ReproducerPath.c_str(), F.OriginalOps, F.ReducedOps);

  if (!C.StatsJSON.empty()) {
    std::string Error;
    if (!writeStatsJSONFile(Stats, C.StatsJSON, &Error)) {
      std::fprintf(stderr, "cpr-fuzz: %s\n", Error.c_str());
      return exit_codes::Failure;
    }
  }
  if (C.ExpectFailures)
    return Res.clean() ? exit_codes::Failure : exit_codes::Success;
  return Res.clean() ? exit_codes::Success : exit_codes::Failure;
}

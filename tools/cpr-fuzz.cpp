//===- tools/cpr-fuzz.cpp - Differential CPR fuzzing driver ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
// Command-line front end of the fuzzing subsystem (src/fuzz/): runs
// campaigns of random and corpus-mutated programs through the
// differential oracle, reduces failures to minimal reproducers, and
// replays saved `.ir` reproducers.
//
//   cpr-fuzz --seed=1 --runs=200 --threads=4        # campaign
//   cpr-fuzz --corpus=dir --runs=100 --reduce --out=dir
//   cpr-fuzz repro.ir [repro2.ir ...]               # replay mode
//
// Campaigns are deterministic for a fixed --seed at any --threads
// setting; see docs/FUZZING.md for the triage workflow.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"
#include "support/OptionParser.h"
#include "support/Statistics.h"
#include "support/TestHooks.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace cpr;

namespace {

struct Config {
  FuzzCampaignOptions Campaign;
  std::string StatsJSON;
  bool ExpectFailures = false;
  bool Quiet = false;
  bool Help = false;
};

OptionTable buildOptions(Config &C) {
  OptionTable T;
  T.add({"--seed", OptArg::Joined, "<n>",
         "campaign seed (default 1)",
         [&C](const std::string &V) {
           char *End = nullptr;
           unsigned long long N = std::strtoull(V.c_str(), &End, 0);
           if (V.empty() || *End != '\0')
             return false;
           C.Campaign.Seed = N;
           return true;
         }});
  T.addUnsigned("--runs", "<n>", "number of fuzz cases (default 100)",
                C.Campaign.Runs);
  T.addUnsigned("--threads", "<n>",
                "worker threads; outcome is thread-count independent "
                "(0 = all cores)",
                C.Campaign.Threads);
  T.addString("--corpus", "<dir>",
              "directory of seed .ir programs to mutate", C.Campaign.CorpusDir);
  T.addDouble("--mutate-frac", "<f>",
              "fraction of cases mutated from the corpus (default 0.5)",
              C.Campaign.MutateFrac);
  T.addFlag("--reduce", "delta-debug failures to minimal reproducers",
            C.Campaign.Reduce);
  T.addString("--out", "<dir>",
              "existing directory reduced reproducers are written to",
              C.Campaign.OutDir);
  T.addUnsigned("--max-loop-depth", "<n>", "generator: max loop nesting",
                C.Campaign.Generator.MaxLoopDepth);
  T.addDouble("--predicate-density", "<f>",
              "generator: guarded-operation probability",
              C.Campaign.Generator.PredicateDensity);
  T.addDouble("--alias-chaos", "<f>",
              "generator: probability memory ops use the "
              "aliases-everything class",
              C.Campaign.Generator.AliasChaos);
  T.addDouble("--unbiased-frac", "<f>",
              "generator: fraction of ~50/50 side exits",
              C.Campaign.Generator.UnbiasedFrac);
  T.addDouble("--synthetic-frac", "<f>",
              "generator: fraction of SPEC-shaped synthetic programs",
              C.Campaign.Generator.SyntheticFrac);
  T.addFlag("--inject-defect",
            "plant the hidden compensation-skip miscompile (oracle "
            "self-test)",
            C.Campaign.InjectDefect);
  T.addFlag("--expect-failures",
            "invert the exit status: succeed only if failures were found",
            C.ExpectFailures);
  T.addString("--stats-json", "<file>",
              "write campaign counters and wall times as JSON", C.StatsJSON);
  T.addFlag("--quiet", "suppress per-failure progress lines", C.Quiet);
  T.addFlag("--help", "print this help", C.Help);
  T.addFlag("-h", "print this help", C.Help);
  return T;
}

/// Replays saved reproducers through the full differential grid.
/// Returns the number of files that failed (any non-pass cell).
int replayFiles(const std::vector<std::string> &Files, const Config &C) {
  DifferentialRunner Runner(C.Campaign.Variants, C.Campaign.Machines);
  int Failing = 0;
  for (const std::string &Path : Files) {
    FuzzParseResult PR = loadFuzzProgramFile(Path);
    if (!PR) {
      std::fprintf(stderr, "cpr-fuzz: %s\n", PR.Error.c_str());
      ++Failing;
      continue;
    }
    CaseResult Case = Runner.runCase(PR.Program);
    if (Case.Worst == FuzzOutcome::Pass) {
      std::printf("%s: pass (%zu cells)\n", Path.c_str(),
                  Runner.numCells());
      continue;
    }
    ++Failing;
    const CellResult &Worst =
        Case.Cells[Case.WorstVariant * Runner.machines().size() +
                   Case.WorstMachine];
    std::printf("%s: %s: %s\n", Path.c_str(),
                fuzzOutcomeName(Case.Worst), Worst.Detail.c_str());
  }
  return Failing;
}

} // namespace

int main(int argc, char **argv) {
  Config C;
  OptionTable Options = buildOptions(C);
  const std::string Usage =
      "usage: cpr-fuzz [options]              run a fuzzing campaign\n"
      "       cpr-fuzz [options] <repro.ir>...  replay saved reproducers";

  std::string ParseError;
  std::vector<std::string> Positional;
  if (!Options.parse(argc, argv, ParseError, &Positional)) {
    std::fprintf(stderr, "cpr-fuzz: %s\n%s", ParseError.c_str(),
                 Options.help(Usage).c_str());
    return 2;
  }
  if (C.Help) {
    std::printf("%s", Options.help(Usage).c_str());
    return 0;
  }

  // Replay mode: positional reproducer files, no campaign.
  if (!Positional.empty()) {
    test_hooks::ScopedSkipCompensation Inject(C.Campaign.InjectDefect);
    int Failing = replayFiles(Positional, C);
    if (C.ExpectFailures)
      return Failing > 0 ? 0 : 1;
    return Failing > 0 ? 1 : 0;
  }

  StatsRegistry Stats;
  if (!C.StatsJSON.empty())
    C.Campaign.Stats = &Stats;
  if (!C.Quiet)
    C.Campaign.Log = &std::cerr;

  FuzzCampaignResult Res = runFuzzCampaign(C.Campaign);
  std::printf("%s\n", Res.summary().c_str());
  for (const FuzzFailure &F : Res.Failures)
    if (!F.ReproducerPath.empty())
      std::printf("reproducer: %s (%zu -> %zu ops)\n",
                  F.ReproducerPath.c_str(), F.OriginalOps, F.ReducedOps);

  if (!C.StatsJSON.empty()) {
    std::string Error;
    if (!writeStatsJSONFile(Stats, C.StatsJSON, &Error)) {
      std::fprintf(stderr, "cpr-fuzz: %s\n", Error.c_str());
      return 1;
    }
  }
  if (C.ExpectFailures)
    return Res.clean() ? 1 : 0;
  return Res.clean() ? 0 : 1;
}
